"""Quickstart: create an AVQ-compressed table, query it, mutate it.

This walks the full user-facing path of the library:

1. create a :class:`repro.db.Database` on a simulated disk;
2. load raw application rows — attribute encoding (Section 3.1), phi
   ordering (3.2), block packing (3.3) and AVQ coding (3.4) all happen
   inside ``create_table``;
3. run range queries with application values;
4. insert and delete rows (Section 4.2 — changes stay inside one block);
5. compare the storage footprint against an uncompressed copy.

Run:  python examples/quickstart.py
"""

from repro.db import Database
from repro.relational.encoding import SchemaInferencer

EMPLOYEES = [
    # department, job title, years in company, hours/week, employee no.
    ("production", "part-time", 24, 32, 0),
    ("marketing", "director", 12, 31, 1),
    ("management", "worker1", 29, 21, 2),
    ("marketing", "worker2", 30, 42, 3),
    ("management", "supervisor", 27, 27, 4),
    ("production", "secretary", 23, 25, 5),
    ("production", "secretary", 34, 28, 6),
    ("production", "worker1", 32, 37, 7),
    ("marketing", "worker2", 39, 37, 8),
    ("production", "executive", 31, 25, 9),
    ("marketing", "part-time", 19, 21, 10),
    ("production", "secretary", 28, 22, 11),
    ("production", "manager", 32, 34, 12),
    ("marketing", "manager", 38, 34, 13),
    ("marketing", "worker2", 26, 32, 14),
    ("personnel", "supervisor", 33, 22, 15),
]
COLUMNS = ["department", "job", "years", "hours", "empno"]


def main() -> None:
    db = Database(block_size=8192)

    # One call runs the whole Section 3 pipeline and builds the indices.
    # integer_padding leaves headroom in inferred integer domains so that
    # later inserts (e.g. new employee numbers) stay in-domain.
    table = db.create_table(
        "employees",
        EMPLOYEES * 500,  # replicate to make compression visible
        columns=COLUMNS,
        secondary_on=["years", "empno"],
        inferencer=SchemaInferencer(integer_padding=64),
    )
    print(f"created table with {table.num_tuples} tuples "
          f"in {table.num_blocks} blocks")

    # -- Range query with application values -----------------------------
    rows, stats = db.select_values("employees", "years", 30, 35)
    print(f"\nyears in [30, 35]: {len(rows)} rows "
          f"(access path: {stats.access_path}, "
          f"blocks read: {stats.blocks_read}, "
          f"simulated I/O: {stats.io_ms:.0f} ms)")
    for row in sorted(set(rows))[:5]:
        print("  ", row)

    # -- Query on the clustering attribute uses the primary index --------
    rows, stats = db.select_values(
        "employees", "department", "management", "management"
    )
    print(f"\ndepartment = management: {len(rows)} rows "
          f"(access path: {stats.access_path}, "
          f"blocks read: {stats.blocks_read})")

    # -- Mutations (Section 4.2) -----------------------------------------
    db.insert_values("employees", ("personnel", "manager", 26, 32, 23))
    removed = db.delete_values("employees", ("marketing", "director", 12, 31, 1))
    print(f"\ninserted 1 row, deleted {int(removed)} row; "
          f"table now has {db.table('employees').num_tuples} tuples")

    # -- Storage comparison -----------------------------------------------
    db.create_table(
        "employees_uncompressed",
        EMPLOYEES * 500,
        columns=COLUMNS,
        compressed=False,
    )
    print("\nstorage report:")
    for entry in db.storage_report():
        kind = "AVQ" if entry["compressed"] else "heap"
        print(f"  {entry['table']:26s} [{kind}]  "
              f"{entry['blocks']:4d} blocks  {entry['bytes']:9,d} bytes")


if __name__ == "__main__":
    main()
