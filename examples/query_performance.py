"""Query performance: Figures 5.8 and 5.9 at interactive scale.

Builds the query-sweep relation, stores it coded and uncoded, runs the
paper's per-attribute range-query sweep (counting blocks accessed), then
assembles the full response-time table — both with the paper's machine
constants and with this host's measured codec profile.

Run:  python examples/query_performance.py [num_tuples]
"""

import sys

from repro.experiments.fig58 import run_figure_58
from repro.experiments.fig59 import (
    measure_local_codec,
    measured_response_table,
    paper_response_table,
)
from repro.experiments.reporting import format_fig58, format_fig59


def main() -> None:
    num_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print(f"Figure 5.8 reproduction at {num_tuples:,} tuples\n")
    fig58 = run_figure_58(num_tuples=num_tuples)
    print(format_fig58(fig58))

    print("\n\nFigure 5.9 — regenerated from the paper's own constants")
    print("(matches the printed table; the Sun C2 cell is the paper's"
          " documented internal inconsistency)\n")
    print(format_fig59(paper_response_table()))

    print("\n\nFigure 5.9 — measured N plus this machine's codec profile\n")
    timings = measure_local_codec(num_tuples=num_tuples, repeats=30)
    print(f"(local codec block: {timings.tuples_per_block} tuples, "
          f"{timings.block_bytes} coded bytes)\n")
    print(format_fig59(measured_response_table(fig58, local=timings.profile)))

    print(
        "\nReading: on the 1995 machines the decode cost t2 eats part of"
        "\nthe I/O win; on a modern CPU t2 is negligible, so the"
        "\nimprovement approaches the raw block-count ratio — the paper's"
        "\n'improvements are likely to increase with processor technology'."
    )


if __name__ == "__main__":
    main()
