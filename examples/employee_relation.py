"""The paper's worked example, replayed: Figure 2.2 end to end.

Prints the 50-tuple employee relation at each stage of the AVQ pipeline
exactly as the paper's Figure 2.2 presents it:

  Table (a)  the raw relation (department names, job titles, numbers)
  Table (b)  after attribute encoding — every value an ordinal
  Table (c)  after phi re-ordering, with the N_R ordinal column
  Table (d)  after block coding — representative tuples and run-length
             coded differences

and finishes with the Figure 3.3 byte stream for the fourth block, which
matches the paper's printed stream digit for digit.

Run:  python examples/employee_relation.py
"""

from repro.core.codec import HEADER_BYTES
from repro.experiments.worked_example import (
    PAPER_BLOCK_TUPLES,
    encode_paper_blocks,
    paper_blocks,
    paper_codec,
    paper_relation,
)


def print_table_a_and_b(relation, limit=10):
    print(f"Table (a)/(b) — first {limit} of {len(relation)} rows "
          "(raw values | encoded ordinals)")
    for encoded in list(relation)[:limit]:
        raw = relation.schema.decode_tuple(encoded)
        raw_s = f"{raw[0]:<11s} {raw[1]:<11s} {raw[2]:2d} {raw[3]:2d} {raw[4]:02d}"
        enc_s = " ".join(f"{v:02d}" for v in encoded)
        print(f"  {raw_s}   |   {enc_s}")


def print_table_c(relation, limit=10):
    mapper = relation.schema.mapper
    print(f"\nTable (c) — first {limit} rows after phi re-ordering")
    for t in relation.sorted_by_phi()[:limit]:
        enc_s = " ".join(f"{v:02d}" for v in t)
        print(f"  {enc_s}   N_R = {mapper.phi(t):8d}")


def print_table_d(limit_blocks=2):
    codec = paper_codec()
    mapper = codec.mapper
    print(f"\nTable (d) — first {limit_blocks} coded blocks "
          "(middle row is the representative)")
    for k, block in enumerate(paper_blocks()[:limit_blocks]):
        ordinals = [mapper.phi(t) for t in block]
        rep = (len(ordinals) - 1) // 2
        diffs = codec._differences(ordinals, rep)
        di = iter(diffs)
        print(f"  block {k + 1}:")
        for i, t in enumerate(block):
            if i == rep:
                print("    " + " ".join(f"{v:02d}" for v in t)
                      + f"   <- representative (N_R = {ordinals[i]})")
            else:
                d = next(di)
                dt = mapper.phi_inverse(d)
                print("    " + " ".join(f"{v:02d}" for v in dt)
                      + f"   (difference {d})")


def print_figure_33_stream():
    coded = encode_paper_blocks()[3]
    payload = coded[HEADER_BYTES:]
    print("\nFigure 3.3 — coded stream of block 4 (paper prints"
          " 3 08 36 39 35 3 08 57 2 04 05 23 2 51 56 29 2 01 59 37):")
    print("  " + " ".join(f"{b:02d}" for b in payload))


def main() -> None:
    relation = paper_relation()
    print_table_a_and_b(relation)
    print_table_c(relation)
    print_table_d()
    print_figure_33_stream()

    # Verify the lossless round trip over the whole example.
    codec = paper_codec()
    ok = all(
        codec.decode_block(coded) == block
        for block, coded in zip(paper_blocks(), encode_paper_blocks())
    )
    coded_blocks = encode_paper_blocks()
    payload = sum(len(c) - HEADER_BYTES for c in coded_blocks)
    print(f"\nall {len(relation) // PAPER_BLOCK_TUPLES} blocks decode "
          f"losslessly: {ok}")
    print(f"fixed-width size: {len(relation) * 5} bytes; "
          f"coded payload: {payload} bytes "
          f"(+{HEADER_BYTES} bytes/block of header in this implementation;"
          " at the paper's 5-tuple toy blocks the header dominates, at"
          " 8 KiB production blocks it is 0.05%)")


if __name__ == "__main__":
    main()
