"""Statistical queries, EXPLAIN plans, and bounded-memory bulk loading.

The authors' research programme (CIESIN earth-science data, statistical
databases) is about *aggregates over compressed data*.  This example
shows the parts of the library built for that:

1. bulk-load a census-style relation with bounded memory (external sort
   spilling to a scratch disk);
2. collect table statistics and EXPLAIN a few queries — the cost-based
   planner predicting N before touching data;
3. run COUNT / AVG / MIN / MAX range aggregates, showing how many blocks
   were answered straight from the block directory without decoding.

Run:  python examples/statistical_queries.py
"""

import random

from repro.db.aggregates import aggregate
from repro.db.planner import QueryPlanner
from repro.db.query import RangeQuery
from repro.db.table import Table
from repro.relational.domain import CategoricalDomain, IntegerRangeDomain
from repro.relational.schema import Attribute, Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.extsort import bulk_load

REGIONS = ["midwest", "northeast", "pacific", "south", "west"]


def census_schema() -> Schema:
    return Schema(
        [
            Attribute("region", CategoricalDomain(REGIONS)),
            Attribute("age", IntegerRangeDomain(0, 99)),
            Attribute("household_size", IntegerRangeDomain(1, 12)),
            Attribute("income_bracket", IntegerRangeDomain(0, 15)),
            Attribute("respondent", IntegerRangeDomain(0, 99_999)),
        ]
    )


def census_rows(schema, n=30_000, seed=17):
    """A generator — the bulk loader never sees the whole relation."""
    rng = random.Random(seed)
    for i in range(n):
        yield schema.encode_tuple(
            (
                rng.choice(REGIONS),
                min(99, max(0, int(rng.gauss(38, 18)))),
                min(12, max(1, int(rng.gauss(2.6, 1.4)))),
                rng.randrange(16),
                i,
            )
        )


def main() -> None:
    schema = census_schema()

    # -- 1. bulk load with bounded memory ---------------------------------
    data_disk = SimulatedDisk(block_size=8192)
    spill_disk = SimulatedDisk(block_size=8192)
    storage = bulk_load(
        schema,
        census_rows(schema),
        data_disk,
        memory_budget=2_000,   # far below the 30k relation
        spill_disk=spill_disk,
    )
    print(f"bulk-loaded {storage.num_tuples:,} tuples into "
          f"{storage.num_blocks} blocks "
          f"(external sort spilled {spill_disk.stats.blocks_written} "
          "scratch blocks)")

    table = Table("census", schema, storage)
    table.create_secondary_index("age")
    table.create_hash_index("income_bracket")

    # -- 2. EXPLAIN --------------------------------------------------------
    planner = QueryPlanner(table)
    print("\n" + planner.explain(RangeQuery.between("age", 30, 40)))
    print("\n" + planner.explain(RangeQuery.equals("income_bracket", 7)))
    print("\n" + planner.explain(
        RangeQuery.between("region", 0, 0)  # clustering attribute
    ))

    # -- 3. aggregates ------------------------------------------------------
    print("\nstatistical queries:")
    q_region = RangeQuery.between("region", 1, 3)
    count = aggregate(table, "count", None, q_region)
    print(f"  COUNT(*) WHERE region in [northeast..south]: "
          f"{count.value:,.0f}  "
          f"(decoded {count.blocks_read} blocks, "
          f"{count.blocks_answered_from_directory} answered from the "
          "directory)")

    q_age = RangeQuery.between("age", 30, 40)
    avg = aggregate(table, "avg", "household_size", q_age)
    print(f"  AVG(household_size) WHERE age in [30, 40]: {avg.value:.2f}  "
          f"(path {avg.access_path}, {avg.blocks_read} blocks)")

    mn = aggregate(table, "min", "age", RangeQuery([]))
    mx = aggregate(table, "max", "age", RangeQuery([]))
    print(f"  MIN(age) = {mn.value:.0f}, MAX(age) = {mx.value:.0f}")


if __name__ == "__main__":
    main()
