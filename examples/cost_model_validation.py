"""Validate the paper's cost model by replaying a real workload.

Section 5.3 predicts query response time analytically:
``C = I + N (t1 + t_cpu)``.  This example checks that shortcut against
execution: a workload of range queries is replayed on real stored
tables (actual index probes, actual block decodes, every access priced
as it happens), and the simulated totals are compared with the formula
— per machine, coded versus uncoded.

Run:  python examples/cost_model_validation.py
"""

import random

from repro.db.query import RangeQuery
from repro.db.table import Table
from repro.perf.machines import PAPER_MACHINES
from repro.perf.simulation import predicted_workload_cost, simulate_workload
from repro.relational.domain import IntegerRangeDomain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile


def build_tables(num_tuples=20_000, seed=11):
    schema = Schema(
        [Attribute(f"a{i}", IntegerRangeDomain(0, 63)) for i in range(8)]
    )
    rng = random.Random(seed)
    rel = Relation(
        schema,
        [tuple(rng.randrange(64) for _ in range(8))
         for _ in range(num_tuples)],
    )
    coded = Table.from_relation(
        "coded", rel, SimulatedDisk(8192), secondary_on=["a3"]
    )
    heap_storage = HeapFile.build(
        rel, SimulatedDisk(8192), min_field_bytes=2  # natural-width uncoded
    )
    heap = Table("heap", rel.schema, heap_storage)
    heap.create_secondary_index("a3")
    return rel, coded, heap


def make_workload(n=25, seed=4):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = rng.randrange(0, 48)
        out.append(RangeQuery.between("a3", lo, lo + rng.randrange(4, 16)))
    return out


def main() -> None:
    rel, coded, heap = build_tables()
    queries = make_workload()
    print(f"workload: {len(queries)} range queries over {len(rel):,} tuples")
    print(f"files: coded {coded.num_blocks} blocks, "
          f"uncoded {heap.num_blocks} blocks\n")

    header = (f"{'machine':14s} {'simulated C1':>13s} {'predicted':>10s} "
              f"{'simulated C2':>13s} {'predicted':>10s} {'improvement':>12s}")
    print(header)
    print("-" * len(header))
    for machine in PAPER_MACHINES:
        c1 = simulate_workload(coded, queries, machine)
        c2 = simulate_workload(heap, queries, machine)
        p1 = predicted_workload_cost(
            coded, c1.blocks_read / c1.queries, c1.queries, machine
        )
        p2 = predicted_workload_cost(
            heap, c2.blocks_read / c2.queries, c2.queries, machine
        )
        improvement = 100 * (1 - c1.total_ms / c2.total_ms)
        print(f"{machine.name:14s} {c1.total_s:12.2f}s {p1 / 1000:9.2f}s "
              f"{c2.total_s:12.2f}s {p2 / 1000:9.2f}s {improvement:11.1f}%")

    print(
        "\nReading: simulated and predicted columns agree exactly — the"
        "\npaper's Equation 5.7/5.8 is precisely the bookkeeping the"
        "\nexecution performs.  The improvement column shows the paper's"
        "\nCPU-speed gradient: the faster the machine, the more the I/O"
        "\nsavings dominate the decode cost."
    )


if __name__ == "__main__":
    main()
