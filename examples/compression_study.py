"""Compression study: Figure 5.7 at interactive scale, plus the baselines.

Reproduces the paper's compression-efficiency experiment across the four
relation-characteristic combinations (skew x domain variance) and shows
where the win comes from by lining AVQ up against:

  * natural-width storage (the paper's "before" layout),
  * minimal packed fixed-width storage,
  * plain per-tuple run-length coding (no differencing).

Run:  python examples/compression_study.py [num_tuples]
"""

import sys

from repro.experiments.fig57 import TEST_CONFIGS, run_compression_test
from repro.experiments.reporting import format_table


def main() -> None:
    num_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print(f"Figure 5.7 reproduction at {num_tuples:,} tuples "
          "(paper used 10^4 and 10^5)\n")

    rows = []
    for test in TEST_CONFIGS:
        r = run_compression_test(test, num_tuples, seed=test.number)
        rows.append(
            [
                test.label,
                r.uncoded_blocks,
                r.coded_blocks,
                f"{r.reduction_pct:.1f}%",
                f"{r.paper_reduction_pct:.1f}%",
                f"{r.packed_reduction_pct:.1f}%",
                f"{r.raw_rle_reduction_pct:.1f}%",
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "uncoded blk",
                "AVQ blk",
                "reduction",
                "paper",
                "vs packed",
                "raw RLE",
            ],
            rows,
        )
    )

    print(
        "\nReadings:"
        "\n  * 'reduction' is the paper's metric: AVQ versus natural-width"
        "\n    storage, in 8 KiB disk blocks."
        "\n  * small domain variance compresses better than large — the"
        "\n    paper's homogeneity observation."
        "\n  * skew barely moves the numbers — the paper's third bullet."
        "\n  * raw RLE (no differencing) does far worse: the differential"
        "\n    transform is what manufactures the leading zeros."
    )


if __name__ == "__main__":
    main()
