"""Why AVQ exists: conventional VQ destroys relational data.

Section 2 of the paper motivates AVQ by observing that classical vector
quantization — replace each tuple by its nearest codebook vector — is
lossy, and a database cannot tolerate that.  This example makes the
damage concrete:

1. build a relation and a proper LBG-designed codebook for it;
2. code and decode it with conventional (lossy) VQ and count how many
   tuples come back wrong;
3. code and decode it with the lossless quantizer Q_L (Definition 2.1)
   over an AVQ codebook and show every tuple survives — while still
   compressing, because the stored differences are small.

Run:  python examples/lossy_vs_lossless.py
"""

import numpy as np

from repro.core.bitutils import beta
from repro.core.phi import OrdinalMapper
from repro.core.quantizer import AVQQuantizer, build_codebook
from repro.vq.lbg import lbg_codebook
from repro.vq.lossy import LossyVectorQuantizer

DOMAINS = [8, 16, 64, 64, 64]
NUM_TUPLES = 5_000
NUM_CODES = 64


def clustered_tuples(rng, num_tuples):
    """Tuples drawn around a handful of centres — the regime where a
    small codebook is a *good* model of the data, i.e. classical VQ's
    best case.  Even here it destroys most tuples."""
    centres = np.stack(
        [rng.integers(0, s, size=16) for s in DOMAINS], axis=1
    )
    picks = rng.integers(0, len(centres), size=num_tuples)
    jitter = rng.integers(-2, 3, size=(num_tuples, len(DOMAINS)))
    points = centres[picks] + jitter
    return np.clip(points, 0, np.array(DOMAINS) - 1)


def main() -> None:
    rng = np.random.default_rng(23)
    points = clustered_tuples(rng, NUM_TUPLES)
    tuples = [tuple(int(v) for v in row) for row in points]
    mapper = OrdinalMapper(DOMAINS)

    # ---- Conventional VQ: LBG codebook, nearest-code coding -------------
    lbg = lbg_codebook(points, NUM_CODES, seed=1)
    lossy = LossyVectorQuantizer(lbg.codebook)
    loss = lossy.information_loss(points)
    print("Conventional (lossy) VQ")
    print(f"  codebook: {NUM_CODES} vectors, "
          f"{lbg.total_iterations} Lloyd iterations to design")
    print(f"  codeword size: {lossy.codeword_bits} bits per tuple")
    print(f"  tuples damaged by the round trip: {loss:.1%}")

    # ---- AVQ: lossless quantization over a median codebook --------------
    codebook = build_codebook(mapper, tuples, NUM_CODES)
    q = AVQQuantizer(mapper, codebook)
    codes = [q.encode(t) for t in tuples]
    damaged = sum(q.decode(c) != t for c, t in zip(codes, tuples))

    tuple_bits = sum(beta(s - 1) for s in DOMAINS)
    avg_bits = sum(
        beta(len(codebook) - 1) + beta(c.difference) + 1 for c in codes
    ) / len(codes)
    print("\nAugmented (lossless) VQ  — Definition 2.1")
    print(f"  codebook: {len(codebook)} representative tuples, "
          "built in one pass (sort + median per cell)")
    print(f"  tuples damaged by the round trip: {damaged}")
    print(f"  beta[t] (bits per raw tuple):       {tuple_bits:5.1f}")
    print(f"  beta[C(t)] + beta[d(t,Q(t))] avg:   {avg_bits:5.1f}")
    print(f"  bit-level compression (Def. 2.1 criterion): "
          f"{100 * (1 - avg_bits / tuple_bits):.1f}%")

    print(
        "\nReading: with the same codebook budget, classical VQ loses"
        f"\n{loss:.0%} of the tuples outright; AVQ stores the small"
        "\nordinal difference alongside the codeword and loses nothing,"
        "\nstill beating the raw tuple width on average."
    )


if __name__ == "__main__":
    main()
