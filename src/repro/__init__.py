"""repro — a reproduction of Ng & Ravishankar's AVQ database compression.

"Relational Database Compression Using Augmented Vector Quantization",
ICDE 1995.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-versus-measured record.

The public surface is re-exported here; see the subpackages for detail:

* :mod:`repro.core` — phi mapping, differencing, the AVQ block codec
* :mod:`repro.vq` — conventional lossy VQ and LBG codebook design
* :mod:`repro.relational` — schemas, domains, attribute encoding, relations
* :mod:`repro.storage` — blocks, packer, buffer pool, simulated disk
* :mod:`repro.index` — B+ trees: primary (whole-tuple key) and secondary
* :mod:`repro.db` — table/database facade with insert/delete/select
* :mod:`repro.workload` — the paper's synthetic relation generator
* :mod:`repro.perf` — machine profiles and the Section 5.3 cost model
* :mod:`repro.baselines` — no-coding / RLE / dictionary-only comparators
* :mod:`repro.experiments` — drivers that regenerate every table and figure
"""

from repro.core import (
    AVQCode,
    AVQQuantizer,
    BlockCodec,
    OrdinalMapper,
    build_codebook,
)

__version__ = "1.0.0"

__all__ = [
    "AVQCode",
    "AVQQuantizer",
    "BlockCodec",
    "OrdinalMapper",
    "build_codebook",
    "__version__",
]
