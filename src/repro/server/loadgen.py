"""The closed-loop load generator behind ``repro loadgen``.

Closed loop means every simulated client has **at most one request in
flight**: it sends, waits for the answer, then sends the next — so
offered load adapts to server latency the way real clients do, and
"thousands of clients" is a statement about concurrency, not about a
fixed request rate.

Key popularity is zipf-skewed (:func:`repro.workload.distributions.
zipf_values` over the served table's leading-attribute domain), the
regime the AVQ paper's blocks-read economics care about: a hot key set
concentrates reads on few compressed blocks, which is exactly what a
shared latched buffer pool plus snapshot reads should turn into cache
hits.  A configurable fraction of requests are writes (insert/delete of
rows derived deterministically from the key).

A BUSY answer is counted and retried after a short backoff — load
shedding is the server behaving *correctly* under overload, so the
report keeps it separate from errors.  The backoff is *decorrelated
jitter* (each wait drawn uniformly from ``[base, 3 * previous]``,
capped): a fixed doubling schedule makes every client that got BUSY at
the same instant retry at the same instant too, re-creating the very
burst that triggered the shedding.  Jitter spreads the retry wave out.

:func:`run_selfhosted_bench` is the CI entry point: seed a table, start
a server on an ephemeral port in-process, run the generator against it
over real sockets, and return the :class:`LoadgenReport` (qps, p50/p99
latency, admission counters, and the server-side metrics registry) that
``repro loadgen --json`` writes as ``BENCH_serving.json``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServerError
from repro.obs import runtime as _obs
from repro.server.client import AsyncReproClient
from repro.workload.distributions import zipf_values

__all__ = ["LoadgenReport", "run_loadgen", "run_selfhosted_bench"]

#: Extra descriptors beyond the sockets themselves (listener, pipes,
#: stdio, ...) budgeted when raising the fd rlimit for large runs.
_FD_HEADROOM = 256

#: BUSY-retry backoff bounds (milliseconds) for the decorrelated jitter
#: schedule: sleep ~ uniform(base, 3 * previous_sleep), capped.
_BACKOFF_BASE_MS = 1.0
_BACKOFF_CAP_MS = 50.0


@dataclass
class LoadgenReport:
    """Everything one load-generation run measured."""

    clients: int
    requests_per_client: int
    read_fraction: float
    zipf_s: float
    total_requests: int = 0
    ok: int = 0
    busy: int = 0
    errors: int = 0
    duration_ms: float = 0.0
    qps: float = 0.0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: Server-side view: admission counters + per-table stats (the
    #: ``stats`` op), and the metrics-registry snapshot when the run
    #: was self-hosted under an enabled registry.
    server_stats: Dict[str, Any] = field(default_factory=dict)
    server_metrics: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``BENCH_serving.json`` payload)."""
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "read_fraction": self.read_fraction,
            "zipf_s": self.zipf_s,
            "total_requests": self.total_requests,
            "ok": self.ok,
            "busy": self.busy,
            "errors": self.errors,
            "duration_ms": self.duration_ms,
            "qps": self.qps,
            "latency_ms": self.latency_ms,
            "server_stats": self.server_stats,
            "server_metrics": self.server_metrics,
        }


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {}
    ordered = sorted(latencies)
    n = len(ordered)

    def at(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    return {
        "p50": at(0.50),
        "p90": at(0.90),
        "p99": at(0.99),
        "mean": sum(ordered) / n,
        "max": ordered[-1],
    }


def _raise_fd_limit(needed: int) -> None:
    """Best-effort bump of the open-files rlimit for large client counts.

    CI runners commonly default the soft limit to 1024, which a
    1000-client run (client socket + server-side accepted socket each)
    exceeds; the hard limit is far higher, so raising soft to what the
    run needs is routine.  Failures are ignored — the run then surfaces
    the OS error honestly.
    """
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        want = needed + _FD_HEADROOM
        if soft < want:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(want, hard), hard)
            )
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def _derive_row(
    key: int, sizes: Sequence[int], los: Sequence[int]
) -> List[int]:
    """A deterministic in-domain full row for write ops, led by ``key``.

    ``key`` is an ordinal in ``[0, sizes[0])``; every attribute value is
    offset by its domain's lower bound so inferred domains that do not
    start at zero (a CSV whose column spans 10..14, say) stay valid.
    """
    return [los[0] + key % sizes[0]] + [
        lo + (key * 31 + i * 7) % size
        for i, (size, lo) in enumerate(zip(sizes[1:], los[1:]))
    ]


async def _client_loop(
    host: str,
    port: int,
    table: str,
    leading: str,
    sizes: Sequence[int],
    los: Sequence[int],
    keys: Sequence[int],
    writes: Sequence[bool],
    report: LoadgenReport,
    latencies: List[float],
    start_gate: asyncio.Event,
    backoff_rng: np.random.Generator,
) -> None:
    client = await AsyncReproClient.connect(
        host, port, raise_errors=False
    )
    try:
        await start_gate.wait()
        for key, is_write in zip(keys, writes):
            key = int(key)
            if is_write:
                row = _derive_row(key, sizes, los)
                request = {"op": "insert", "table": table, "row": row}
            else:
                value = los[0] + key
                request = {
                    "op": "select",
                    "table": table,
                    "predicates": [
                        {"attribute": leading, "lo": value, "hi": value}
                    ],
                }
            backoff_ms = _BACKOFF_BASE_MS
            while True:
                t0 = _obs.now_ms()
                response = await client.request(request)
                dt = _obs.now_ms() - t0
                report.total_requests += 1
                status = response.get("status")
                if status == "busy":
                    report.busy += 1
                    # Shed load like a well-behaved client: back off
                    # with decorrelated jitter (so a cohort rejected
                    # together does not retry together), then retry the
                    # same request (still closed-loop).
                    backoff_ms = min(
                        _BACKOFF_CAP_MS,
                        float(
                            backoff_rng.uniform(
                                _BACKOFF_BASE_MS, backoff_ms * 3.0
                            )
                        ),
                    )
                    await asyncio.sleep(backoff_ms / 1000.0)
                    continue
                if status == "ok":
                    report.ok += 1
                    latencies.append(dt)
                else:
                    report.errors += 1
                break
    finally:
        await client.close()


async def run_loadgen(
    host: str,
    port: int,
    *,
    table: str,
    clients: int = 100,
    requests_per_client: int = 20,
    read_fraction: float = 0.9,
    zipf_s: float = 1.2,
    seed: int = 0,
) -> LoadgenReport:
    """Run ``clients`` closed-loop clients against a running server."""
    if clients < 1 or requests_per_client < 1:
        raise ServerError(
            f"need >= 1 client and request, got {clients}/"
            f"{requests_per_client}"
        )
    if not 0.0 <= read_fraction <= 1.0:
        raise ServerError(f"read_fraction must be in [0, 1], got {read_fraction}")
    _raise_fd_limit(clients)

    # One probe connection discovers the schema the keys range over.
    probe = await AsyncReproClient.connect(host, port)
    try:
        schema = await probe.request({"op": "schema", "table": table})
    finally:
        await probe.close()
    attributes = schema["attributes"]
    leading = attributes[0]["name"]
    sizes = [a["size"] for a in attributes]
    if any("lo" not in a for a in attributes):
        raise ServerError(
            "loadgen needs integer-range attributes (the schema op "
            "reported no bounds for at least one attribute)"
        )
    los = [a["lo"] for a in attributes]

    rng = np.random.default_rng(seed)
    total = clients * requests_per_client
    all_keys = zipf_values(rng, sizes[0], total, s=zipf_s)
    all_writes = rng.random(total) >= read_fraction

    report = LoadgenReport(
        clients=clients,
        requests_per_client=requests_per_client,
        read_fraction=read_fraction,
        zipf_s=zipf_s,
    )
    latencies: List[float] = []
    start_gate = asyncio.Event()
    tasks = [
        asyncio.create_task(
            _client_loop(
                host,
                port,
                table,
                leading,
                sizes,
                los,
                all_keys[i * requests_per_client : (i + 1) * requests_per_client],
                all_writes[i * requests_per_client : (i + 1) * requests_per_client],
                report,
                latencies,
                start_gate,
                # Per-client deterministic stream: jitter must differ
                # across clients (that is its whole point) yet stay
                # reproducible for a fixed run seed.
                np.random.default_rng([seed, 1_000_003, i]),
            )
        )
        for i in range(clients)
    ]
    # Connections ramp up first; the gate makes "N concurrent clients"
    # true from the first request, not just at peak.
    await asyncio.sleep(0)
    start_gate.set()
    t0 = _obs.now_ms()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    report.duration_ms = _obs.now_ms() - t0
    for outcome in results:
        if isinstance(outcome, BaseException):
            report.errors += 1
    report.latency_ms = _percentiles(latencies)
    if report.duration_ms > 0:
        report.qps = report.ok / (report.duration_ms / 1000.0)

    # Server-side counters for the artifact.
    stats_client = await AsyncReproClient.connect(host, port)
    try:
        stats = await stats_client.request({"op": "stats"})
        if stats.get("status") == "ok":
            report.server_stats = {
                k: v for k, v in stats.items() if k != "status"
            }
    finally:
        await stats_client.close()
    return report


def run_selfhosted_bench(
    *,
    tuples: int = 5_000,
    attributes: int = 4,
    mean_domain_size: int = 64,
    clients: int = 1000,
    requests_per_client: int = 5,
    read_fraction: float = 0.9,
    zipf_s: float = 1.2,
    seed: int = 0,
    max_inflight: int = 64,
    max_queued: int = 256,
    max_per_client: int = 8,
    reader_threads: int = 8,
) -> LoadgenReport:
    """Seed a table, serve it in-process, and load-generate against it.

    Everything runs in one process but over real TCP sockets, so the
    protocol, admission gate, thread pool, and MVCC path are all
    exercised exactly as a remote client would.  The metrics registry is
    enabled for the run and its snapshot lands in the report.
    """
    from repro.db.database import Database
    from repro.server.server import ReproServer, ServerConfig
    from repro.workload.generator import RelationSpec, generate_relation

    spec = RelationSpec(
        num_tuples=tuples,
        num_attributes=attributes,
        mean_domain_size=mean_domain_size,
        seed=seed,
    )
    database = Database()
    database.create_table_from_relation(
        "bench", generate_relation(spec), compressed=True
    )

    async def _run() -> LoadgenReport:
        server = ReproServer(
            database,
            ServerConfig(
                max_inflight=max_inflight,
                max_queued=max_queued,
                max_per_client=max_per_client,
                reader_threads=reader_threads,
            ),
        )
        host, port = await server.start()
        try:
            return await run_loadgen(
                host,
                port,
                table="bench",
                clients=clients,
                requests_per_client=requests_per_client,
                read_fraction=read_fraction,
                zipf_s=zipf_s,
                seed=seed,
            )
        finally:
            await server.stop()

    with _obs.scoped() as (registry, _tracer):
        report = asyncio.run(_run())
        report.server_metrics = registry.snapshot()
    return report
