"""Clients for the serving protocol: blocking and asyncio flavours.

:class:`ReproClient` is the blocking client — one socket, one request
in flight, the natural shape for tests and the CLI.  It is a resource:
close it (or use it as a context manager).

:class:`AsyncReproClient` is the asyncio client the load generator
multiplies into the thousands; same request/response helpers, awaitable.

Both speak value-level rows (the server encodes/decodes through each
table's domains) and surface the protocol's three statuses faithfully:
``ok`` returns the response, ``busy`` returns it too (callers decide how
to back off), and ``error`` raises :class:`~repro.errors.ServerError`
unless ``raise_errors=False``.

Both also enforce :data:`~repro.server.protocol.MAX_FRAME_BYTES` on
*responses*, symmetrically with the server's enforcement on requests: a
garbage or hostile length word must not make either peer buffer
gigabytes.  The convenience wrappers accept ``deadline_ms`` to attach a
per-request deadline budget (the server clamps it to its ceiling).
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProtocolError, ServerError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = ["AsyncReproClient", "ReproClient"]

_LEN = struct.Struct(">I")


def _check_response(
    response: Dict[str, Any], *, raise_errors: bool
) -> Dict[str, Any]:
    if raise_errors and response.get("status") == "error":
        raise ServerError(
            f"server error [{response.get('code')}]: "
            f"{response.get('message')}"
        )
    return response


def _with_deadline(
    request: Dict[str, Any], deadline_ms: Optional[float]
) -> Dict[str, Any]:
    if deadline_ms is not None:
        request["deadline_ms"] = deadline_ms
    return request


class ReproClient:
    """Blocking client over one TCP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        raise_errors: bool = True,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._raise_errors = raise_errors
        self._closed = False

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip: send a request object, return the response."""
        if self._closed:
            raise ServerError("client is closed")
        self._sock.sendall(encode_frame(message))
        header = self._recv_exactly(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame "
                f"(cap {MAX_FRAME_BYTES})"
            )
        response = decode_frame(self._recv_exactly(length))
        return _check_response(response, raise_errors=self._raise_errors)

    def _recv_exactly(self, count: int) -> bytes:
        chunks: List[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # Convenience wrappers -------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe (never gated by admission control)."""
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> Dict[str, Any]:
        """Health probe: readiness, drain state, inflight/queued."""
        return self.request({"op": "health"})

    def ready(self) -> bool:
        """Readiness probe — false once the server starts draining."""
        return bool(self.request({"op": "ready"}).get("ready"))

    def select(
        self,
        table: str,
        predicates: Sequence[Dict[str, Any]] = (),
        *,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Range select; each predicate is ``{attribute, lo, hi}``."""
        return self.request(
            _with_deadline(
                {
                    "op": "select",
                    "table": table,
                    "predicates": list(predicates),
                },
                deadline_ms,
            )
        )

    def insert(
        self,
        table: str,
        row: Sequence[Any],
        *,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Insert one value-level row."""
        return self.request(
            _with_deadline(
                {"op": "insert", "table": table, "row": list(row)},
                deadline_ms,
            )
        )

    def delete(
        self,
        table: str,
        row: Sequence[Any],
        *,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Delete one value-level row."""
        return self.request(
            _with_deadline(
                {"op": "delete", "table": table, "row": list(row)},
                deadline_ms,
            )
        )

    def schema(self, table: str) -> Dict[str, Any]:
        """The table's attribute names and domain sizes."""
        return self.request({"op": "schema", "table": table})

    def stats(self) -> Dict[str, Any]:
        """Server-side admission/table statistics."""
        return self.request({"op": "stats"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncReproClient:
    """Asyncio client over one TCP connection (one request in flight)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        raise_errors: bool = True,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._raise_errors = raise_errors
        self._closed = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, raise_errors: bool = True
    ) -> "AsyncReproClient":
        """Open a connection and wrap it."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, raise_errors=raise_errors)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip: send a request object, await the response."""
        if self._closed:
            raise ServerError("client is closed")
        await write_frame(self._writer, message)
        # read_frame enforces MAX_FRAME_BYTES on the announced length —
        # the same cap the blocking client checks by hand.
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection")
        return _check_response(response, raise_errors=self._raise_errors)

    async def ping(self) -> bool:
        """Liveness probe (never gated by admission control)."""
        return bool((await self.request({"op": "ping"})).get("pong"))

    async def health(self) -> Dict[str, Any]:
        """Health probe: readiness, drain state, inflight/queued."""
        return await self.request({"op": "health"})

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
