"""The asyncio query server.

One :class:`ReproServer` fronts one :class:`~repro.db.database.Database`
for many concurrent clients:

* **Reads are snapshots.**  Every ``select`` takes an MVCC snapshot
  (:meth:`Table.read_snapshot`) and executes it on a thread pool, so a
  reader sees one consistent committed version no matter what the
  writer is doing, and slow simulated I/O never blocks the event loop.
* **Writes are serialized.**  The storage engine is single-writer by
  design (docs/RECOVERY.md); ``insert``/``delete`` run one at a time
  under an asyncio lock, each publishing a new version epoch on return.
* **Overload answers, it does not stall.**  Every gated request first
  passes the :class:`~repro.server.admission.AdmissionController`;
  rejection is a typed BUSY response in bounded time.  ``ping`` bypasses
  admission — a liveness probe that goes unanswered under load would
  defeat its purpose.

Thread-safety inventory (what the reader threads may touch):
the :class:`~repro.storage.mvcc.BlockVersionStore` (latched), the
:class:`~repro.storage.buffer.BufferPool` (latched, shared latch with
its decoded cache), the simulated disk's block dict (single dict ops,
atomic under CPython), and immutable schema/codec objects.  The live
indices and the WAL belong to the writer alone.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.db.query import RangeQuery
from repro.errors import ProtocolError, ReproError, ServerError
from repro.obs import runtime as _obs
from repro.relational.algebra import RangePredicate
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    busy_response,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["ReproServer", "ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one server instance (defaults suit tests and demos)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off .address
    max_inflight: int = 64
    max_queued: int = 256
    max_per_client: int = 8
    reader_threads: int = 8


class ReproServer:
    """Serve one database over the length-prefixed JSON protocol."""

    def __init__(
        self,
        database: Database,
        config: Optional[ServerConfig] = None,
        *,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self._db = database
        self._config = config or ServerConfig()
        self._admission = admission or AdmissionController(
            max_inflight=self._config.max_inflight,
            max_queued=self._config.max_queued,
            max_per_client=self._config.max_per_client,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._write_lock = asyncio.Lock()
        self._connections: Set[asyncio.Task] = set()
        self._next_client = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def admission(self) -> AdmissionController:
        """The admission gate (stats live on it)."""
        return self._admission

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None:
            raise ServerError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound address.

        Enables MVCC on every compressed table in the catalog — tables
        must be registered before the server starts serving them.
        """
        if self._server is not None:
            raise ServerError("server is already started")
        for table in self._db.catalog:
            if table.compressed:
                table.enable_mvcc()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.reader_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting, drop open connections, join the thread pool."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        if self._server is None:
            await self.start()
        if self._server is None:  # pragma: no cover - start() guarantees it
            raise ServerError("server failed to start")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        client_id = f"c{self._next_client}"
        self._next_client += 1
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Torn or oversized frame: the stream is garbage
                    # from here, answer once and hang up.
                    await self._try_send(
                        writer, error_response("protocol", str(exc))
                    )
                    break
                if request is None:
                    break  # clean EOF
                response = await self._dispatch(request, client_id)
                await write_frame(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away / server stopping
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _try_send(
        writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        try:
            await write_frame(writer, message)
        except (ConnectionError, ProtocolError):
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: Dict[str, Any], client_id: str
    ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return ok_response(pong=True)
        if op not in ("select", "insert", "delete", "stats", "schema"):
            return error_response("bad_op", f"unknown op {op!r}")
        if not await self._admission.admit(client_id):
            return busy_response()
        t0 = _obs.now_ms()
        try:
            with _obs.span("server.request", op=op, client=client_id):
                if op == "select":
                    response = await self._run_blocking(
                        self._exec_select, request
                    )
                elif op in ("insert", "delete"):
                    async with self._write_lock:
                        response = await self._run_blocking(
                            self._exec_write, request
                        )
                elif op == "schema":
                    response = self._exec_schema(request)
                else:
                    response = self._exec_stats()
        except ReproError as exc:
            self._count_error()
            response = error_response(type(exc).__name__, str(exc))
        finally:
            self._admission.release(client_id)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("server.requests")
            reg.observe("server.latency_ms", _obs.now_ms() - t0)
        return response

    async def _run_blocking(self, fn, request: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        if self._executor is None:
            raise ServerError("server is not started")
        return await loop.run_in_executor(self._executor, fn, request)

    def _count_error(self) -> None:
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("server.errors")

    # ------------------------------------------------------------------
    # Operations (reads run on the thread pool)
    # ------------------------------------------------------------------

    def _exec_select(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        schema = table.schema
        predicates: List[RangePredicate] = []
        for spec in request.get("predicates", ()):
            if not isinstance(spec, dict):
                raise ProtocolError("predicate must be an object")
            attribute = _field(spec, "attribute", str)
            domain = schema.attribute(attribute).domain
            lo = domain.encode_bound(spec.get("lo"))
            hi = domain.encode_bound(spec.get("hi"))
            predicates.append(RangePredicate(attribute, lo, hi))
        with table.read_snapshot() as snapshot:
            result = snapshot.select(RangeQuery(predicates))
            rows = [schema.decode_tuple(t) for t in result.tuples]
            return ok_response(
                rows=rows,
                count=len(rows),
                csn=snapshot.csn,
                blocks_read=result.blocks_read,
            )

    def _exec_write(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        row = _field(request, "row", list)
        encoded = table.schema.encode_tuple(row)
        if request["op"] == "insert":
            table.insert(encoded)
            removed = None
        else:
            removed = table.delete(encoded)
        store = table.mvcc
        return ok_response(
            removed=removed, csn=store.csn if store is not None else None
        )

    def _exec_schema(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        attributes: List[Dict[str, Any]] = []
        for a in table.schema.attributes:
            entry: Dict[str, Any] = {"name": a.name, "size": a.domain.size}
            # Integer-range domains advertise their bounds so a client
            # (the load generator) can synthesise in-domain values.
            lo = getattr(a.domain, "lo", None)
            if isinstance(lo, int):
                entry["lo"] = lo
            attributes.append(entry)
        return ok_response(
            attributes=attributes,
            tuples=table.num_tuples,
            blocks=table.num_blocks,
            compressed=table.compressed,
        )

    def _exec_stats(self) -> Dict[str, Any]:
        tables: Dict[str, Dict[str, Any]] = {}
        for table in self._db.catalog:
            entry: Dict[str, Any] = {
                "tuples": table.num_tuples,
                "blocks": table.num_blocks,
            }
            store = table.mvcc
            if store is not None:
                entry["csn"] = store.csn
                entry["versions"] = store.version_count
                entry["pinned_snapshots"] = store.pinned_snapshots
            pool = table.buffer_pool
            if pool is not None:
                entry["buffer"] = pool.stats.as_dict()
            tables[table.name] = entry
        return ok_response(
            admission=self._admission.stats.as_dict(),
            inflight=self._admission.inflight,
            queued=self._admission.queued,
            tables=tables,
        )


def _field(request: Dict[str, Any], name: str, kind: type) -> Any:
    """A required, type-checked request field."""
    value = request.get(name)
    if not isinstance(value, kind):
        raise ProtocolError(
            f"request field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value
