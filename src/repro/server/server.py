"""The asyncio query server.

One :class:`ReproServer` fronts one :class:`~repro.db.database.Database`
for many concurrent clients:

* **Reads are snapshots.**  Every ``select`` takes an MVCC snapshot
  (:meth:`Table.read_snapshot`) and executes it on a thread pool, so a
  reader sees one consistent committed version no matter what the
  writer is doing, and slow simulated I/O never blocks the event loop.
* **Writes are serialized.**  The storage engine is single-writer by
  design (docs/RECOVERY.md); ``insert``/``delete`` run one at a time
  under an asyncio lock, each publishing a new version epoch on return.
* **Overload answers, it does not stall.**  Every gated request first
  passes the :class:`~repro.server.admission.AdmissionController`;
  rejection is a typed BUSY response in bounded time.  ``ping`` bypasses
  admission — a liveness probe that goes unanswered under load would
  defeat its purpose — and so do ``health`` and ``ready``.
* **Every request has a deadline.**  Each op class carries a budget
  (:class:`ServerConfig`; a client may send ``deadline_ms``, clamped to
  the server's ceiling).  A select that blows its budget is answered
  with a typed ``deadline`` error and cooperatively cancelled at the
  next block boundary; a write that blows its budget while queued is
  abandoned before it executes, and one that already started runs to
  completion off-path (single-writer storage must never be interrupted
  mid-mutation) while the client gets ``outcome: "unknown"``.
* **Shutdown drains.**  :meth:`stop` is three-phase: stop accepting,
  let in-flight requests finish (up to ``drain_timeout``) while late
  arrivals get a typed ``shutting_down`` answer, then cancel the
  stragglers.  ``ready`` flips false the moment draining starts.
* **Slow clients are evicted, not accumulated.**  Response writes are
  bounded by ``send_timeout_s`` over a bounded transport buffer, and an
  idle-connection reaper (``idle_timeout_s``) closes connections that
  send nothing — one wedged reader cannot pin a connection task or
  buffer unbounded responses.

Thread-safety inventory (what the reader threads may touch):
the :class:`~repro.storage.mvcc.BlockVersionStore` (latched), the
:class:`~repro.storage.buffer.BufferPool` (latched, shared latch with
its decoded cache), the simulated disk's block dict (single dict ops,
atomic under CPython), and immutable schema/codec objects.  The live
indices and the WAL belong to the writer alone.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.db.query import RangeQuery
from repro.errors import ProtocolError, ReproError, ServerError
from repro.obs import runtime as _obs
from repro.relational.algebra import RangePredicate
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    busy_response,
    deadline_response,
    error_response,
    ok_response,
    read_frame,
    shutdown_response,
    write_frame,
)

__all__ = ["ReproServer", "ServerConfig"]

#: Ops that pass the admission gate (everything except the probes).
_GATED_OPS = ("select", "insert", "delete", "stats", "schema")


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one server instance (defaults suit tests and demos)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off .address
    max_inflight: int = 64
    max_queued: int = 256
    max_per_client: int = 8
    reader_threads: int = 8
    #: Per-op deadline budgets (milliseconds).  A request may carry its
    #: own ``deadline_ms``, which is honoured but clamped to
    #: ``max_deadline_ms`` — a client cannot buy unbounded patience.
    select_deadline_ms: float = 30_000.0
    write_deadline_ms: float = 30_000.0
    stats_deadline_ms: float = 10_000.0
    max_deadline_ms: float = 60_000.0
    #: How long :meth:`ReproServer.stop` lets in-flight requests finish
    #: before cancelling them (seconds).
    drain_timeout_s: float = 5.0
    #: Bound on one response write (framing + transport drain).  A
    #: client that stops reading past this is evicted.
    send_timeout_s: float = 30.0
    #: Connections that send nothing for this long are reaped.
    #: ``None`` disables the reaper.
    idle_timeout_s: Optional[float] = 600.0
    #: High-water mark for the per-connection transport write buffer —
    #: the cap on how much of a response a wedged reader can make the
    #: server hold in user space before ``drain()`` (and with it the
    #: send timeout) engages.
    write_buffer_bytes: int = 256 * 1024


class ReproServer:
    """Serve one database over the length-prefixed JSON protocol."""

    def __init__(
        self,
        database: Database,
        config: Optional[ServerConfig] = None,
        *,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self._db = database
        self._config = config or ServerConfig()
        self._admission = admission or AdmissionController(
            max_inflight=self._config.max_inflight,
            max_queued=self._config.max_queued,
            max_per_client=self._config.max_per_client,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._write_lock = asyncio.Lock()
        self._connections: Set[asyncio.Task] = set()
        #: Watchers for writes that outlived their deadline: each holds
        #: its admission slot until the storage engine actually finishes.
        self._background: Set[asyncio.Task] = set()
        self._next_client = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def admission(self) -> AdmissionController:
        """The admission gate (stats live on it)."""
        return self._admission

    @property
    def config(self) -> ServerConfig:
        """The configuration this server was built with."""
        return self._config

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress (or completed)."""
        return self._draining

    @property
    def ready(self) -> bool:
        """Whether the server is accepting and executing new requests.

        Flips false the moment :meth:`stop` begins draining — the
        readiness probe is what tells a load balancer to route away
        *before* requests start bouncing off ``shutting_down``.
        """
        return self._server is not None and not self._draining

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None:
            raise ServerError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound address.

        Enables MVCC on every compressed table in the catalog — tables
        must be registered before the server starts serving them.
        """
        if self._server is not None:
            raise ServerError("server is already started")
        for table in self._db.catalog:
            if table.compressed:
                table.enable_mvcc()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.reader_threads,
            thread_name_prefix="repro-serve",
        )
        self._draining = False
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        return self.address

    async def stop(self, *, drain_timeout: Optional[float] = None) -> None:
        """Three-phase graceful shutdown (docs/SERVING.md).

        1. Stop accepting: the listener closes and ``ready`` flips
           false; new requests on existing connections are answered
           with a typed ``shutting_down`` error, never a reset.
        2. Drain: in-flight requests (including deadline-orphaned
           writes) get up to ``drain_timeout`` seconds to finish
           (default :attr:`ServerConfig.drain_timeout_s`; ``0`` restores
           the old cancel-immediately behaviour).
        3. Cancel stragglers: remaining connection tasks and watchers
           are cancelled, the reader pool is shut down.
        """
        if self._server is None and self._executor is None:
            return
        timeout = (
            self._config.drain_timeout_s
            if drain_timeout is None
            else drain_timeout
        )
        # Phase 1 — stop accepting, flip readiness.
        self._draining = True
        reg = _obs.REGISTRY
        if reg is not None:
            reg.set_gauge("server.draining", 1.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Phase 2 — let in-flight work finish.
        drained = await self._quiesce(timeout)
        if not drained:
            reg = _obs.REGISTRY
            if reg is not None:
                reg.inc("server.drain_timeouts")
        # Phase 3 — cancel stragglers.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        self._background.clear()
        if self._executor is not None:
            # Never block the event loop on wedged reader threads (a
            # stalled fault-injected read, say); pending work is
            # cancelled and running threads finish on their own.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._server = None
        reg = _obs.REGISTRY
        if reg is not None:
            reg.set_gauge("server.draining", 0.0)

    async def _quiesce(self, timeout: float) -> bool:
        """Wait until no request holds an admission slot; True if drained."""
        deadline = _obs.now_ms() + timeout * 1000.0
        while not (self._admission.idle and not self._background):
            if _obs.now_ms() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        if self._server is None:
            await self.start()
        if self._server is None:  # pragma: no cover - start() guarantees it
            raise ServerError("server failed to start")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        client_id = f"c{self._next_client}"
        self._next_client += 1
        transport = writer.transport
        if transport is not None:
            # Bound user-space buffering toward this client; past the
            # high-water mark write_frame's drain() blocks and the send
            # timeout takes over (slow-client defense).
            transport.set_write_buffer_limits(
                high=self._config.write_buffer_bytes
            )
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.TimeoutError:
                    # Idle reaper: nothing arrived for idle_timeout_s.
                    self._count("server.idle_evictions")
                    break
                except ProtocolError as exc:
                    # Torn or oversized frame: the stream is garbage
                    # from here, answer once and hang up.
                    await self._try_send(
                        writer, error_response("protocol", str(exc))
                    )
                    break
                if request is None:
                    break  # clean EOF
                response = await self._dispatch(request, client_id)
                if not await self._send_response(writer, response):
                    break  # slow client evicted
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away / server stopping
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, Any]]:
        """One frame, bounded by the idle timeout when one is set."""
        idle = self._config.idle_timeout_s
        if idle is None:
            return await read_frame(reader)
        return await asyncio.wait_for(read_frame(reader), timeout=idle)

    async def _send_response(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> bool:
        """Write one response in bounded time; False evicts the client.

        A send that exceeds ``send_timeout_s`` (the peer stopped reading
        and both buffers filled) aborts the transport — a partial frame
        may be on the wire, so the stream cannot be reused.
        """
        try:
            await asyncio.wait_for(
                write_frame(writer, message),
                timeout=self._config.send_timeout_s,
            )
            return True
        except asyncio.TimeoutError:
            self._count("server.slow_client_evictions")
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        except ProtocolError as exc:
            # The *response* could not be framed (result page above the
            # frame cap).  The request frame itself was fine, so the
            # connection survives with a typed error instead.
            self._count("server.internal_errors")
            await self._try_send(
                writer,
                error_response(
                    "internal", f"response could not be framed: {exc}"
                ),
            )
            return True

    async def _try_send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        with contextlib.suppress(
            ConnectionError, ProtocolError, asyncio.TimeoutError
        ):
            await asyncio.wait_for(
                write_frame(writer, message),
                timeout=self._config.send_timeout_s,
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: Dict[str, Any], client_id: str
    ) -> Dict[str, Any]:
        op = request.get("op")
        # Probes bypass admission *and* drain: liveness and readiness
        # must stay answerable while the server is overloaded or dying.
        if op == "ping":
            return ok_response(pong=True)
        if op == "health":
            return self._exec_health()
        if op == "ready":
            return ok_response(ready=self.ready)
        if op not in _GATED_OPS:
            return error_response("bad_op", f"unknown op {op!r}")
        if self._draining:
            self._count("server.shutdown_rejected")
            return shutdown_response()
        try:
            budget_ms = self._deadline_budget(op, request)
        except ProtocolError as exc:
            return error_response("bad_deadline", str(exc))
        if not await self._admission.admit(client_id):
            return busy_response()
        release_now = True
        t0 = _obs.now_ms()
        try:
            with _obs.span("server.request", op=op, client=client_id):
                if op == "select":
                    response = await self._timed_select(request, budget_ms)
                elif op in ("insert", "delete"):
                    response, release_now = await self._timed_write(
                        request, budget_ms, client_id
                    )
                elif op == "schema":
                    response = self._exec_schema(request)
                else:
                    response = await self._timed_stats(budget_ms)
        except ReproError as exc:
            self._count("server.errors")
            response = error_response(type(exc).__name__, str(exc))
        except Exception as exc:  # repro: noqa[R002] — answered typed
            # An unexpected failure (a bug, not a bad request) must not
            # kill the connection task and leave the client a bare EOF:
            # count it, answer typed, keep serving.
            self._count("server.internal_errors")
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            if release_now:
                self._admission.release(client_id)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("server.requests")
            reg.observe("server.latency_ms", _obs.now_ms() - t0)
        return response

    def _deadline_budget(self, op: str, request: Dict[str, Any]) -> float:
        """The request's budget in ms: client ask clamped, else per-op."""
        raw = request.get("deadline_ms")
        if raw is not None:
            if (
                isinstance(raw, bool)
                or not isinstance(raw, (int, float))
                or raw <= 0
            ):
                raise ProtocolError(
                    f"deadline_ms must be a positive number, got {raw!r}"
                )
            return min(float(raw), self._config.max_deadline_ms)
        if op == "select":
            return self._config.select_deadline_ms
        if op in ("insert", "delete"):
            return self._config.write_deadline_ms
        return self._config.stats_deadline_ms

    async def _timed_select(
        self, request: Dict[str, Any], budget_ms: float
    ) -> Dict[str, Any]:
        """A snapshot select bounded by its deadline.

        On timeout the typed ``deadline`` answer goes out immediately
        and the reader thread is cancelled *cooperatively*: the flag is
        polled at every block boundary, so a thread pinned inside one
        stalled disk read lets go as soon as that read returns, instead
        of finishing the whole scan for nobody.
        """
        loop = asyncio.get_running_loop()
        if self._executor is None:
            raise ServerError("server is not started")
        cancel = threading.Event()
        future = loop.run_in_executor(
            self._executor, self._exec_select, request, cancel
        )
        try:
            return await asyncio.wait_for(future, timeout=budget_ms / 1000.0)
        except asyncio.TimeoutError:
            cancel.set()
            self._count("server.deadline_exceeded")
            return deadline_response(budget_ms)

    async def _timed_write(
        self, request: Dict[str, Any], budget_ms: float, client_id: str
    ) -> Tuple[Dict[str, Any], bool]:
        """A serialized write bounded by its deadline.

        Returns ``(response, release_now)``.  A write whose deadline
        fires while it is still queued behind the write lock is
        abandoned before touching storage (``outcome: not_executed``).
        One that already started must run to completion — interrupting
        the single-writer engine mid-mutation is how torn state happens
        — so the client gets ``outcome: unknown`` now and a watcher
        task holds the admission slot until the engine finishes.
        """
        loop = asyncio.get_running_loop()
        if self._executor is None:
            raise ServerError("server is not started")
        flags = {"started": False, "abandoned": False}

        async def locked_write() -> Dict[str, Any]:
            async with self._write_lock:
                if flags["abandoned"]:
                    raise ServerError("write abandoned at its deadline")
                flags["started"] = True
                return await loop.run_in_executor(
                    self._executor, self._exec_write, request
                )

        task = asyncio.ensure_future(locked_write())
        try:
            response = await asyncio.wait_for(
                asyncio.shield(task), timeout=budget_ms / 1000.0
            )
            return response, True
        except asyncio.TimeoutError:
            self._count("server.deadline_exceeded")
            if not flags["started"]:
                # Still queued: nothing touched storage; abandon it.
                # (The flag flip and this check both run on the event
                # loop, so the decision is race-free.)
                flags["abandoned"] = True
                task.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, ReproError
                ):
                    await task
                return (
                    deadline_response(budget_ms, outcome="not_executed"),
                    True,
                )
            self._watch_late_write(task, client_id)
            return deadline_response(budget_ms, outcome="unknown"), False

    def _watch_late_write(
        self, task: "asyncio.Task[Dict[str, Any]]", client_id: str
    ) -> None:
        """Hold the admission slot until a deadline-orphaned write ends."""

        async def waiter() -> None:
            try:
                await task
            except ReproError:
                self._count("server.errors")
            except Exception:  # repro: noqa[R002] — orphaned write; counted
                self._count("server.internal_errors")
            finally:
                self._admission.release(client_id)
                self._count("server.late_writes")

        watcher = asyncio.ensure_future(waiter())
        self._background.add(watcher)
        watcher.add_done_callback(self._background.discard)

    async def _timed_stats(self, budget_ms: float) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        if self._executor is None:
            raise ServerError("server is not started")
        future = loop.run_in_executor(self._executor, self._exec_stats)
        try:
            return await asyncio.wait_for(future, timeout=budget_ms / 1000.0)
        except asyncio.TimeoutError:
            self._count("server.deadline_exceeded")
            return deadline_response(budget_ms)

    def _count(self, metric: str) -> None:
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc(metric)

    # ------------------------------------------------------------------
    # Operations (reads run on the thread pool)
    # ------------------------------------------------------------------

    def _exec_select(
        self, request: Dict[str, Any], cancel: threading.Event
    ) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        schema = table.schema
        predicates: List[RangePredicate] = []
        for spec in request.get("predicates", ()):
            if not isinstance(spec, dict):
                raise ProtocolError("predicate must be an object")
            attribute = _field(spec, "attribute", str)
            domain = schema.attribute(attribute).domain
            lo = domain.encode_bound(spec.get("lo"))
            hi = domain.encode_bound(spec.get("hi"))
            predicates.append(RangePredicate(attribute, lo, hi))
        with table.read_snapshot() as snapshot:
            result = snapshot.select(
                RangeQuery(predicates), should_cancel=cancel.is_set
            )
            rows = [schema.decode_tuple(t) for t in result.tuples]
            return ok_response(
                rows=rows,
                count=len(rows),
                csn=snapshot.csn,
                blocks_read=result.blocks_read,
            )

    def _exec_write(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        row = _field(request, "row", list)
        encoded = table.schema.encode_tuple(row)
        if request["op"] == "insert":
            table.insert(encoded)
            removed = None
        else:
            removed = table.delete(encoded)
        store = table.mvcc
        return ok_response(
            removed=removed, csn=store.csn if store is not None else None
        )

    def _exec_schema(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self._db.table(_field(request, "table", str))
        attributes: List[Dict[str, Any]] = []
        for a in table.schema.attributes:
            entry: Dict[str, Any] = {"name": a.name, "size": a.domain.size}
            # Integer-range domains advertise their bounds so a client
            # (the load generator) can synthesise in-domain values.
            lo = getattr(a.domain, "lo", None)
            if isinstance(lo, int):
                entry["lo"] = lo
            attributes.append(entry)
        return ok_response(
            attributes=attributes,
            tuples=table.num_tuples,
            blocks=table.num_blocks,
            compressed=table.compressed,
        )

    def _exec_health(self) -> Dict[str, Any]:
        """The liveness/readiness probe (admission- and drain-exempt)."""
        return ok_response(
            healthy=True,
            ready=self.ready,
            draining=self._draining,
            inflight=self._admission.inflight,
            queued=self._admission.queued,
        )

    def _exec_stats(self) -> Dict[str, Any]:
        tables: Dict[str, Dict[str, Any]] = {}
        for table in self._db.catalog:
            entry: Dict[str, Any] = {
                "tuples": table.num_tuples,
                "blocks": table.num_blocks,
            }
            store = table.mvcc
            if store is not None:
                entry["csn"] = store.csn
                entry["versions"] = store.version_count
                entry["pinned_snapshots"] = store.pinned_snapshots
            pool = table.buffer_pool
            if pool is not None:
                entry["buffer"] = pool.stats.as_dict()
            tables[table.name] = entry
        return ok_response(
            admission=self._admission.stats.as_dict(),
            inflight=self._admission.inflight,
            queued=self._admission.queued,
            draining=self._draining,
            tables=tables,
        )


def _field(request: Dict[str, Any], name: str, kind: type) -> Any:
    """A required, type-checked request field."""
    value = request.get(name)
    if not isinstance(value, kind):
        raise ProtocolError(
            f"request field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value
