"""Admission control: bounded concurrency with per-client fairness.

An overloaded server has exactly two honest options: queue a request
(bounded!) or refuse it.  :class:`AdmissionController` implements both
bounds and the refusal:

* at most ``max_inflight`` requests execute at once (semaphore);
* at most ``max_queued`` more may wait for a slot — beyond that the
  request is rejected immediately with a typed BUSY response, so an
  overloaded server keeps answering in bounded time instead of building
  an unbounded backlog;
* at most ``max_per_client`` requests may be queued-or-executing per
  connection, so one aggressive client cannot occupy the whole queue
  and starve the rest — that is the fairness bound.

The controller is event-loop confined (the server calls it only from
its asyncio loop), so its counters need no latch; the executing work it
admits is what runs on threads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Union

from repro.errors import ServerError
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Lifetime admission counters (monotonic)."""

    admitted: int = 0
    completed: int = 0
    rejected_queue_full: int = 0
    rejected_client_cap: int = 0

    @property
    def rejected(self) -> int:
        """Total BUSY responses issued."""
        return self.rejected_queue_full + self.rejected_client_cap

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """All counters under stable keys (exporter feed)."""
        out = snapshot_dataclass(self)
        out["rejected"] = self.rejected
        return out


class AdmissionController:
    """Semaphore-plus-bounded-queue gate in front of request execution."""

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        max_queued: int = 256,
        max_per_client: int = 8,
    ) -> None:
        if min(max_inflight, max_per_client) < 1 or max_queued < 0:
            raise ServerError(
                f"bad admission bounds: inflight={max_inflight}, "
                f"queued={max_queued}, per_client={max_per_client}"
            )
        self._max_inflight = max_inflight
        self._max_queued = max_queued
        self._max_per_client = max_per_client
        self._sem = asyncio.Semaphore(max_inflight)
        self._queued = 0
        self._inflight = 0
        self._per_client: Dict[str, int] = {}
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for an execution slot."""
        return self._queued

    @property
    def idle(self) -> bool:
        """Whether nothing is executing or queued.

        The graceful-drain loop polls this: once the gate is idle every
        admitted request has paired its :meth:`release`, so the server
        may close without cancelling work (docs/SERVING.md).
        """
        return self._inflight == 0 and self._queued == 0

    @property
    def max_inflight(self) -> int:
        """Concurrent-execution bound."""
        return self._max_inflight

    @property
    def max_queued(self) -> int:
        """Waiting-request bound (0 = never queue, reject instead)."""
        return self._max_queued

    @property
    def max_per_client(self) -> int:
        """Per-connection queued-or-executing bound (fairness)."""
        return self._max_per_client

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    async def admit(self, client_id: str) -> bool:
        """Try to claim an execution slot for ``client_id``.

        Returns ``False`` — *immediately, without waiting* — when either
        bound would be exceeded; the caller answers BUSY.  Returns
        ``True`` once a slot is held; the caller must pair it with
        :meth:`release` on every path.
        """
        held = self._per_client.get(client_id, 0)
        if held >= self._max_per_client:
            self.stats.rejected_client_cap += 1
            self._count_rejection("client_cap")
            return False
        if self._sem.locked() and self._queued >= self._max_queued:
            self.stats.rejected_queue_full += 1
            self._count_rejection("queue_full")
            return False
        self._per_client[client_id] = held + 1
        self._queued += 1
        try:
            await self._sem.acquire()
        except BaseException:
            # Cancelled while queued (client hung up): undo the claim.
            self._queued -= 1
            self._drop_client(client_id)
            raise
        self._queued -= 1
        self._inflight += 1
        self.stats.admitted += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("server.admitted")
            reg.set_gauge("server.inflight", float(self._inflight))
            reg.set_gauge("server.queued", float(self._queued))
        return True

    def release(self, client_id: str) -> None:
        """Return an execution slot claimed by :meth:`admit`."""
        if self._inflight < 1:
            raise ServerError("release without a matching admit")
        self._inflight -= 1
        self._drop_client(client_id)
        self._sem.release()
        self.stats.completed += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.set_gauge("server.inflight", float(self._inflight))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drop_client(self, client_id: str) -> None:
        held = self._per_client.get(client_id, 0)
        if held <= 1:
            self._per_client.pop(client_id, None)
        else:
            self._per_client[client_id] = held - 1

    def _count_rejection(self, reason: str) -> None:
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("server.busy")
            reg.inc(f"server.busy_{reason}")
