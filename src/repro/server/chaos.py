"""Network + disk chaos harness for the serving layer.

Robustness claims are only as good as the faults they were tested
under (the same argument :mod:`repro.storage.faults` makes for
durability).  This module is the serving layer's adversary:

* :class:`ChaosProxy` — a seeded TCP relay that sits between clients
  and the server and misbehaves per a :class:`ChaosPlan`: it delays
  chunks, stalls them, cuts connections mid-frame, and truncates a
  chunk before cutting — every failure mode a real network (or a dying
  peer) shows a length-prefixed protocol.
* :func:`run_chaos_sweep` — the harness: a matrix of scenario kinds ×
  seeds (network faults through the proxy, transient/stalled/crashing
  disks via :class:`~repro.storage.faults.FaultyDisk`, a full server
  crash-restart over WAL recovery), each running a small seeded
  workload and checking the four serving invariants:

  1. **No acknowledged write is ever lost.**  Every insert the client
     saw ``ok`` for is still selectable after the fault clears — across
     a crash, after recovery.
  2. **No client hangs past its deadline.**  Every request is guarded
     client-side at 2x its deadline budget plus slack; a guard firing
     is a violation, whatever else happened.
  3. **Refusals are typed.**  Every non-ok answer is ``busy`` or a
     coded ``error`` (``deadline``, ``shutting_down``, ...), never a
     bare or malformed response.
  4. **The server returns to steady state.**  Once the fault clears,
     ping, select, and stats succeed on a direct connection, and every
     admission slot has been released (``admitted == completed``).

Scenarios are deterministic per ``(kind, seed)`` — rule R007 — so a
failing scenario replays exactly.  ``repro chaos`` runs the sweep and
writes the report as ``BENCH_chaos.json``; the pytest sweep asserts the
aggregate invariants on every run.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ProtocolError, ServerError
from repro.obs import runtime as _obs
from repro.server.client import AsyncReproClient
from repro.server.server import ReproServer, ServerConfig
from repro.storage.faults import FaultInjector, FaultyDisk

__all__ = [
    "SCENARIO_KINDS",
    "ChaosPlan",
    "ChaosProxy",
    "ChaosStats",
    "run_chaos_sweep",
]

#: Every scenario kind the sweep knows.  Network kinds exercise the
#: proxy; disk kinds compose proxy latency with storage faults;
#: ``crash_restart`` kills the machine mid-workload and recovers it
#: from the write-ahead log.
SCENARIO_KINDS = (
    "latency",
    "stall",
    "disconnect",
    "truncate",
    "disk_transient",
    "disk_stall_deadline",
    "crash_restart",
)

#: Default per-request deadline budget the workload attaches (ms); the
#: client-side hang guard is derived from it (2x + slack).
_REQUEST_DEADLINE_MS = 2_000.0
_GUARD_SLACK_S = 2.0

#: The workload's key split: seed rows take leading keys [0, _SPLIT),
#: chaos-era inserts take [_SPLIT, _DOMAIN - 1) — so "acked write
#: survived" is checked against rows that provably were NOT in the
#: seed data.  Key _DOMAIN - 1 is a seed row pinning the domain's top.
_DOMAIN = 64
_SPLIT = 32


@dataclass(frozen=True)
class ChaosPlan:
    """One relay's misbehaviour rates (all decided per relayed chunk)."""

    delay_rate: float = 0.0
    delay_ms: float = 0.0
    stall_rate: float = 0.0
    stall_ms: float = 0.0
    disconnect_rate: float = 0.0
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "delay_rate",
            "stall_rate",
            "disconnect_rate",
            "truncate_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ServerError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_ms < 0 or self.stall_ms < 0:
            raise ServerError("delay_ms/stall_ms must be >= 0")


@dataclass
class ChaosStats:
    """What one proxy actually did (the report's fault mix)."""

    connections: int = 0
    chunks_relayed: int = 0
    bytes_relayed: int = 0
    delays: int = 0
    stalls: int = 0
    disconnects: int = 0
    truncations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections": self.connections,
            "chunks_relayed": self.chunks_relayed,
            "bytes_relayed": self.bytes_relayed,
            "delays": self.delays,
            "stalls": self.stalls,
            "disconnects": self.disconnects,
            "truncations": self.truncations,
        }


class _Cut(Exception):
    """Internal: the plan decided this connection dies now."""


class ChaosProxy:
    """A seeded misbehaving TCP relay in front of one server.

    Listens on an ephemeral port and forwards byte chunks to the
    target, rolling the plan's dice on every chunk in both directions.
    A truncation forwards a strict prefix of the chunk and then cuts —
    the peer sees a torn frame, exactly what a crashing sender leaves
    behind.  All randomness is seeded (R007).
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        plan: ChaosPlan,
        seed: int = 0,
        chunk_bytes: int = 2048,
    ) -> None:
        if chunk_bytes < 2:
            raise ServerError(f"chunk_bytes must be >= 2, got {chunk_bytes}")
        self._target = (target_host, target_port)
        self._plan = plan
        self._rng = np.random.default_rng(seed)
        self._chunk_bytes = chunk_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._relays: Set[asyncio.Task] = set()
        self.stats = ChaosStats()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) clients should connect to."""
        if self._server is None:
            raise ServerError("proxy is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise ServerError("proxy is already started")
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._relays):
            task.cancel()
        if self._relays:
            await asyncio.gather(*self._relays, return_exceptions=True)
        self._relays.clear()

    async def _handle(
        self, creader: asyncio.StreamReader, cwriter: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._relays.add(task)
        self.stats.connections += 1
        swriter: Optional[asyncio.StreamWriter] = None
        cut = False
        try:
            sreader, swriter = await asyncio.open_connection(*self._target)
            up = asyncio.ensure_future(self._pump(creader, swriter))
            down = asyncio.ensure_future(self._pump(sreader, cwriter))
            done, pending = await asyncio.wait(
                {up, down}, return_when=asyncio.FIRST_COMPLETED
            )
            for t in pending:
                t.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            cut = any(t.exception() is not None for t in done)
        except (ConnectionError, OSError, asyncio.CancelledError):
            cut = True
        finally:
            if task is not None:
                self._relays.discard(task)
            for writer in (cwriter, swriter):
                if writer is None:
                    continue
                transport = writer.transport
                if cut and transport is not None:
                    transport.abort()  # torn, like the fault we model
                else:
                    writer.close()

    async def _pump(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Relay one direction until EOF or the plan cuts it."""
        plan = self._plan
        while True:
            chunk = await reader.read(self._chunk_bytes)
            if not chunk:
                writer.write_eof()
                return
            self.stats.chunks_relayed += 1
            self.stats.bytes_relayed += len(chunk)
            if (
                plan.disconnect_rate
                and self._rng.random() < plan.disconnect_rate
            ):
                self.stats.disconnects += 1
                raise _Cut()
            if (
                plan.truncate_rate
                and len(chunk) > 1
                and self._rng.random() < plan.truncate_rate
            ):
                self.stats.truncations += 1
                writer.write(chunk[: int(self._rng.integers(1, len(chunk)))])
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                raise _Cut()
            if plan.stall_rate and self._rng.random() < plan.stall_rate:
                self.stats.stalls += 1
                await asyncio.sleep(plan.stall_ms / 1000.0)
            elif plan.delay_rate and self._rng.random() < plan.delay_rate:
                self.stats.delays += 1
                await asyncio.sleep(
                    float(self._rng.uniform(0.0, plan.delay_ms)) / 1000.0
                )
            writer.write(chunk)
            await writer.drain()


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


@dataclass
class _ScenarioOutcome:
    """Everything one scenario measured (one report entry)."""

    kind: str
    seed: int
    requests: int = 0
    ok: int = 0
    busy: int = 0
    typed_errors: Dict[str, int] = field(default_factory=dict)
    reconnects: int = 0
    acked_writes: int = 0
    lost_acked_writes: int = 0
    hangs: int = 0
    untyped_responses: int = 0
    deadline_violations: int = 0
    steady_state_ok: bool = False
    slots_released: bool = False
    latencies_ms: List[float] = field(default_factory=list)
    proxy: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (
            self.lost_acked_writes == 0
            and self.hangs == 0
            and self.untyped_responses == 0
            and self.deadline_violations == 0
            and self.steady_state_ok
            and self.slots_released
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "passed": self.passed,
            "requests": self.requests,
            "ok": self.ok,
            "busy": self.busy,
            "typed_errors": dict(self.typed_errors),
            "reconnects": self.reconnects,
            "acked_writes": self.acked_writes,
            "lost_acked_writes": self.lost_acked_writes,
            "hangs": self.hangs,
            "untyped_responses": self.untyped_responses,
            "deadline_violations": self.deadline_violations,
            "steady_state_ok": self.steady_state_ok,
            "slots_released": self.slots_released,
            "proxy": dict(self.proxy),
            "faults": dict(self.faults),
        }


def _derive_row(key: int) -> List[int]:
    """The unique in-domain row for one leading key."""
    return [key, (key * 31) % _DOMAIN, (key * 7 + 3) % _DOMAIN]


def _seed_rows() -> List[List[int]]:
    """Seed data: keys [0, _SPLIT) plus the domain-pinning top key."""
    return [_derive_row(k) for k in range(_SPLIT)] + [
        [_DOMAIN - 1, _DOMAIN - 1, _DOMAIN - 1]
    ]


def _plan_for(kind: str) -> ChaosPlan:
    if kind == "latency":
        return ChaosPlan(delay_rate=0.5, delay_ms=15.0)
    if kind == "stall":
        return ChaosPlan(
            delay_rate=0.25, delay_ms=5.0, stall_rate=0.1, stall_ms=250.0
        )
    if kind == "disconnect":
        return ChaosPlan(delay_rate=0.2, delay_ms=5.0, disconnect_rate=0.06)
    if kind == "truncate":
        return ChaosPlan(delay_rate=0.2, delay_ms=5.0, truncate_rate=0.06)
    # Disk-fault kinds still ride a mildly laggy network: faults compose.
    return ChaosPlan(delay_rate=0.25, delay_ms=5.0)


class _Workload:
    """One scenario's client-side state (shared by its client tasks)."""

    def __init__(self, outcome: _ScenarioOutcome, budget_ms: float) -> None:
        self.outcome = outcome
        self.budget_ms = budget_ms
        self.guard_s = 2.0 * budget_ms / 1000.0 + _GUARD_SLACK_S
        self.acked: Set[int] = set()

    def classify(
        self, response: Dict[str, Any], elapsed_ms: float
    ) -> str:
        """Bucket one response; returns its status for flow control."""
        out = self.outcome
        out.requests += 1
        status = response.get("status")
        if status == "ok":
            out.ok += 1
            out.latencies_ms.append(elapsed_ms)
            return "ok"
        if status == "busy" and response.get("retry") is True:
            out.busy += 1
            return "busy"
        code = response.get("code")
        if status == "error" and isinstance(code, str) and code:
            out.typed_errors[code] = out.typed_errors.get(code, 0) + 1
            if code == "deadline":
                budget = float(response.get("budget_ms") or self.budget_ms)
                if elapsed_ms > 2.0 * budget:
                    out.deadline_violations += 1
            return "error"
        out.untyped_responses += 1
        return "untyped"


async def _request_once(
    client: AsyncReproClient, request: Dict[str, Any], work: _Workload
) -> Tuple[Optional[Dict[str, Any]], float]:
    """One guarded round trip; ``None`` means the connection died.

    The guard is the harness's hang detector: a request that gets no
    answer within 2x its deadline budget (plus slack) is a violation no
    matter what the server was doing.
    """
    t0 = _obs.now_ms()
    try:
        response = await asyncio.wait_for(
            client.request(request), timeout=work.guard_s
        )
        return response, _obs.now_ms() - t0
    except asyncio.TimeoutError:
        work.outcome.hangs += 1
        return None, _obs.now_ms() - t0
    except (ConnectionError, ProtocolError, OSError):
        # The relay (or the server's slow-client defense) cut us; the
        # caller reconnects.  Not a violation: an unacknowledged
        # request's fate is legitimately unknown.
        return None, _obs.now_ms() - t0


async def _client_task(
    host: str,
    port: int,
    ops: Sequence[Tuple[str, int]],
    work: _Workload,
    rng: np.random.Generator,
) -> None:
    """Run one client's op list through the (possibly hostile) endpoint."""
    client: Optional[AsyncReproClient] = None
    try:
        for op, key in ops:
            if op == "insert":
                request: Dict[str, Any] = {
                    "op": "insert",
                    "table": "chaos",
                    "row": _derive_row(key),
                    "deadline_ms": work.budget_ms,
                }
            else:
                request = {
                    "op": "select",
                    "table": "chaos",
                    "predicates": [{"attribute": "a", "lo": key, "hi": key}],
                    "deadline_ms": work.budget_ms,
                }
            for _attempt in range(6):
                if client is None:
                    try:
                        client = await asyncio.wait_for(
                            AsyncReproClient.connect(
                                host, port, raise_errors=False
                            ),
                            timeout=work.guard_s,
                        )
                        work.outcome.reconnects += 1
                    except (
                        ConnectionError,
                        OSError,
                        asyncio.TimeoutError,
                    ):
                        await asyncio.sleep(
                            float(rng.uniform(5.0, 20.0)) / 1000.0
                        )
                        continue
                response, elapsed = await _request_once(
                    client, request, work
                )
                if response is None:
                    await client.close()
                    client = None
                    if work.outcome.hangs:
                        return  # a hang already failed the scenario
                    continue  # reconnect and retry this op
                status = work.classify(response, elapsed)
                if status == "busy":
                    # Decorrelated-jitter-ish pause, seeded.
                    await asyncio.sleep(
                        float(rng.uniform(1.0, 15.0)) / 1000.0
                    )
                    continue
                if status == "ok" and op == "insert":
                    work.acked.add(key)
                break  # answered (ok or typed error): next op
    finally:
        if client is not None:
            await client.close()


def _ops_for_client(
    rng: np.random.Generator, requests: int, insert_keys: List[int]
) -> List[Tuple[str, int]]:
    """A deterministic op mix: ~half inserts (unique keys), rest selects."""
    ops: List[Tuple[str, int]] = []
    for _ in range(requests):
        if insert_keys and rng.random() < 0.5:
            ops.append(("insert", insert_keys.pop()))
        else:
            ops.append(("select", int(rng.integers(0, _SPLIT))))
    return ops


async def _wait_admission_idle(server: ReproServer, timeout_s: float) -> bool:
    deadline = _obs.now_ms() + timeout_s * 1000.0
    while not server.admission.idle:
        if _obs.now_ms() >= deadline:
            return False
        await asyncio.sleep(0.005)
    return True


async def _steady_state_ok(host: str, port: int, work: _Workload) -> bool:
    """Direct (no proxy) ping + select + stats after the fault cleared."""
    try:
        async with await AsyncReproClient.connect(
            host, port, raise_errors=False
        ) as client:
            if not await asyncio.wait_for(client.ping(), work.guard_s):
                return False
            select = await asyncio.wait_for(
                client.request(
                    {
                        "op": "select",
                        "table": "chaos",
                        "predicates": [{"attribute": "a", "lo": 0, "hi": 0}],
                    }
                ),
                work.guard_s,
            )
            stats = await asyncio.wait_for(
                client.request({"op": "stats"}), work.guard_s
            )
        return (
            select.get("status") == "ok" and stats.get("status") == "ok"
        )
    except (
        ConnectionError,
        ProtocolError,
        OSError,
        asyncio.TimeoutError,
    ):
        return False


async def _verify_acked(
    host: str, port: int, work: _Workload
) -> int:
    """How many acked inserts are NOT selectable anymore (must be 0)."""
    lost = 0
    async with await AsyncReproClient.connect(
        host, port, raise_errors=False
    ) as client:
        for key in sorted(work.acked):
            response = await asyncio.wait_for(
                client.request(
                    {
                        "op": "select",
                        "table": "chaos",
                        "predicates": [
                            {"attribute": "a", "lo": key, "hi": key}
                        ],
                    }
                ),
                work.guard_s,
            )
            if response.get("status") != "ok" or not response.get("rows"):
                lost += 1
    return lost


def _server_config() -> ServerConfig:
    return ServerConfig(
        max_inflight=8,
        max_queued=16,
        max_per_client=4,
        reader_threads=4,
        select_deadline_ms=_REQUEST_DEADLINE_MS,
        write_deadline_ms=_REQUEST_DEADLINE_MS,
        stats_deadline_ms=_REQUEST_DEADLINE_MS,
        max_deadline_ms=10_000.0,
        drain_timeout_s=2.0,
        send_timeout_s=2.0,
        idle_timeout_s=30.0,
    )


async def _run_scenario(
    kind: str,
    seed: int,
    *,
    clients: int,
    requests_per_client: int,
    work_dir: Optional[str],
) -> _ScenarioOutcome:
    from repro.db.database import Database

    outcome = _ScenarioOutcome(kind=kind, seed=seed)
    work = _Workload(outcome, _REQUEST_DEADLINE_MS)

    durable = kind == "crash_restart"
    injector = FaultInjector(
        seed=seed,
        transient_read_rate=0.2 if kind == "disk_transient" else 0.0,
        transient_burst=2,
    )
    disk = FaultyDisk(
        block_size=256,
        injector=injector,
        read_retry_limit=3,
        retry_backoff_ms=1.0,
    )
    if durable:
        if work_dir is None:
            raise ServerError("crash_restart scenarios need a work_dir")
        scenario_dir = os.path.join(work_dir, f"{kind}-{seed}")
        os.makedirs(scenario_dir, exist_ok=True)
        database = Database(disk=disk, wal_dir=scenario_dir)
    else:
        scenario_dir = None
        database = Database(disk=disk)
    database.create_table(
        "chaos", _seed_rows(), columns=["a", "b", "c"], durable=durable
    )

    server = ReproServer(database, _server_config())
    host, port = await server.start()
    proxy = ChaosProxy(host, port, plan=_plan_for(kind), seed=seed)
    phost, pport = await proxy.start()

    rng = np.random.default_rng([seed, 97])
    insert_keys = list(range(_SPLIT, _DOMAIN - 1))
    # Seeded shuffle so different seeds insert different keys.
    rng.shuffle(insert_keys)

    try:
        if kind == "disk_stall_deadline":
            await _stalled_read_probe(phost, pport, injector, work)
        elif kind == "crash_restart":
            # Arm the crash a couple of writes in (WAL appends count
            # too, so even a short workload reliably reaches it).
            injector.arm(int(rng.integers(3, 9)), crash_mode="torn")
        if kind != "disk_stall_deadline":
            tasks = [
                asyncio.ensure_future(
                    _client_task(
                        phost,
                        pport,
                        _ops_for_client(
                            np.random.default_rng([seed, 11, i]),
                            requests_per_client,
                            [
                                insert_keys.pop()
                                for _ in range(requests_per_client)
                            ],
                        ),
                        work,
                        np.random.default_rng([seed, 13, i]),
                    )
                )
                for i in range(clients)
            ]
            await asyncio.gather(*tasks)
    finally:
        await proxy.stop()
        injector.release_stalls()

    # The fault clears; the server must come back to steady state.
    if kind == "crash_restart":
        await server.stop(drain_timeout=1.0)
        injector.disarm()
        recovered = Database(disk=disk, wal_dir=scenario_dir)
        recovered.open_table("chaos")
        server = ReproServer(recovered, _server_config())
        host, port = await server.start()
    else:
        injector.disarm()

    try:
        outcome.slots_released = await _wait_admission_idle(server, 3.0)
        outcome.steady_state_ok = await _steady_state_ok(host, port, work)
        if work.acked:
            outcome.acked_writes = len(work.acked)
            outcome.lost_acked_writes = await _verify_acked(
                host, port, work
            )
    finally:
        outcome.proxy = proxy.stats.as_dict()
        outcome.faults = {
            k: int(v) for k, v in injector.stats.as_dict().items() if v
        }
        await server.stop(drain_timeout=1.0)
    return outcome


async def _stalled_read_probe(
    host: str, port: int, injector: FaultInjector, work: _Workload
) -> None:
    """The acceptance scenario: a select pinned on a stalled disk read.

    The stall parks the reader thread well past the request's budget;
    the server must answer a typed ``deadline`` error within 2x the
    budget (checked by :meth:`_Workload.classify`) and release the
    admission slot even though the thread is still wedged (checked by
    the caller's ``slots_released`` invariant).
    """
    budget_ms = 150.0
    stall_ms = 1_200.0
    async with await AsyncReproClient.connect(
        host, port, raise_errors=False
    ) as client:
        # A fast select first: steady state before the fault.
        warm = await asyncio.wait_for(
            client.request(
                {
                    "op": "select",
                    "table": "chaos",
                    "predicates": [{"attribute": "a", "lo": 1, "hi": 1}],
                }
            ),
            work.guard_s,
        )
        work.classify(warm, 0.0)
        injector.stall_reads(stall_ms, count=2)
        t0 = _obs.now_ms()
        response = await asyncio.wait_for(
            client.request(
                {
                    "op": "select",
                    "table": "chaos",
                    "predicates": [{"attribute": "a", "lo": 0, "hi": 20}],
                    "deadline_ms": budget_ms,
                }
            ),
            work.guard_s,
        )
        elapsed = _obs.now_ms() - t0
        status = work.classify(response, elapsed)
        if status != "error" or response.get("code") != "deadline":
            # A stalled read MUST surface as a typed deadline answer.
            work.outcome.untyped_responses += 1
        if elapsed > 2.0 * budget_ms:
            work.outcome.deadline_violations += 1
    injector.release_stalls()


def run_chaos_sweep(
    *,
    kinds: Sequence[str] = SCENARIO_KINDS,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    clients: int = 3,
    requests_per_client: int = 5,
    work_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the kinds x seeds fault matrix; returns the JSON-ready report.

    ``work_dir`` hosts per-scenario WAL directories for the
    crash-restart scenarios (a temp dir is created when omitted).
    """
    for kind in kinds:
        if kind not in SCENARIO_KINDS:
            raise ServerError(
                f"unknown scenario kind {kind!r}; choose from "
                f"{SCENARIO_KINDS}"
            )
    if clients < 1 or requests_per_client < 1:
        raise ServerError("need >= 1 client and request per scenario")

    owned_tmp = None
    if work_dir is None and "crash_restart" in kinds:
        import tempfile

        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        work_dir = owned_tmp.name
    try:
        scenarios: List[_ScenarioOutcome] = []
        for kind in kinds:
            for seed in seeds:
                scenarios.append(
                    asyncio.run(
                        _run_scenario(
                            kind,
                            seed,
                            clients=clients,
                            requests_per_client=requests_per_client,
                            work_dir=work_dir,
                        )
                    )
                )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()

    latencies = sorted(
        ms for s in scenarios for ms in s.latencies_ms
    )
    p99 = (
        latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
        if latencies
        else 0.0
    )
    fault_mix: Dict[str, int] = {}
    for s in scenarios:
        for key, value in list(s.proxy.items()) + list(s.faults.items()):
            fault_mix[key] = fault_mix.get(key, 0) + int(value)
    return {
        "scenarios": [s.as_dict() for s in scenarios],
        "total": len(scenarios),
        "passed": sum(1 for s in scenarios if s.passed),
        "failed": sum(1 for s in scenarios if not s.passed),
        "acked_writes": sum(s.acked_writes for s in scenarios),
        "lost_acked_writes": sum(s.lost_acked_writes for s in scenarios),
        "hangs": sum(s.hangs for s in scenarios),
        "untyped_responses": sum(s.untyped_responses for s in scenarios),
        "deadline_violations": sum(
            s.deadline_violations for s in scenarios
        ),
        "p99_under_chaos_ms": p99,
        "fault_mix": fault_mix,
    }
