"""The concurrent serving layer: wire protocol, server, client, loadgen.

The storage engine below this package is durable (docs/RECOVERY.md),
self-healing (docs/INTEGRITY.md), and instrumented
(docs/OBSERVABILITY.md); this package makes it *multi-client*:

* :mod:`repro.server.protocol` — the tiny length-prefixed JSON wire
  protocol;
* :mod:`repro.server.admission` — bounded admission with per-client
  fairness (overload answers BUSY, it never stalls);
* :mod:`repro.server.server` — the asyncio query server; reads run on
  MVCC snapshots in a thread pool, writes are serialized;
* :mod:`repro.server.client` — blocking and asyncio clients;
* :mod:`repro.server.loadgen` — the closed-loop zipf load generator
  behind ``repro loadgen`` and the ``BENCH_serving.json`` CI artifact;
* :mod:`repro.server.chaos` — the seeded network/disk chaos harness
  behind ``repro chaos`` and the ``BENCH_chaos.json`` CI artifact.

See docs/SERVING.md for the design tour.
"""

from repro.server.admission import AdmissionController, AdmissionStats
from repro.server.chaos import ChaosPlan, ChaosProxy, run_chaos_sweep
from repro.server.client import AsyncReproClient, ReproClient
from repro.server.loadgen import LoadgenReport, run_loadgen
from repro.server.server import ReproServer, ServerConfig

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncReproClient",
    "ChaosPlan",
    "ChaosProxy",
    "LoadgenReport",
    "ReproClient",
    "ReproServer",
    "ServerConfig",
    "run_chaos_sweep",
    "run_loadgen",
]
