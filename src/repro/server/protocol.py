"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are JSON objects:

Request::

    {"op": "select", "table": "t", "predicates":
        [{"attribute": "A1", "lo": 3, "hi": 7}]}
    {"op": "insert", "table": "t", "row": [3, 1, 4]}
    {"op": "delete", "table": "t", "row": [3, 1, 4]}
    {"op": "ping"}
    {"op": "stats"}

Response — always carries ``status``::

    {"status": "ok", ...result fields...}
    {"status": "busy", "retry": true}          # admission rejected it
    {"status": "error", "code": "...", "message": "..."}

``busy`` is deliberately its own status, not an error: an overloaded
server sheds load *by answering*, and a closed-loop client treats it as
"back off and retry", never as a failed query.

Two error codes are part of the request-lifecycle contract
(docs/SERVING.md) and get their own constructors:

* ``deadline`` — the request exceeded its budget; carries ``budget_ms``
  and, for writes, ``outcome`` (``"not_executed"`` when the write never
  started, ``"unknown"`` when it was already executing — it may still
  commit).
* ``shutting_down`` — the server is draining; carries ``retry: false``
  so a well-behaved client fails over instead of hammering a dying
  process.

A request may carry ``deadline_ms`` (a positive number); the server
honours it, clamped to its configured ceiling.

Frames are capped at :data:`MAX_FRAME_BYTES`; a peer announcing a larger
frame is malformed (or malicious) and the connection is dropped — the
cap is what stops one client's garbage length word from making the
server buffer 4 GiB.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "busy_response",
    "deadline_response",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "read_frame",
    "shutdown_response",
    "write_frame",
]

#: Hard cap on one frame's body.  Far above any legitimate request and
#: comfortably above the largest plausible result page.
MAX_FRAME_BYTES = 1 << 22

_LEN = struct.Struct(">I")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire form (length + JSON body)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict[str, Any]:
    """Parse one frame body back into a message object."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF before a length word.

    EOF *inside* a frame (after the length, before the body completes)
    is a torn frame and raises :class:`~repro.errors.ProtocolError` —
    the peer died mid-send and the stream is unrecoverable.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-word") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


def ok_response(**fields: Any) -> Dict[str, Any]:
    """A success response with arbitrary result fields."""
    out: Dict[str, Any] = {"status": "ok"}
    out.update(fields)
    return out


def busy_response() -> Dict[str, Any]:
    """The typed overload response (admission control said no)."""
    return {"status": "busy", "retry": True}


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A typed failure response (the request itself was bad)."""
    return {"status": "error", "code": code, "message": message}


def deadline_response(
    budget_ms: float, *, outcome: Optional[str] = None
) -> Dict[str, Any]:
    """The typed deadline answer: bounded time beat a finished result.

    ``outcome`` is set for writes only: ``"not_executed"`` when the
    write was still queued (it will never run), ``"unknown"`` when it
    had already started — the mutation may commit after this answer, so
    the client must treat the write as neither succeeded nor failed.
    """
    out: Dict[str, Any] = {
        "status": "error",
        "code": "deadline",
        "message": f"request exceeded its {budget_ms:.0f} ms deadline",
        "budget_ms": budget_ms,
    }
    if outcome is not None:
        out["outcome"] = outcome
    return out


def shutdown_response() -> Dict[str, Any]:
    """The typed drain answer: the server is going away, fail over.

    ``retry`` is explicitly ``false`` — unlike BUSY, retrying against
    this server will not help.
    """
    return {
        "status": "error",
        "code": "shutting_down",
        "message": "server is shutting down",
        "retry": False,
    }
