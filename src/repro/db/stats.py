"""Table statistics: histograms, selectivity, and block-touch estimation.

The paper *measures* ``N`` (blocks accessed) by simulation; a real
engine must *predict* it to choose access paths.  This module supplies
the classic machinery:

* :class:`AttributeHistogram` — equi-width bucket counts over one
  attribute's ordinal domain, answering range-selectivity estimates;
* Yao's formula (:func:`yao_blocks_touched`) — the expected number of
  blocks containing at least one of ``k`` qualifying tuples scattered
  over ``b`` blocks;
* :class:`TableStatistics` — the per-table bundle the
  :mod:`repro.db.planner` consumes, built from one storage scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import QueryError
from repro.relational.schema import Schema

__all__ = [
    "AttributeHistogram",
    "TableStatistics",
    "yao_blocks_touched",
]


def yao_blocks_touched(num_tuples: int, num_blocks: int, k: int) -> float:
    """Yao's formula: expected blocks holding >= 1 of ``k`` chosen tuples.

    With ``n`` tuples packed ``n/b`` per block, choosing ``k`` tuples
    uniformly without replacement touches

        ``b * (1 - prod_{i=0}^{u-1} (n - u - k + ... ))``

    approximated here by the standard ``b * (1 - (1 - k/n)^u)`` form,
    which is exact in the sampling-with-replacement limit and accurate
    for the sizes the planner sees.

    >>> yao_blocks_touched(1000, 10, 0)
    0.0
    >>> yao_blocks_touched(1000, 10, 1000)
    10.0
    """
    if num_blocks <= 0 or num_tuples <= 0:
        return 0.0
    k = max(0, min(k, num_tuples))
    if k == 0:
        return 0.0
    if k == num_tuples:
        return float(num_blocks)
    u = num_tuples / num_blocks
    return num_blocks * (1.0 - (1.0 - k / num_tuples) ** u)


class AttributeHistogram:
    """Equi-width histogram over one attribute's ordinal domain."""

    def __init__(self, domain_size: int, num_buckets: int = 32):
        if domain_size < 1:
            raise QueryError(f"domain size must be >= 1, got {domain_size}")
        if num_buckets < 1:
            raise QueryError(f"bucket count must be >= 1, got {num_buckets}")
        self._domain_size = domain_size
        self._num_buckets = min(num_buckets, domain_size)
        self._counts = [0] * self._num_buckets
        self._total = 0
        self._distinct: set = set()
        self._track_distinct = domain_size <= 1 << 16

    def _bucket_of(self, value: int) -> int:
        return value * self._num_buckets // self._domain_size

    def add(self, value: int) -> None:
        """Record one occurrence of ``value``."""
        if not 0 <= value < self._domain_size:
            raise QueryError(
                f"value {value} outside domain of size {self._domain_size}"
            )
        self._counts[self._bucket_of(value)] += 1
        self._total += 1
        if self._track_distinct:
            self._distinct.add(value)

    @property
    def total(self) -> int:
        """Values recorded."""
        return self._total

    @property
    def num_buckets(self) -> int:
        """Histogram resolution."""
        return self._num_buckets

    def distinct_values(self) -> int:
        """Observed distinct values (estimated for very wide domains)."""
        if self._track_distinct:
            return len(self._distinct)
        # birthday-style lower bound: non-empty buckets
        return sum(1 for c in self._counts if c)

    def _bucket_bounds(self, b: int) -> Tuple[int, int]:
        """[lo, hi] ordinal range covered by bucket ``b`` (inclusive)."""
        lo = -(-b * self._domain_size // self._num_buckets)
        hi = -(-(b + 1) * self._domain_size // self._num_buckets) - 1
        return lo, hi

    def estimate_count(self, lo: int, hi: int) -> float:
        """Expected tuples with ``lo <= value <= hi`` (inclusive).

        Whole buckets contribute their full count; partially covered
        buckets contribute pro-rata (the uniform-within-bucket
        assumption).
        """
        if lo > hi or self._total == 0:
            return 0.0
        lo = max(0, lo)
        hi = min(self._domain_size - 1, hi)
        if lo > hi:
            return 0.0
        estimate = 0.0
        for b in range(self._bucket_of(lo), self._bucket_of(hi) + 1):
            b_lo, b_hi = self._bucket_bounds(b)
            if b_hi < b_lo:
                continue
            overlap_lo = max(lo, b_lo)
            overlap_hi = min(hi, b_hi)
            if overlap_hi < overlap_lo:
                continue
            fraction = (overlap_hi - overlap_lo + 1) / (b_hi - b_lo + 1)
            estimate += self._counts[b] * fraction
        return estimate

    def estimate_selectivity(self, lo: int, hi: int) -> float:
        """Fraction of tuples in ``[lo, hi]``."""
        if self._total == 0:
            return 0.0
        return self.estimate_count(lo, hi) / self._total


@dataclass
class TableStatistics:
    """Per-table statistics bundle consumed by the planner."""

    num_tuples: int
    num_blocks: int
    histograms: Dict[str, AttributeHistogram]

    @classmethod
    def collect(
        cls,
        schema: Schema,
        blocks: Iterable[Tuple[int, Iterable[Sequence[int]]]],
        *,
        num_buckets: int = 32,
    ) -> "TableStatistics":
        """Build statistics with one pass over ``(block_id, tuples)``."""
        histograms = {
            name: AttributeHistogram(size, num_buckets)
            for name, size in zip(schema.names, schema.domain_sizes)
        }
        positions = list(enumerate(schema.names))
        num_tuples = 0
        num_blocks = 0
        for _, tuples in blocks:
            num_blocks += 1
            for t in tuples:
                num_tuples += 1
                for pos, name in positions:
                    histograms[name].add(t[pos])
        return cls(
            num_tuples=num_tuples,
            num_blocks=num_blocks,
            histograms=histograms,
        )

    def histogram(self, attribute: str) -> AttributeHistogram:
        """The named attribute's histogram."""
        try:
            return self.histograms[attribute]
        except KeyError:
            raise QueryError(
                f"no statistics for attribute {attribute!r}; "
                f"have {sorted(self.histograms)}"
            )

    def estimate_matching_tuples(self, attribute: str, lo: int, hi: int) -> float:
        """Expected tuples with the attribute in ``[lo, hi]``."""
        return self.histogram(attribute).estimate_count(lo, hi)

    def estimate_blocks_scattered(self, attribute: str, lo: int, hi: int) -> float:
        """Yao estimate of blocks touched by a *non-clustered* range."""
        k = round(self.estimate_matching_tuples(attribute, lo, hi))
        return yao_blocks_touched(self.num_tuples, self.num_blocks, int(k))

    def estimate_blocks_clustered(self, attribute: str, lo: int, hi: int) -> float:
        """Blocks touched by a *clustered* range: a contiguous fraction."""
        selectivity = self.histogram(attribute).estimate_selectivity(lo, hi)
        if selectivity <= 0.0:
            return 0.0
        # a contiguous run plus one boundary block on each side
        return min(
            float(self.num_blocks), selectivity * self.num_blocks + 1.0
        )
