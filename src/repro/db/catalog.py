"""The system catalog: named tables and their metadata."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["Catalog"]


class Catalog:
    """Name-to-table registry with the usual create/drop discipline."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table) -> None:
        """Add a table; duplicate names are an error."""
        if table.name in self._tables:
            raise QueryError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look a table up; unknown names are an error."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(
                f"no table {name!r}; catalog has {sorted(self._tables)}"
            )

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise QueryError(f"no table {name!r} to drop")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def names(self) -> List[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)
