"""Frozen read-only views of a table — the reader half of MVCC.

A :class:`TableSnapshot` is what :meth:`repro.db.table.Table.read_snapshot`
hands out: the block directory committed at one csn, pinned in the
table's :class:`~repro.storage.mvcc.BlockVersionStore` so the payloads
it references outlive any concurrent writer.  Every read resolves
through the store (stashed pre-image first, current payload as the
fallback), so a snapshot never observes half of a mutation — the
property the serving layer's reader threads rely on (docs/SERVING.md).

Snapshots deliberately do **not** reuse the table's live indices; those
track the *current* state.  Instead they plan from their own frozen
directory: the ``(first, last)`` phi-ordinal range per block gives the
same contiguous-run pruning the primary index would for a leading-
attribute predicate, and a point probe finds its one covering block the
same way.  Payload decodes bypass the decoded-block cache for the same
reason — that cache answers "what does this block hold *now*".

A snapshot pins superseded block versions, so it must be closed;
``with table.read_snapshot() as snap: ...`` is the idiomatic form.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.db.query import QueryResult, RangeQuery
from repro.errors import QueryCancelled, QueryError
from repro.obs import runtime as _obs
from repro.storage.mvcc import BlockVersionStore, SnapshotHandle

__all__ = ["TableSnapshot"]


class TableSnapshot:
    """One pinned, consistent, read-only view of a table's committed state."""

    def __init__(
        self,
        table,  # repro.db.table.Table; untyped to break the import cycle
        store: BlockVersionStore,
        handle: SnapshotHandle,
    ) -> None:
        self._table = table
        self._store = store
        self._handle = handle
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def csn(self) -> int:
        """The commit sequence number this snapshot observes."""
        return self._handle.csn

    @property
    def num_blocks(self) -> int:
        """Blocks in the snapshot's directory."""
        return len(self._handle.directory)

    @property
    def num_tuples(self) -> int:
        """Tuples stored as of the snapshot (from the frozen directory)."""
        return sum(entry[3] for entry in self._handle.directory)

    @property
    def closed(self) -> bool:
        """Whether the snapshot has been released."""
        return self._closed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def select(
        self,
        query: RangeQuery,
        *,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> QueryResult:
        """Execute a conjunctive range query against the frozen state.

        Planning mirrors the live table's first preference: a predicate
        on the leading attribute prunes to the contiguous run of
        directory entries whose ordinal range overlaps it; anything else
        scans every entry.  Results are ordinal tuples, exactly as
        :meth:`Table.select` returns them.

        ``should_cancel`` is the cooperative cancellation hook the
        serving layer threads in (docs/SERVING.md): it is polled before
        every block decode, and when it returns ``True`` the select
        aborts with :class:`~repro.errors.QueryCancelled` instead of
        finishing work whose deadline has already fired.  Cancellation
        is block-granular — a read that is *inside* a stalled disk
        access cannot be interrupted, but it stops at the next boundary.
        """
        self._require_open()
        bound = [p.bind(self._table.schema) for p in query.predicates]
        leading = next((b for b in bound if b[0] == 0), None)
        if leading is not None:
            weights = self._table.schema.mapper.weights
            lo_ord = leading[1] * weights[0]
            hi_ord = (leading[2] + 1) * weights[0] - 1
            candidates = [
                e
                for e in self._handle.directory
                if not (e[2] < lo_ord or e[1] > hi_ord)
            ]
            access_path = "snapshot-directory"
        else:
            candidates = list(self._handle.directory)
            access_path = "snapshot-scan"
        out: List[Tuple[int, ...]] = []
        examined = 0
        with _obs.span(
            "snapshot.select",
            table=self._table.name,
            csn=self.csn,
            candidates=len(candidates),
            codec_path=self._table._codec_path(),
        ):
            for block_id, _first, _last, _count in candidates:
                if should_cancel is not None and should_cancel():
                    raise QueryCancelled(
                        f"select on {self._table.name!r} cancelled at "
                        f"block {block_id} (csn {self.csn})"
                    )
                for t in self._read_tuples(block_id):
                    examined += 1
                    if all(lo <= t[pos] <= hi for pos, lo, hi in bound):
                        out.append(t)
        return QueryResult(
            tuples=out,
            blocks_read=len(candidates),
            tuples_examined=examined,
            access_path=access_path,
            candidate_blocks=[e[0] for e in candidates],
        )

    def scan(self) -> List[Tuple[int, ...]]:
        """Every tuple as of the snapshot, in phi-cluster order."""
        return self.select(RangeQuery([])).tuples

    def contains(self, values: Sequence[int]) -> bool:
        """Point probe against the frozen state."""
        self._require_open()
        t = tuple(int(v) for v in values)
        mapper = self._table.schema.mapper
        mapper.validate(t)
        ordinal = mapper.phi(t)
        entry = self._covering_entry(ordinal)
        if entry is None:
            return False
        return t in self._read_tuples(entry[0])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the pin; superseded versions become collectable."""
        if self._closed:
            return
        self._closed = True
        self._store.release(self._handle)

    def __enter__(self) -> "TableSnapshot":
        self._require_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise QueryError("snapshot is closed")

    def _covering_entry(
        self, ordinal: int
    ) -> Optional[Tuple[int, int, int, int]]:
        for entry in self._handle.directory:
            if entry[1] <= ordinal <= entry[2]:
                return entry
        return None

    def _read_tuples(self, block_id: int) -> List[Tuple[int, ...]]:
        payload = self._store.read(
            block_id,
            self._handle.csn,
            lambda: self._table._current_payload(block_id),
        )
        return self._table.storage.decode_payload(payload)
