"""The table facade: storage plus indices plus Section 4 operations.

A :class:`Table` ties together one stored relation (AVQ-coded or plain
heap), the whole-tuple primary index of Figure 4.4, and any number of
Figure 4.5 secondary indices.  It exposes the operations Section 4
discusses:

* ``select`` — range queries with automatic access-path choice
  (primary-index clustered scan for the leading attribute, secondary
  index where one exists, full scan otherwise);
* ``insert`` / ``delete`` / ``update`` — Section 4.2 mutations, confined
  to the affected block, with all indices maintained incrementally.

Mutations require compressed storage (the heap baseline is built once
per experiment and queried read-only, as in the paper).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.codec import BlockCodec
from repro.errors import CorruptionError, QuarantinedBlockError, QueryError
from repro.db.query import QueryResult, RangeQuery
from repro.obs import runtime as _obs
from repro.obs.profile import QueryProfile, QueryProfiler
from repro.index.hashindex import ExtendibleHashIndex
from repro.index.primary import PrimaryIndex, TupleOrdinalIndex
from repro.index.secondary import SecondaryIndex
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.avqfile import AVQFile
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.integrity import (
    IntegrityManager,
    IntegrityReport,
    RepairEngine,
    RepairOutcome,
    ScrubReport,
)
from repro.storage.wal import RecoveryReport, WriteAheadLog, recover

if TYPE_CHECKING:  # circular at type level only
    from repro.db.snapshot import TableSnapshot
    from repro.storage.buffer import BufferPool, DecodedBlockCache
    from repro.storage.mvcc import BlockVersionStore

__all__ = ["Table"]

StorageFile = Union[AVQFile, HeapFile]

_T = TypeVar("_T")


class Table:
    """A stored, indexed relation supporting queries and mutations."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        storage: StorageFile,
        *,
        index_order: int = 32,
        buffer_capacity: Optional[int] = None,
        decoded_cache_capacity: Optional[int] = None,
        wal: Optional[WriteAheadLog] = None,
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ):
        if not name:
            raise QueryError("table name must be non-empty")
        if wal is not None and not isinstance(storage, AVQFile):
            raise QueryError(
                "durability requires compressed storage (heap tables "
                "are read-only baselines)"
            )
        self._name = name
        self._schema = schema
        self._storage = storage
        self._index_order = index_order
        self._wal = wal
        self._active_tid: Optional[int] = None
        self._last_recovery: Optional[RecoveryReport] = None
        self._mvcc: Optional["BlockVersionStore"] = None
        self._buffer: Optional["BufferPool"] = None
        self._decoded: Optional["DecodedBlockCache"] = None
        if buffer_capacity is None and decoded_cache_capacity is not None:
            # The decoded cache layers on a pool; give it one of matching
            # size rather than making callers wire both knobs.
            buffer_capacity = decoded_cache_capacity
        if buffer_capacity is not None:
            from repro.storage.buffer import BufferPool

            self._buffer = BufferPool(storage._disk, buffer_capacity)
        if decoded_cache_capacity is not None:
            from repro.storage.buffer import DecodedBlockCache

            pool = self._buffer
            if pool is None:  # unreachable: capacity defaulting above
                raise QueryError("decoded cache requires a buffer pool")
            self._decoded = DecodedBlockCache(
                pool, decoded_cache_capacity, storage.decode_payload
            )
        self._primary = PrimaryIndex.build(
            schema.mapper, storage.directory(), order=index_order
        )
        self._secondaries: Dict[str, SecondaryIndex] = {}
        self._hash_indices: Dict[str, ExtendibleHashIndex] = {}
        self._tuple_index: Optional[TupleOrdinalIndex] = None
        self._integrity: Optional[IntegrityManager] = None
        if isinstance(storage, AVQFile):
            if tuple_index:
                self._tuple_index = self._build_tuple_index(storage)
            self._integrity = IntegrityManager(
                storage, policy=degraded_reads, pool=self._buffer
            )
            self._refresh_repair_engine()
        elif degraded_reads != "raise" or tuple_index:
            raise QueryError(
                "online integrity requires compressed storage (heap "
                "tables are read-only baselines)"
            )

    def _build_tuple_index(self, storage: AVQFile) -> TupleOrdinalIndex:
        """Index every stored tuple (one block read per block)."""
        return TupleOrdinalIndex.build(
            (
                (storage.block_id_at(p), storage.read_block_ordinals(p))
                for p in range(storage.num_blocks)
            ),
            order=self._index_order,
        )

    def _refresh_repair_engine(self) -> None:
        """(Re)wire the repair engine to the current index set."""
        if self._integrity is None or not isinstance(
            self._storage, AVQFile
        ):
            return
        self._integrity.attach_repair_engine(
            RepairEngine(
                self._storage,
                tuple_index=self._tuple_index,
                wal=self._wal,
                secondaries=list(self._secondaries.values()),
            )
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        name: str,
        relation: Relation,
        disk: SimulatedDisk,
        *,
        compressed: bool = True,
        codec: Optional[BlockCodec] = None,
        index_order: int = 32,
        secondary_on: Sequence[str] = (),
        buffer_capacity: Optional[int] = None,
        decoded_cache_capacity: Optional[int] = None,
        workers: Optional[int] = None,
        durable_path: Optional[str] = None,
        wal_sync: bool = True,
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ) -> "Table":
        """Materialise a relation and build the requested indices.

        ``workers`` parallelises the block-coding of a compressed table
        (see :meth:`AVQFile.build`); ``decoded_cache_capacity`` adds an
        LRU cache of decoded blocks so repeated lookups skip decoding.

        ``durable_path`` opens a write-ahead log at that path: every
        mutation is logged, transaction commit forces the log, and
        :meth:`open` recovers the table after a crash (see
        docs/RECOVERY.md).  The freshly built table is immediately
        checkpointed, so it is recoverable from the first moment.
        ``wal_sync=False`` downgrades log forces to flush-only (commits
        then survive process crashes but not OS crashes) — an escape
        hatch for tests and benchmarks.

        ``degraded_reads`` sets the corruption policy ("raise", "skip",
        or "repair") and ``tuple_index`` builds the tuple-level primary
        index that makes blocks repairable without a WAL — see
        docs/INTEGRITY.md.
        """
        if durable_path is not None and not compressed:
            raise QueryError(
                "durability requires compressed storage (heap tables "
                "are read-only baselines)"
            )
        if compressed:
            storage: StorageFile = AVQFile.build(
                relation, disk, codec=codec, workers=workers
            )
        else:
            if codec is not None:
                raise QueryError("codec is only meaningful for compressed tables")
            if workers is not None:
                raise QueryError(
                    "workers is only meaningful for compressed tables"
                )
            storage = HeapFile.build(relation, disk, sort=True)
        wal: Optional[WriteAheadLog] = None
        if durable_path is not None:
            wal = WriteAheadLog.create(
                durable_path,
                relation.schema,
                codec=storage.codec,
                block_size=disk.block_size,
                injector=getattr(disk, "injector", None),
                sync=wal_sync,
            )
            try:
                wal.checkpoint(relation.phi_ordinals())
                wal.write_clean(storage.directory_entries_checked())
            except BaseException:
                wal.close()
                raise
        table = cls(
            name,
            relation.schema,
            storage,
            index_order=index_order,
            buffer_capacity=buffer_capacity,
            decoded_cache_capacity=decoded_cache_capacity,
            wal=wal,
            degraded_reads=degraded_reads,
            tuple_index=tuple_index,
        )
        for attr in secondary_on:
            table.create_secondary_index(attr)
        return table

    @classmethod
    def open(
        cls,
        name: str,
        disk: SimulatedDisk,
        wal: Union[str, WriteAheadLog],
        *,
        index_order: int = 32,
        secondary_on: Sequence[str] = (),
        buffer_capacity: Optional[int] = None,
        decoded_cache_capacity: Optional[int] = None,
        wal_sync: bool = True,
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ) -> "Table":
        """Open a durable table from its disk and write-ahead log.

        Recovery runs first (:func:`repro.storage.wal.recover`): a
        cleanly closed table re-adopts its blocks untouched; after a
        crash, committed-but-unflushed mutations are replayed and
        uncommitted ones discarded, onto fresh blocks.  All indices are
        rebuilt from the recovered storage.  The report is available as
        :attr:`last_recovery`.
        """
        if isinstance(wal, str):
            wal = WriteAheadLog.open(
                wal,
                injector=getattr(disk, "injector", None),
                sync=wal_sync,
            )
        storage, report = recover(disk, wal)
        table = cls(
            name,
            storage.schema,
            storage,
            index_order=index_order,
            buffer_capacity=buffer_capacity,
            decoded_cache_capacity=decoded_cache_capacity,
            wal=wal,
            degraded_reads=degraded_reads,
            tuple_index=tuple_index,
        )
        table._last_recovery = report
        for attr in secondary_on:
            table.create_secondary_index(attr)
        return table

    def create_secondary_index(self, attribute: str) -> SecondaryIndex:
        """Build (or return) the Figure 4.5 secondary index on ``attribute``."""
        existing = self._secondaries.get(attribute)
        if existing is not None:
            return existing
        position = self._schema.position(attribute)
        idx = SecondaryIndex.build(
            attribute,
            position,
            self._storage.iter_blocks(),
            order=self._index_order,
        )
        self._secondaries[attribute] = idx
        self._refresh_repair_engine()
        return idx

    def create_hash_index(self, attribute: str) -> ExtendibleHashIndex:
        """Build (or return) an extendible hash index on ``attribute``.

        The paper's Section 4 allows hashing as an alternative access
        method; hash indices serve equality predicates in O(1) probes but
        cannot answer range predicates.
        """
        existing = self._hash_indices.get(attribute)
        if existing is not None:
            return existing
        position = self._schema.position(attribute)
        idx = ExtendibleHashIndex.build(
            attribute, position, self._storage.iter_blocks()
        )
        self._hash_indices[attribute] = idx
        return idx

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def storage(self) -> StorageFile:
        """The underlying storage file (AVQ or heap)."""
        return self._storage

    @property
    def compressed(self) -> bool:
        """Whether the table is AVQ-coded."""
        return isinstance(self._storage, AVQFile)

    @property
    def primary_index(self) -> PrimaryIndex:
        """The whole-tuple primary index."""
        return self._primary

    @property
    def secondary_indices(self) -> Dict[str, SecondaryIndex]:
        """Secondary indices by attribute name."""
        return dict(self._secondaries)

    @property
    def hash_indices(self) -> Dict[str, ExtendibleHashIndex]:
        """Hash indices by attribute name."""
        return dict(self._hash_indices)

    def _value_indices(self):
        """All value-to-block indices that need mutation maintenance."""
        yield from self._secondaries.values()
        yield from self._hash_indices.values()

    @property
    def num_tuples(self) -> int:
        """Tuples stored."""
        return self._storage.num_tuples

    @property
    def num_blocks(self) -> int:
        """Data blocks occupied."""
        return self._storage.num_blocks

    def __len__(self) -> int:
        return self.num_tuples

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def select(self, query: RangeQuery) -> QueryResult:
        """Execute a conjunctive range query, choosing an access path.

        Path choice, in order of preference:

        1. A predicate on the *leading* attribute uses the primary index:
           the relation is phi-clustered, so matching tuples occupy one
           contiguous run of blocks.
        2. Any predicate attribute with a secondary index uses the index
           with the smallest candidate block set.
        3. Otherwise, full scan.
        """
        if not query.predicates:
            return self._scan_all()
        bound = [p.bind(self._schema) for p in query.predicates]

        leading = next((b for b in bound if b[0] == 0), None)
        if leading is not None:
            return self._select_clustered(leading, bound)

        best: Optional[Tuple[List[int], str]] = None
        for pred, (pos, lo, hi) in zip(query.predicates, bound):
            if lo == hi:
                hidx = self._hash_indices.get(pred.attribute)
                if hidx is not None:
                    candidates = hidx.lookup(lo)
                    if best is None or len(candidates) < len(best[0]):
                        best = (candidates, f"hash:{pred.attribute}")
            idx = self._secondaries.get(pred.attribute)
            if idx is None:
                continue
            candidates = idx.range_lookup(lo, hi)
            if best is None or len(candidates) < len(best[0]):
                best = (candidates, f"secondary:{pred.attribute}")
        if best is not None:
            return self._filter_blocks(
                best[0], bound, access_path=best[1]
            )
        return self._scan_all(bound)

    def _select_clustered(self, leading, bound) -> QueryResult:
        _, lo, hi = leading
        weights = self._schema.mapper.weights
        lo_ordinal = lo * weights[0]
        hi_ordinal = (hi + 1) * weights[0] - 1
        block_ids = self._primary.range_blocks(lo_ordinal, hi_ordinal)
        return self._filter_blocks(block_ids, bound, access_path="primary")

    def _read_block_id(self, block_id: int):
        """Fetch and decode one block, through the caches where present.

        The decoded-block cache is consulted first (a hit costs neither
        I/O nor decode), then the raw buffer pool (a hit costs only the
        decode), then the disk.  Every path is integrity-guarded: a
        quarantined id is refused (or repaired, under the "repair"
        policy) before any bytes move, and a read that trips corruption
        quarantines the block and applies the degraded-read policy.
        """
        if self._integrity is not None:
            self._integrity.check(block_id)
        return self._guarded(lambda: self._read_block_id_raw(block_id))

    def _read_block_id_raw(self, block_id: int):
        if self._decoded is not None:
            return self._decoded.get(block_id)
        if self._buffer is not None:
            return self._storage.decode_payload(self._buffer.get(block_id))
        return self._storage.read_block_id(block_id)

    def _guarded(self, read: Callable[[], _T]) -> _T:
        """Run a read under the integrity policy, retrying after repair.

        A :class:`~repro.errors.CorruptionError` quarantines the block;
        under the "repair" policy :meth:`IntegrityManager.resolve`
        returns only after a *verified* repair, so the single retry
        reads healthy bytes.  Under any other policy resolve raises
        :class:`~repro.errors.QuarantinedBlockError` — query loops
        catch it per block when the policy is "skip"; everything else
        (point probes, mutations) lets it surface, because corrupt data
        must never be silently absent.
        """
        integ = self._integrity
        if integ is None:
            return read()
        try:
            return read()
        except CorruptionError as exc:
            integ.resolve(exc)
            return read()

    def _skip_degraded(self) -> bool:
        """Whether query loops may omit quarantined blocks."""
        return self._integrity is not None and self._integrity.policy == "skip"

    @property
    def buffer_pool(self):
        """The table's buffer pool, or ``None`` when unbuffered."""
        return self._buffer

    @property
    def decoded_cache(self):
        """The table's decoded-block cache, or ``None`` when absent."""
        return self._decoded

    # ------------------------------------------------------------------
    # Snapshot reads (MVCC, docs/SERVING.md)
    # ------------------------------------------------------------------

    @property
    def mvcc(self) -> Optional["BlockVersionStore"]:
        """The block-version store, or ``None`` until :meth:`enable_mvcc`."""
        return self._mvcc

    def enable_mvcc(self) -> "BlockVersionStore":
        """Turn on snapshot-isolation reads for this table.

        Idempotent.  After enabling, every block rewrite stashes the
        committed pre-image and every commit boundary publishes a new
        version epoch, so :meth:`read_snapshot` hands out consistent
        frozen views while a writer keeps mutating.  On a durable table
        the commit boundary is transaction commit/abort; otherwise each
        top-level mutation publishes (statement-level consistency).
        """
        storage = self._require_avq("enable_mvcc")
        if self._mvcc is None:
            from repro.storage.mvcc import BlockVersionStore

            self._mvcc = BlockVersionStore(storage.directory_entries())
        return self._mvcc

    def read_snapshot(self) -> "TableSnapshot":
        """A pinned, consistent read-only view of the committed state.

        Requires :meth:`enable_mvcc`.  The returned snapshot is safe to
        query from any thread while this table keeps mutating; callers
        must :meth:`~repro.db.snapshot.TableSnapshot.close` it (it is a
        context manager) so superseded block versions can be reclaimed.
        """
        if self._mvcc is None:
            raise QueryError(
                "snapshot reads require enable_mvcc() on this table"
            )
        from repro.db.snapshot import TableSnapshot

        return TableSnapshot(self, self._mvcc, self._mvcc.snapshot())

    def _current_payload(self, block_id: int) -> bytes:
        """The latest on-disk payload, via the latched pool when present."""
        if self._buffer is not None:
            return self._buffer.get(block_id)
        return self._disk().read_block(block_id)

    def _mvcc_stash(self, block_id: int) -> None:
        """Preserve a block's committed payload before rewriting it."""
        if self._mvcc is not None:
            self._mvcc.stash(
                block_id, lambda: self._current_payload(block_id)
            )

    def _mvcc_publish(self) -> None:
        """Seal the current epoch at a commit boundary."""
        if self._mvcc is not None and isinstance(self._storage, AVQFile):
            self._mvcc.publish(self._storage.directory_entries())

    def _filter_blocks(self, block_ids, bound, *, access_path) -> QueryResult:
        disk = self._disk()
        start_ms = disk.stats.elapsed_ms
        profiler = QueryProfiler(
            disk.stats,
            self._buffer.stats if self._buffer is not None else None,
        )
        out: List[Tuple[int, ...]] = []
        examined = 0
        skipped: List[int] = []
        fetch_ms = 0.0
        filter_ms = 0.0
        with _obs.span(
            "query.select",
            table=self._name,
            access_path=access_path,
            candidates=len(block_ids),
            codec_path=self._codec_path(),
        ):
            for block_id in block_ids:
                t0 = _obs.now_ms()
                try:
                    tuples = self._read_block_id(block_id)
                except QuarantinedBlockError:
                    fetch_ms += _obs.now_ms() - t0
                    if not self._skip_degraded():
                        raise
                    skipped.append(block_id)
                    continue
                t1 = _obs.now_ms()
                fetch_ms += t1 - t0
                for t in tuples:
                    examined += 1
                    if all(lo <= t[pos] <= hi for pos, lo, hi in bound):
                        out.append(t)
                filter_ms += _obs.now_ms() - t1
        profile = profiler.finish(
            access_path=access_path,
            candidate_blocks=len(block_ids),
            tuples_examined=examined,
            matched=len(out),
            skipped_blocks=len(skipped),
            stages={"fetch_decode": fetch_ms, "filter": filter_ms},
        )
        self._publish_query_metrics(profile)
        return QueryResult(
            tuples=out,
            blocks_read=len(block_ids) - len(skipped),
            tuples_examined=examined,
            access_path=access_path,
            io_ms=disk.stats.elapsed_ms - start_ms,
            candidate_blocks=list(block_ids),
            skipped_blocks=skipped,
            profile=profile,
        )

    def _scan_all(self, bound=()) -> QueryResult:
        # A full scan visits every block by id through the guarded read
        # path (caches, quarantine, degraded-read policy); the heap
        # baseline has no integrity layer and scans storage directly.
        if isinstance(self._storage, AVQFile):
            result = self._filter_blocks(
                self._storage.block_ids, bound, access_path="scan"
            )
            result.candidate_blocks = []
            return result
        disk = self._disk()
        start_ms = disk.stats.elapsed_ms
        profiler = QueryProfiler(disk.stats)
        out: List[Tuple[int, ...]] = []
        examined = 0
        blocks = 0
        fetch_ms = 0.0
        filter_ms = 0.0
        with _obs.span(
            "query.select",
            table=self._name,
            access_path="scan",
            codec_path=self._codec_path(),
        ):
            block_iter = iter(self._storage.iter_blocks())
            while True:
                t0 = _obs.now_ms()
                try:
                    _, tuples = next(block_iter)
                except StopIteration:
                    fetch_ms += _obs.now_ms() - t0
                    break
                t1 = _obs.now_ms()
                fetch_ms += t1 - t0
                blocks += 1
                for t in tuples:
                    examined += 1
                    if all(lo <= t[pos] <= hi for pos, lo, hi in bound):
                        out.append(t)
                filter_ms += _obs.now_ms() - t1
        profile = profiler.finish(
            access_path="scan",
            candidate_blocks=blocks,
            tuples_examined=examined,
            matched=len(out),
            stages={"fetch_decode": fetch_ms, "filter": filter_ms},
        )
        self._publish_query_metrics(profile)
        return QueryResult(
            tuples=out,
            blocks_read=blocks,
            tuples_examined=examined,
            access_path="scan",
            io_ms=disk.stats.elapsed_ms - start_ms,
            profile=profile,
        )

    def _codec_path(self) -> str:
        """Which decode implementation this table's reads run through."""
        codec = getattr(self._storage, "codec", None)
        if codec is not None and getattr(codec, "vectorized", False):
            return "vector"
        return "scalar"

    def _publish_query_metrics(self, profile: QueryProfile) -> None:
        """Mirror one query's profile into the registry when enabled."""
        reg = _obs.REGISTRY
        if reg is None:
            return
        reg.inc("query.count")
        reg.inc("query.blocks_read", profile.blocks_read)
        reg.inc("query.tuples_examined", profile.tuples_examined)
        reg.inc("query.matched", profile.matched)
        reg.observe("query.io_ms", profile.io_ms)
        reg.observe(
            "query.fetch_decode_ms", profile.stages.get("fetch_decode", 0.0)
        )
        reg.observe("query.filter_ms", profile.stages.get("filter", 0.0))

    def _disk(self) -> SimulatedDisk:
        return self._storage._disk  # shared within the package

    # ------------------------------------------------------------------
    # Durability (write-ahead log)
    # ------------------------------------------------------------------

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The table's write-ahead log, or ``None`` when not durable."""
        return self._wal

    @property
    def durable(self) -> bool:
        """Whether mutations are protected by a write-ahead log."""
        return self._wal is not None

    @property
    def last_recovery(self):
        """The :class:`~repro.storage.wal.RecoveryReport` from
        :meth:`open`, or ``None`` for a freshly built table."""
        return self._last_recovery

    def begin_wal_transaction(self) -> Optional[int]:
        """Start a logged transaction; returns its id (``None`` if not
        durable).

        Durable tables are single-writer: starting a second transaction
        while one is active is an error (its log records would
        interleave under distinct tids but its mutations would not).
        """
        if self._wal is None:
            return None
        if self._active_tid is not None:
            raise QueryError(
                "a durable transaction is already active on this table"
            )
        self._active_tid = self._wal.begin()
        return self._active_tid

    def commit_wal_transaction(self, tid: int) -> None:
        """Log COMMIT and force the log; the transaction is now durable."""
        self._require_wal_txn(tid).commit(tid)
        self._active_tid = None
        self._mvcc_publish()

    def abort_wal_transaction(self, tid: int) -> None:
        """Log ABORT (recovery would have discarded the txn anyway).

        Also a version-epoch boundary: rollback restored the logical
        content but may have left a different physical block layout
        (splits do not merge back), so snapshot readers need a fresh
        directory.
        """
        self._require_wal_txn(tid).abort(tid)
        self._active_tid = None
        self._mvcc_publish()

    def _require_wal_txn(self, tid: int) -> WriteAheadLog:
        if self._wal is None:
            raise QueryError("table has no write-ahead log")
        if tid != self._active_tid:
            raise QueryError(
                f"transaction {tid} is not this table's active "
                f"transaction ({self._active_tid})"
            )
        return self._wal

    def _wal_log(self, op: str, ordinal: int) -> None:
        """Log one applied mutation.

        Inside a transaction the record rides under the active tid and
        stays buffered until commit forces.  Outside one, the mutation
        is its own committed transaction (autocommit), forced before
        returning — so a plain ``table.insert`` is durable the moment it
        returns.
        """
        if self._wal is None:
            return
        tid = self._active_tid
        if tid is None:
            tid = self._wal.begin()
            self._log_op(tid, op, ordinal)
            self._wal.commit(tid)
        else:
            self._log_op(tid, op, ordinal)

    def _log_op(self, tid: int, op: str, ordinal: int) -> None:
        if self._wal is None:  # pragma: no cover - guarded by callers
            raise QueryError("table has no write-ahead log")
        if op == "insert":
            self._wal.log_insert(tid, ordinal)
        else:
            self._wal.log_delete(tid, ordinal)

    def _wal_ensure_dirty(self) -> None:
        """The write-ahead step proper, before any data-block mutation.

        While the durable log ends in CLEAN, recovery would re-adopt
        the recorded block directory verbatim — so the marker must be
        durably superseded *before* the first block changes, or a torn
        data write could hide behind a still-clean log.
        """
        if self._wal is not None:
            self._wal.ensure_dirty()

    def checkpoint(self) -> None:
        """Write a full logical image plus clean marker to the log.

        Bounds replay work at the next open; immediately afterwards a
        reopen attaches the current blocks without any rebuilding.
        Forbidden while a transaction is active — the image must hold
        committed state only.
        """
        storage = self._require_avq("checkpoint")
        if self._wal is None:
            raise QueryError("checkpoint requires a durable table")
        if self._active_tid is not None:
            raise QueryError(
                "cannot checkpoint while a transaction is active"
            )
        self._wal.checkpoint(storage.all_ordinals())
        self._wal.write_clean(storage.directory_entries_checked())

    def close(self) -> None:
        """Cleanly shut the table down (checkpoint + close the log).

        After close, reopening via :meth:`open` is a byte-for-byte
        no-op on the disk.  A non-durable table has nothing to close.
        """
        if self._wal is None:
            return
        self.checkpoint()
        self._wal.close()

    # ------------------------------------------------------------------
    # Online integrity (docs/INTEGRITY.md)
    # ------------------------------------------------------------------

    @property
    def integrity(self) -> Optional[IntegrityManager]:
        """The table's integrity manager (``None`` for heap baselines)."""
        return self._integrity

    @property
    def quarantined_blocks(self) -> List[int]:
        """Disk ids currently quarantined as corrupt (empty when healthy)."""
        if self._integrity is None:
            return []
        return self._integrity.quarantine.block_ids()

    @property
    def tuple_ordinal_index(self) -> Optional[TupleOrdinalIndex]:
        """The tuple-level primary index, when built (``tuple_index=True``)."""
        return self._tuple_index

    def scrub(
        self,
        *,
        max_blocks: Optional[int] = None,
        backfill: bool = False,
    ) -> ScrubReport:
        """Verify the next ``max_blocks`` blocks (resumable; see Scrubber).

        Damage found is quarantined and purged from the caches; the
        report lists every finding.  ``backfill=True`` records checksums
        for blocks adopted from a pre-checksum directory.
        """
        integ = self._require_integrity("scrub")
        return integ.scrub(max_blocks=max_blocks, backfill=backfill)

    def fsck(
        self, *, repair: bool = False, backfill: bool = False
    ) -> IntegrityReport:
        """Full-file check, optionally repairing what can be proven.

        Scrubs every block from position 0, quarantining damage; with
        ``repair=True``, each damaged block is fed to the repair engine
        and released only after byte-verified reconstruction.  Blocks no
        source can prove stay quarantined — listed as unrepairable,
        never silently returned.
        """
        integ = self._require_integrity("fsck")
        return integ.fsck(repair=repair, backfill=backfill)

    def repair_block(self, position: int) -> RepairOutcome:
        """Repair one block by position; raises if it cannot be proven."""
        integ = self._require_integrity("repair_block")
        return integ.repair_block(position)

    def _require_integrity(self, op: str) -> IntegrityManager:
        if self._integrity is None:
            raise QueryError(
                f"{op} requires compressed storage; heap tables are "
                "read-only baselines"
            )
        return self._integrity

    # ------------------------------------------------------------------
    # Mutations (Section 4.2)
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[int]) -> None:
        """Insert one ordinal tuple, maintaining every index.

        Under the "repair" policy, an insert that lands on a corrupt
        block repairs it first; under any other policy the corruption
        surfaces — mutations never skip (see :meth:`_guarded`).
        """
        storage = self._require_avq("insert")
        t = tuple(int(v) for v in values)
        self._schema.mapper.validate(t)
        ordinal = self._schema.mapper.phi(t)
        self._guarded(lambda: self._insert_impl(storage, t, ordinal))
        if self._active_tid is None:
            # Top-level mutation = its own commit boundary (autocommit,
            # mirroring the WAL's); inside a durable transaction the
            # epoch publishes at commit/abort instead.
            self._mvcc_publish()

    def _insert_impl(
        self, storage: AVQFile, t: Tuple[int, ...], ordinal: int
    ) -> None:
        self._wal_ensure_dirty()

        if storage.num_blocks == 0:
            storage.insert(t)
            block_id = storage.block_ids[0]
            self._primary.add_block(storage.block_range(0)[0], block_id)
            for idx in self._value_indices():
                idx.add(t[idx.position], block_id)
            if self._tuple_index is not None:
                self._tuple_index.add(ordinal, block_id)
            self._wal_log("insert", ordinal)
            return

        pos = storage.block_of_ordinal(ordinal)
        old_min = storage.block_range(pos)[0]
        old_id = storage.block_ids[pos]
        if self._integrity is not None:
            self._integrity.check(old_id)
        self._mvcc_stash(old_id)
        has_value_indices = bool(self._secondaries or self._hash_indices)
        old_tuples = storage.read_block(pos) if has_value_indices else None
        blocks_before = storage.num_blocks

        storage.insert(t)
        if self._buffer is not None:
            self._buffer.invalidate(old_id)

        new_min = storage.block_range(pos)[0]
        if new_min != old_min:
            self._primary.move_block(old_min, new_min, old_id)
        split = storage.num_blocks > blocks_before
        if split:
            new_id = storage.block_ids[pos + 1]
            self._primary.add_block(storage.block_range(pos + 1)[0], new_id)
        if self._tuple_index is not None:
            # Provisionally file the new tuple under the old block, then
            # migrate every occurrence the split moved right — covers
            # the inserted tuple landing on either side.
            self._tuple_index.add(ordinal, old_id)
            if split:
                for moved in storage.read_block_ordinals(pos + 1):
                    self._tuple_index.reassign(
                        moved, old_id, storage.block_ids[pos + 1]
                    )
        if has_value_indices:
            new_left = storage.read_block(pos)
            new_right = storage.read_block(pos + 1) if split else []
            for idx in self._value_indices():
                idx.reindex_block(old_id, old_tuples, new_left)
                if split:
                    idx.reindex_block(storage.block_ids[pos + 1], [], new_right)
        self._wal_log("insert", ordinal)

    def delete(self, values: Sequence[int]) -> bool:
        """Delete one occurrence of a tuple; returns whether it existed.

        Integrity-guarded like :meth:`insert`: corruption on the target
        block is repaired (under "repair") or surfaced, never skipped —
        a delete that silently missed a stored tuple would corrupt the
        logical state on top of the physical damage.
        """
        storage = self._require_avq("delete")
        t = tuple(int(v) for v in values)
        self._schema.mapper.validate(t)
        ordinal = self._schema.mapper.phi(t)
        removed = self._guarded(
            lambda: self._delete_impl(storage, t, ordinal)
        )
        if self._active_tid is None:
            self._mvcc_publish()
        return removed

    def _delete_impl(
        self, storage: AVQFile, t: Tuple[int, ...], ordinal: int
    ) -> bool:
        if storage.num_blocks == 0:
            return False

        pos = storage.block_of_ordinal(ordinal)
        old_min = storage.block_range(pos)[0]
        old_id = storage.block_ids[pos]
        if self._integrity is not None:
            self._integrity.check(old_id)
        self._mvcc_stash(old_id)
        has_value_indices = bool(self._secondaries or self._hash_indices)
        old_tuples = storage.read_block(pos) if has_value_indices else None
        blocks_before = storage.num_blocks

        self._wal_ensure_dirty()
        if not storage.delete(t):
            return False
        if self._buffer is not None:
            self._buffer.invalidate(old_id)
        if self._tuple_index is not None:
            self._tuple_index.remove(ordinal, old_id)

        removed = storage.num_blocks < blocks_before
        if removed:
            self._primary.remove_block(old_min)
            if has_value_indices:
                for idx in self._value_indices():
                    idx.reindex_block(old_id, old_tuples, [])
            self._wal_log("delete", ordinal)
            return True

        new_min = storage.block_range(pos)[0]
        if new_min != old_min:
            self._primary.move_block(old_min, new_min, old_id)
        if has_value_indices:
            new_tuples = storage.read_block(pos)
            for idx in self._value_indices():
                idx.reindex_block(old_id, old_tuples, new_tuples)
        self._wal_log("delete", ordinal)
        return True

    def update(self, old: Sequence[int], new: Sequence[int]) -> bool:
        """Section 4.2: modification as deletion plus insertion."""
        if not self.delete(old):
            return False
        self.insert(new)
        return True

    def contains(self, values: Sequence[int]) -> bool:
        """Point probe: whether this exact tuple is stored.

        Compressed tables answer via the early-exit difference-stream
        walk (one block read, no reconstruction); heap tables decode the
        one candidate block.
        """
        t = tuple(int(v) for v in values)
        self._schema.mapper.validate(t)
        storage = self._storage
        if isinstance(storage, AVQFile):
            return self._guarded(lambda: self._contains_impl(storage, t))
        if storage.num_blocks == 0:
            return False
        pos = storage.block_of_ordinal(self._schema.mapper.phi(t))
        return t in storage.read_block(pos)

    def _contains_impl(self, storage: AVQFile, t: Tuple[int, ...]) -> bool:
        ordinal = self._schema.mapper.phi(t)
        pos = storage.covering_block_of_ordinal(ordinal)
        if pos is None:
            return False
        if self._integrity is not None:
            # A probe must never answer "absent" from a quarantined
            # block — refuse (or repair) before looking.
            self._integrity.check(storage.block_id_at(pos))
        if self._decoded is not None:
            # Decode through the cache: the first probe of a block
            # pays one decode, every repeat probe is free.
            return t in self._decoded.get(storage.block_id_at(pos))
        return storage.contains_ordinal(ordinal)

    def delete_where(self, query: RangeQuery) -> int:
        """Delete every tuple matching ``query``; returns the count.

        Matching tuples are collected first (deleting while scanning
        would shift blocks under the scan), then removed one by one so
        all index maintenance runs through the ordinary delete path.
        """
        self._require_avq("delete_where")
        victims = self.select(query).tuples
        deleted = 0
        for t in victims:
            if self.delete(t):
                deleted += 1
        return deleted

    def compact(self) -> int:
        """Repack fragmented storage (after churn); returns blocks saved.

        All indices are rebuilt against the new block layout, and the
        buffer pool (if any) is emptied — every cached payload is stale.
        """
        storage = self._require_avq("compact")
        saved = storage.compact()
        self._primary = PrimaryIndex.build(
            self._schema.mapper, storage.directory(), order=self._index_order
        )
        rebuilt_secondaries = {}
        for name in self._secondaries:
            rebuilt_secondaries[name] = SecondaryIndex.build(
                name,
                self._schema.position(name),
                storage.iter_blocks(),
                order=self._index_order,
            )
        self._secondaries = rebuilt_secondaries
        rebuilt_hashes = {}
        for name in self._hash_indices:
            rebuilt_hashes[name] = ExtendibleHashIndex.build(
                name, self._schema.position(name), storage.iter_blocks()
            )
        self._hash_indices = rebuilt_hashes
        if self._tuple_index is not None:
            self._tuple_index = self._build_tuple_index(storage)
        self._refresh_repair_engine()
        if self._buffer is not None:
            self._buffer.clear()
        # Compaction abandons the old blocks (their bytes stay on the
        # simulated disk), so pinned snapshots keep reading them; new
        # snapshots need the repacked directory, hence a fresh epoch.
        self._mvcc_publish()
        return saved

    def _require_avq(self, op: str) -> AVQFile:
        if not isinstance(self._storage, AVQFile):
            raise QueryError(
                f"{op} requires compressed storage; heap tables are "
                "read-only baselines"
            )
        return self._storage
