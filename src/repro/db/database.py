"""The top-level database facade.

A :class:`Database` owns a simulated disk, a catalog of tables, and the
convenience paths a user actually wants: create a compressed table
straight from raw application rows (Section 3.1 encoding included), query
it with application values, and read back decoded rows.

Durability is opt-in per table: construct the database with a
``wal_dir`` and pass ``durable=True`` at creation time, and the table
gets a write-ahead log at ``<wal_dir>/<name>.wal`` (see
docs/RECOVERY.md).  ``open_table`` brings a table back from its log
after a crash or a clean shutdown; ``close`` checkpoints every durable
table so the next open is a no-op replay.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.catalog import Catalog
from repro.db.query import QueryResult, RangeQuery
from repro.db.table import Table
from repro.errors import QueryError
from repro.relational.algebra import RangePredicate
from repro.relational.encoding import SchemaInferencer
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.integrity import IntegrityReport, ScrubReport

__all__ = ["Database"]


class Database:
    """A catalog of AVQ-compressed (or baseline heap) tables on one disk."""

    def __init__(
        self,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        disk_model: Optional[DiskModel] = None,
        wal_dir: Optional[str] = None,
        wal_sync: bool = True,
        disk: Optional[SimulatedDisk] = None,
    ):
        if disk is not None:
            self._disk = disk
        else:
            self._disk = SimulatedDisk(block_size=block_size, model=disk_model)
        self._catalog = Catalog()
        self._wal_dir = wal_dir
        #: Whether durable tables fsync on commit (see docs/RECOVERY.md);
        #: ``False`` is the flush-only escape hatch for benchmarks.
        self._wal_sync = wal_sync

    def _wal_path(self, name: str) -> str:
        if self._wal_dir is None:
            raise QueryError(
                "durable tables need a wal_dir (Database(wal_dir=...))"
            )
        return os.path.join(self._wal_dir, name + ".wal")

    @property
    def disk(self) -> SimulatedDisk:
        """The shared simulated disk (for stats inspection)."""
        return self._disk

    @property
    def catalog(self) -> Catalog:
        """The system catalog."""
        return self._catalog

    # ------------------------------------------------------------------
    # Table creation
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        rows: Sequence[Sequence],
        *,
        columns: Optional[Sequence[str]] = None,
        compressed: bool = True,
        secondary_on: Sequence[str] = (),
        inferencer: Optional[SchemaInferencer] = None,
        durable: bool = False,
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ) -> Table:
        """Create a table from raw application rows.

        Runs the full Section 3 pipeline: infer domains, encode attributes,
        sort by phi, pack into blocks, code each block, build indices.
        ``degraded_reads`` and ``tuple_index`` configure the table's
        online-integrity behaviour (docs/INTEGRITY.md).
        """
        inferencer = inferencer or SchemaInferencer()
        schema = inferencer.infer(rows, columns)
        relation = Relation.from_values(schema, rows)
        return self.create_table_from_relation(
            name,
            relation,
            compressed=compressed,
            secondary_on=secondary_on,
            durable=durable,
            degraded_reads=degraded_reads,
            tuple_index=tuple_index,
        )

    def create_table_from_relation(
        self,
        name: str,
        relation: Relation,
        *,
        compressed: bool = True,
        secondary_on: Sequence[str] = (),
        durable: bool = False,
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ) -> Table:
        """Create a table from an already-encoded relation."""
        table = Table.from_relation(
            name,
            relation,
            self._disk,
            compressed=compressed,
            secondary_on=secondary_on,
            durable_path=self._wal_path(name) if durable else None,
            wal_sync=self._wal_sync,
            degraded_reads=degraded_reads,
            tuple_index=tuple_index,
        )
        self._catalog.register(table)
        return table

    def open_table(
        self,
        name: str,
        *,
        secondary_on: Sequence[str] = (),
        degraded_reads: str = "raise",
        tuple_index: bool = False,
    ) -> Table:
        """Re-open a durable table from its write-ahead log.

        Runs recovery (docs/RECOVERY.md): after a clean shutdown this
        re-attaches the existing blocks without touching the disk; after
        a crash it rebuilds the table from the log's committed image.
        """
        table = Table.open(
            name,
            self._disk,
            self._wal_path(name),
            secondary_on=secondary_on,
            wal_sync=self._wal_sync,
            degraded_reads=degraded_reads,
            tuple_index=tuple_index,
        )
        self._catalog.register(table)
        return table

    def close(self) -> None:
        """Checkpoint and close every durable table's log."""
        for table in self._catalog:
            table.close()

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        return self._catalog.get(name)

    def enable_mvcc(self, name: str) -> None:
        """Turn on snapshot-isolation reads for a table (idempotent)."""
        self.table(name).enable_mvcc()

    def read_snapshot(self, name: str):
        """A pinned consistent view of a table (docs/SERVING.md).

        Requires :meth:`enable_mvcc` first; close the returned
        :class:`~repro.db.snapshot.TableSnapshot` (context manager) when
        done so superseded block versions can be reclaimed.
        """
        return self.table(name).read_snapshot()

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (blocks are not reclaimed)."""
        self._catalog.drop(name)

    # ------------------------------------------------------------------
    # Value-level convenience API
    # ------------------------------------------------------------------

    def select_values(
        self,
        name: str,
        attribute: str,
        lo,
        hi,
    ) -> Tuple[List[Tuple], QueryResult]:
        """``sigma_{lo <= attribute <= hi}`` with application values.

        Bounds are encoded through the attribute's domain; results are
        decoded back to application values.  Returns (decoded rows, the
        raw :class:`QueryResult` with its access statistics).
        """
        table = self.table(name)
        schema = table.schema
        domain = schema.attribute(attribute).domain
        lo_ord, hi_ord = domain.encode_bound(lo), domain.encode_bound(hi)
        if lo_ord > hi_ord:
            raise QueryError(
                f"{lo!r}..{hi!r} is an inverted range under "
                f"{attribute!r}'s domain order"
            )
        result = table.select(
            RangeQuery([RangePredicate(attribute, lo_ord, hi_ord)])
        )
        decoded = [schema.decode_tuple(t) for t in result.tuples]
        return decoded, result

    def insert_values(self, name: str, row: Sequence) -> None:
        """Insert one application-value row into a compressed table."""
        table = self.table(name)
        table.insert(table.schema.encode_tuple(row))

    def delete_values(self, name: str, row: Sequence) -> bool:
        """Delete one application-value row; returns whether it existed."""
        table = self.table(name)
        return table.delete(table.schema.encode_tuple(row))

    # ------------------------------------------------------------------
    # Online integrity (docs/INTEGRITY.md)
    # ------------------------------------------------------------------

    def scrub_all(
        self,
        *,
        max_blocks: Optional[int] = None,
        backfill: bool = False,
    ) -> Dict[str, ScrubReport]:
        """Run one scrub increment on every compressed table.

        Returns a per-table report; heap baselines (no checksums, no
        mutations) are skipped.
        """
        out: Dict[str, ScrubReport] = {}
        for table in self._catalog:
            if table.integrity is None:
                continue
            out[table.name] = table.scrub(
                max_blocks=max_blocks, backfill=backfill
            )
        return out

    def fsck_all(
        self, *, repair: bool = False, backfill: bool = False
    ) -> Dict[str, IntegrityReport]:
        """Full integrity check (optionally with repair) on every table."""
        out: Dict[str, IntegrityReport] = {}
        for table in self._catalog:
            if table.integrity is None:
                continue
            out[table.name] = table.fsck(repair=repair, backfill=backfill)
        return out

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def storage_report(self) -> List[dict]:
        """Per-table block usage — the Figure 5.7 numerator and denominator."""
        out = []
        for table in self._catalog:
            out.append(
                {
                    "table": table.name,
                    "compressed": table.compressed,
                    "tuples": table.num_tuples,
                    "blocks": table.num_blocks,
                    "block_size": self._disk.block_size,
                    "bytes": table.num_blocks * self._disk.block_size,
                }
            )
        return out
