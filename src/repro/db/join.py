"""Equi-joins over compressed tables.

"Standard database operations" (the paper's Section 4 promise) includes
joins.  Two classic algorithms are provided, both operating directly on
AVQ-coded storage — blocks decode on demand, never the whole relation
at once:

* :func:`index_nested_loop_join` — scan the outer table block by block;
  for each outer tuple, probe the inner table's secondary (or hash)
  index on the join attribute and read only matching blocks.  The right
  choice when the inner table is indexed and the outer side is small or
  filtered.
* :func:`block_nested_loop_join` — for each outer block, scan the inner
  table once, joining in memory.  No index needed; ``O(B_outer *
  B_inner)`` block reads, which the result's counters make visible.

Results are ordinal tuples ``outer + inner`` over a combined schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.db.table import Table
from repro.errors import QueryError
from repro.relational.schema import Attribute, Schema

__all__ = ["JoinResult", "index_nested_loop_join", "block_nested_loop_join"]


@dataclass
class JoinResult:
    """Joined tuples plus access statistics."""

    schema: Schema
    tuples: List[Tuple[int, ...]]
    outer_blocks_read: int
    inner_blocks_read: int
    index_probes: int
    algorithm: str

    @property
    def cardinality(self) -> int:
        """Number of joined rows."""
        return len(self.tuples)


def _combined_schema(outer: Table, inner: Table) -> Schema:
    attrs = []
    for a in outer.schema.attributes:
        attrs.append(Attribute(f"{outer.name}.{a.name}", a.domain))
    for a in inner.schema.attributes:
        attrs.append(Attribute(f"{inner.name}.{a.name}", a.domain))
    return Schema(attrs)


def _check_join_compatible(
    outer: Table, outer_attr: str, inner: Table, inner_attr: str
) -> Tuple[int, int]:
    opos = outer.schema.position(outer_attr)
    ipos = inner.schema.position(inner_attr)
    osize = outer.schema.domain_sizes[opos]
    isize = inner.schema.domain_sizes[ipos]
    if osize != isize:
        raise QueryError(
            f"join attributes have different domain sizes: "
            f"{outer_attr}({osize}) vs {inner_attr}({isize}); ordinal "
            "equality would not mean value equality"
        )
    return opos, ipos


def index_nested_loop_join(
    outer: Table,
    outer_attr: str,
    inner: Table,
    inner_attr: str,
) -> JoinResult:
    """Equi-join probing the inner table's index per outer tuple.

    The inner table must have a secondary or hash index on
    ``inner_attr``.  Probed inner blocks are cached per distinct join
    value within the processing of one outer block, so repeated values
    do not re-read blocks.
    """
    opos, ipos = _check_join_compatible(outer, outer_attr, inner, inner_attr)
    hash_idx = inner.hash_indices.get(inner_attr)
    sec_idx = inner.secondary_indices.get(inner_attr)
    if hash_idx is None and sec_idx is None:
        raise QueryError(
            f"index_nested_loop_join needs an index on "
            f"{inner.name}.{inner_attr}"
        )

    def probe(value: int) -> List[int]:
        if hash_idx is not None:
            return hash_idx.lookup(value)
        return sec_idx.range_lookup(value, value)

    schema = _combined_schema(outer, inner)
    out: List[Tuple[int, ...]] = []
    outer_blocks = 0
    inner_blocks = 0
    probes = 0

    for _, outer_tuples in outer.storage.iter_blocks():
        outer_blocks += 1
        # group the block's tuples by join value: one probe per value
        by_value = {}
        for t in outer_tuples:
            by_value.setdefault(t[opos], []).append(t)
        for value, group in by_value.items():
            probes += 1
            block_cache = {}
            for block_id in probe(value):
                if block_id not in block_cache:
                    block_cache[block_id] = inner._read_block_id(block_id)
                    inner_blocks += 1
                for inner_tuple in block_cache[block_id]:
                    if inner_tuple[ipos] == value:
                        for outer_tuple in group:
                            out.append(tuple(outer_tuple) + tuple(inner_tuple))
    return JoinResult(
        schema=schema,
        tuples=out,
        outer_blocks_read=outer_blocks,
        inner_blocks_read=inner_blocks,
        index_probes=probes,
        algorithm="index-nested-loop",
    )


def block_nested_loop_join(
    outer: Table,
    outer_attr: str,
    inner: Table,
    inner_attr: str,
) -> JoinResult:
    """Equi-join scanning the inner table once per outer block."""
    opos, ipos = _check_join_compatible(outer, outer_attr, inner, inner_attr)
    schema = _combined_schema(outer, inner)
    out: List[Tuple[int, ...]] = []
    outer_blocks = 0
    inner_blocks = 0

    for _, outer_tuples in outer.storage.iter_blocks():
        outer_blocks += 1
        by_value = {}
        for t in outer_tuples:
            by_value.setdefault(t[opos], []).append(t)
        for _, inner_tuples in inner.storage.iter_blocks():
            inner_blocks += 1
            for inner_tuple in inner_tuples:
                group = by_value.get(inner_tuple[ipos])
                if group:
                    for outer_tuple in group:
                        out.append(tuple(outer_tuple) + tuple(inner_tuple))
    return JoinResult(
        schema=schema,
        tuples=out,
        outer_blocks_read=outer_blocks,
        inner_blocks_read=inner_blocks,
        index_probes=0,
        algorithm="block-nested-loop",
    )
