"""Query descriptions and results for the Section 5.3 range queries.

The paper's evaluation query is ``sigma_{a <= A_k <= b}(R)``: a single
attribute range selection.  :class:`RangeQuery` generalises slightly to a
conjunction of ranges; :class:`QueryResult` carries both the answer and
the access statistics (``N``, the number of data blocks read, is the
quantity Figure 5.8 tabulates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.obs.profile import QueryProfile
from repro.relational.algebra import RangePredicate

__all__ = ["RangeQuery", "QueryResult"]


@dataclass(frozen=True)
class RangeQuery:
    """A conjunctive range selection over named attributes."""

    predicates: Tuple[RangePredicate, ...]

    def __init__(self, predicates: Sequence[RangePredicate]):
        object.__setattr__(self, "predicates", tuple(predicates))

    @classmethod
    def between(cls, attribute: str, lo: int, hi: int) -> "RangeQuery":
        """The paper's ``sigma_{lo <= attribute <= hi}`` query."""
        return cls([RangePredicate(attribute, lo, hi)])

    @classmethod
    def equals(cls, attribute: str, value: int) -> "RangeQuery":
        """Point selection ``sigma_{attribute = value}``."""
        return cls([RangePredicate(attribute, value, value)])

    def __repr__(self) -> str:
        parts = " AND ".join(
            f"{p.lo} <= {p.attribute} <= {p.hi}" for p in self.predicates
        )
        return f"RangeQuery({parts})"


@dataclass
class QueryResult:
    """Tuples returned by a query plus its access statistics."""

    tuples: List[Tuple[int, ...]]
    blocks_read: int
    tuples_examined: int
    access_path: str
    io_ms: float = 0.0
    index_probes: int = 0
    candidate_blocks: List[int] = field(default_factory=list)
    #: Quarantined blocks the query omitted under the ``"skip"``
    #: degraded-read policy (docs/INTEGRITY.md).  Non-empty means the
    #: answer may be incomplete — callers must check :attr:`degraded`
    #: before trusting cardinalities.
    skipped_blocks: List[int] = field(default_factory=list)
    #: The EXPLAIN-ANALYZE-style access breakdown (docs/OBSERVABILITY.md).
    #: Built from always-on stats deltas, so it is present whether or not
    #: the global metrics registry is enabled.
    profile: Optional[QueryProfile] = None

    @property
    def degraded(self) -> bool:
        """Whether corrupt blocks were skipped (answer may be partial)."""
        return bool(self.skipped_blocks)

    @property
    def cardinality(self) -> int:
        """Number of tuples in the answer."""
        return len(self.tuples)

    @property
    def selectivity(self) -> float:
        """Answer tuples per examined tuple (1.0 for a perfect access path)."""
        if self.tuples_examined == 0:
            return 0.0
        return len(self.tuples) / self.tuples_examined
