"""Database layer: tables, queries, catalog, and the Database facade.

Implements the Section 4 operations over AVQ-coded storage: index-driven
range selection, and insert/delete/update confined to the affected block.
"""

from repro.db.aggregates import AggregateResult, aggregate
from repro.db.catalog import Catalog
from repro.db.join import (
    JoinResult,
    block_nested_loop_join,
    index_nested_loop_join,
)
from repro.db.database import Database
from repro.db.planner import AccessPlan, QueryPlanner
from repro.db.query import QueryResult, RangeQuery
from repro.db.stats import AttributeHistogram, TableStatistics
from repro.db.table import Table
from repro.db.transactions import Transaction

__all__ = [
    "Catalog",
    "Database",
    "Table",
    "RangeQuery",
    "QueryResult",
    "AccessPlan",
    "QueryPlanner",
    "AttributeHistogram",
    "TableStatistics",
    "aggregate",
    "AggregateResult",
    "JoinResult",
    "index_nested_loop_join",
    "block_nested_loop_join",
    "Transaction",
]
