"""Cost-based access-path planning with EXPLAIN output.

:class:`Table.select` chooses its path with exact candidate sets from
the indices themselves (it *asks* the secondary index how many blocks a
range touches).  A real optimiser cannot afford that — it predicts from
statistics.  :class:`QueryPlanner` does the classic thing:

1. enumerate candidate paths — clustered primary range, one per
   secondary index, one per hash index (equality only), full scan;
2. estimate each path's ``N`` from :class:`~repro.db.stats.TableStatistics`
   (clustered fraction, Yao's formula, or the whole file);
3. cost each as the paper's Equation 5.7 — ``I + N (t1 + t_cpu)`` —
   using the disk model's ``t1`` and a per-block CPU constant;
4. pick the cheapest; :meth:`QueryPlanner.explain` renders the whole
   candidate table for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.db.query import QueryResult, RangeQuery
from repro.db.stats import TableStatistics
from repro.db.table import Table
from repro.errors import QueryError
from repro.perf.costmodel import INDEX_BLOCK_FRACTION, PAPER_T1_MS

__all__ = ["AccessPlan", "QueryPlanner"]


@dataclass(frozen=True)
class AccessPlan:
    """One candidate access path with its predictions."""

    path: str                 # "primary" | "secondary:X" | "hash:X" | "scan"
    attribute: Optional[str]
    estimated_blocks: float
    estimated_cost_ms: float

    def describe(self) -> str:
        """One EXPLAIN line."""
        return (
            f"{self.path:<20s} est. N = {self.estimated_blocks:8.1f}   "
            f"est. cost = {self.estimated_cost_ms:9.1f} ms"
        )


class QueryPlanner:
    """Statistics-driven access-path selection for one table."""

    def __init__(
        self,
        table: Table,
        statistics: Optional[TableStatistics] = None,
        *,
        t1_ms: float = PAPER_T1_MS,
        cpu_ms_per_block: float = 0.5,
    ):
        self._table = table
        if statistics is None:
            statistics = TableStatistics.collect(
                table.schema, table.storage.iter_blocks()
            )
        self._stats = statistics
        self._t1_ms = t1_ms
        self._cpu_ms = cpu_ms_per_block

    @property
    def statistics(self) -> TableStatistics:
        """The statistics bundle plans are computed from."""
        return self._stats

    # ------------------------------------------------------------------
    # Costing
    # ------------------------------------------------------------------

    def _cost_ms(self, blocks: float) -> float:
        """Equation 5.7: index I/O plus N block reads plus per-block CPU."""
        index_ms = self._stats.num_blocks * INDEX_BLOCK_FRACTION * self._t1_ms
        return index_ms + blocks * (self._t1_ms + self._cpu_ms)

    def _scan_cost_ms(self, blocks: float) -> float:
        """A scan reads no index blocks."""
        return blocks * (self._t1_ms + self._cpu_ms)

    # ------------------------------------------------------------------
    # Plan enumeration
    # ------------------------------------------------------------------

    def candidate_plans(self, query: RangeQuery) -> List[AccessPlan]:
        """All applicable plans, cheapest first."""
        plans: List[AccessPlan] = [
            AccessPlan(
                path="scan",
                attribute=None,
                estimated_blocks=float(self._stats.num_blocks),
                estimated_cost_ms=self._scan_cost_ms(self._stats.num_blocks),
            )
        ]
        schema = self._table.schema
        for pred in query.predicates:
            pos, lo, hi = pred.bind(schema)
            if pos == 0:
                blocks = self._stats.estimate_blocks_clustered(
                    pred.attribute, lo, hi
                )
                plans.append(
                    AccessPlan(
                        path="primary",
                        attribute=pred.attribute,
                        estimated_blocks=blocks,
                        estimated_cost_ms=self._cost_ms(blocks),
                    )
                )
            if pred.attribute in self._table.secondary_indices:
                blocks = self._stats.estimate_blocks_scattered(
                    pred.attribute, lo, hi
                )
                plans.append(
                    AccessPlan(
                        path=f"secondary:{pred.attribute}",
                        attribute=pred.attribute,
                        estimated_blocks=blocks,
                        estimated_cost_ms=self._cost_ms(blocks),
                    )
                )
            if lo == hi and pred.attribute in self._table.hash_indices:
                blocks = self._stats.estimate_blocks_scattered(
                    pred.attribute, lo, hi
                )
                plans.append(
                    AccessPlan(
                        path=f"hash:{pred.attribute}",
                        attribute=pred.attribute,
                        estimated_blocks=blocks,
                        # hash probes skip the B+ tree descent; charge one
                        # directory block instead of the 5% index estimate
                        estimated_cost_ms=self._t1_ms
                        + blocks * (self._t1_ms + self._cpu_ms),
                    )
                )
        plans.sort(key=lambda p: p.estimated_cost_ms)
        return plans

    def choose(self, query: RangeQuery) -> AccessPlan:
        """The cheapest applicable plan."""
        plans = self.candidate_plans(query)
        if not plans:
            raise QueryError("no applicable access plan")
        return plans[0]

    def explain(self, query: RangeQuery) -> str:
        """EXPLAIN: every candidate with its estimates, cheapest first."""
        lines = [f"EXPLAIN {query!r}"]
        for i, plan in enumerate(self.candidate_plans(query)):
            marker = "->" if i == 0 else "  "
            lines.append(f"  {marker} {plan.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Planned execution
    # ------------------------------------------------------------------

    def execute(self, query: RangeQuery) -> QueryResult:
        """Run the query along the chosen plan's path.

        The Table's own path machinery executes the plan; the planner
        only decides *which* path.
        """
        plan = self.choose(query)
        bound = [p.bind(self._table.schema) for p in query.predicates]
        if plan.path == "scan":
            return self._table._scan_all(bound)
        if plan.path == "primary":
            leading = next(b for b in bound if b[0] == 0)
            return self._table._select_clustered(leading, bound)
        kind, attribute = plan.path.split(":", 1)
        pred = next(p for p in query.predicates if p.attribute == attribute)
        pos, lo, hi = pred.bind(self._table.schema)
        if kind == "hash":
            block_ids = self._table.hash_indices[attribute].lookup(lo)
        else:
            block_ids = self._table.secondary_indices[attribute].range_lookup(
                lo, hi
            )
        return self._table._filter_blocks(block_ids, bound, access_path=plan.path)
