"""Undo-log transactions over table mutations.

"Standard database operations" ultimately come in transactions.  This
module provides the classic single-writer undo discipline on top of
:class:`~repro.db.table.Table`:

* every mutation applied through the transaction records its inverse
  (an insert records a delete, a delete records an insert);
* ``rollback`` replays the inverses in reverse order — because table
  mutations are confined to single blocks (Section 4.2), undo is just
  more of the same mutation machinery, and all indices stay maintained;
* ``commit`` discards the undo log.

A transaction is a context manager: leaving the block normally commits,
leaving it via an exception rolls back.

This is deliberately *logical* (operation-level) undo, not page-level:
physical before-images would fight the block splits that inserts cause,
while logical inverses compose with them for free.

On a *durable* table (one opened with a write-ahead log, see
docs/RECOVERY.md) the transaction also carries a log transaction id:
every mutation is logged under it, ``commit`` forces the log before
returning — making the transaction crash-durable — and a crash before
commit means recovery discards the whole transaction, which is the same
outcome rollback produces.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["Transaction"]


class Transaction:
    """Single-writer logical-undo transaction over one table.

    Examples
    --------
    ::

        with Transaction(table) as txn:
            txn.insert((1, 2, 3))
            txn.delete((4, 5, 6))
        # committed

        with Transaction(table) as txn:
            txn.insert((7, 8, 9))
            raise RuntimeError("abort")   # rolled back, insert undone
    """

    def __init__(self, table: Table):
        if not table.compressed:
            raise QueryError(
                "transactions require compressed storage (heap tables "
                "are read-only baselines)"
            )
        self._table = table
        self._undo: List[Tuple[str, Tuple[int, ...]]] = []
        self._state = "active"
        #: WAL transaction id on a durable table, else ``None``.
        self._tid = table.begin_wal_transaction()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``'active'``, ``'committed'``, or ``'rolled-back'``."""
        return self._state

    @property
    def operations(self) -> int:
        """Mutations applied so far (undo log length)."""
        return len(self._undo)

    def _require_active(self) -> None:
        if self._state != "active":
            raise QueryError(f"transaction is {self._state}")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[int]) -> None:
        """Insert through the transaction (undoable)."""
        self._require_active()
        t = tuple(int(v) for v in values)
        self._table.insert(t)
        self._undo.append(("delete", t))

    def delete(self, values: Sequence[int]) -> bool:
        """Delete through the transaction (undoable)."""
        self._require_active()
        t = tuple(int(v) for v in values)
        removed = self._table.delete(t)
        if removed:
            self._undo.append(("insert", t))
        return removed

    def update(self, old: Sequence[int], new: Sequence[int]) -> bool:
        """Update = delete + insert, both undoable as a unit.

        If the insert of ``new`` fails after ``old`` was already
        deleted, ``old`` is restored before the error propagates — the
        transaction stays active and its table state is exactly as
        before the call.  (Without this, a failed update would leave
        ``old`` silently missing from an "active" transaction; only a
        full rollback would have brought it back.)
        """
        self._require_active()
        if not self.delete(old):
            return False
        try:
            self.insert(new)
        except BaseException:
            # Undo the half-applied update: put ``old`` back and drop
            # the delete's undo entry, so commit-after-failure keeps
            # ``old`` and rollback does not double-restore it.  This is
            # restore-then-reraise, never a swallow, so it must cover
            # ReproError (the R011 boundary) and KeyboardInterrupt /
            # programming errors alike — ``except Exception`` would let
            # an interrupt skip the restore and strand the transaction
            # "active" with ``old`` missing.
            self._table.insert(tuple(int(v) for v in old))
            self._undo.pop()
            raise
        return True

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Make the transaction's changes permanent.

        On a durable table this forces the write-ahead log before
        returning: once commit returns, the transaction survives any
        crash (docs/RECOVERY.md).
        """
        self._require_active()
        if self._tid is not None:
            self._table.commit_wal_transaction(self._tid)
        self._undo.clear()
        self._state = "committed"

    def rollback(self) -> None:
        """Undo every change, newest first."""
        self._require_active()
        while self._undo:
            op, t = self._undo.pop()
            if op == "insert":
                self._table.insert(t)
            else:
                removed = self._table.delete(t)
                if not removed:  # pragma: no cover - invariant violation
                    raise QueryError(
                        f"rollback failed: tuple {t} missing from table"
                    )
        if self._tid is not None:
            self._table.abort_wal_transaction(self._tid)
        self._state = "rolled-back"

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        self._require_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state != "active":
            return False  # already resolved explicitly inside the block
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # never swallow exceptions
