"""Aggregate queries over compressed relations, with block pruning.

The authors' companion work (the cited "Physical Storage Model for
Efficient Statistical Query Processing") targets statistical databases,
where the common query is an *aggregate* over a range, not a tuple
fetch.  This module runs COUNT / SUM / MIN / MAX / AVG over an
AVQ-compressed table and exploits the compressed layout twice:

* the candidate block set comes from the same access-path machinery as
  tuple selection (secondary-index buckets or the clustered primary
  range), so untouched blocks are never read — let alone decoded;
* when the aggregate target *is* the clustering prefix and the
  predicate covers whole blocks, MIN/MAX/COUNT can be answered from the
  block directory (first/last ordinal, tuple count) without decoding
  the block at all — the compressed analogue of "answering from the
  index".

Results carry the same counters as :class:`~repro.db.query.QueryResult`
so the pruning is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.query import RangeQuery
from repro.db.table import Table
from repro.errors import QueryError
from repro.storage.avqfile import AVQFile

__all__ = ["AggregateResult", "aggregate"]

_SUPPORTED = ("count", "sum", "min", "max", "avg")


@dataclass
class AggregateResult:
    """One aggregate answer plus its access statistics."""

    function: str
    attribute: Optional[str]
    value: Optional[float]
    tuples_matched: int
    blocks_read: int
    blocks_answered_from_directory: int
    access_path: str


def aggregate(
    table: Table,
    function: str,
    attribute: Optional[str],
    query: RangeQuery,
) -> AggregateResult:
    """Compute ``function(attribute)`` over the tuples matching ``query``.

    ``COUNT`` accepts ``attribute=None``.  Aggregation runs over the
    stored ordinals; for :class:`~repro.relational.domain.IntegerRangeDomain`
    attributes the result is shifted back to application values (an
    ordinal is ``value - lo``), so SUM/AVG/MIN/MAX read naturally.  For
    other domain types the ordinal is returned as-is (an "average
    department" has no meaning anyway; MIN/MAX ordinals can be decoded
    through the domain by the caller).
    """
    function = function.lower()
    if function not in _SUPPORTED:
        raise QueryError(
            f"unsupported aggregate {function!r}; supported: {_SUPPORTED}"
        )
    if function != "count" and attribute is None:
        raise QueryError(f"{function} requires an attribute")

    schema = table.schema
    position = schema.position(attribute) if attribute is not None else None
    bound = [p.bind(schema) for p in query.predicates]

    candidates, access_path = _candidate_blocks(table, query, bound)

    directory_hits = 0
    blocks_read = 0
    count = 0
    total = 0
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    storage = table.storage
    full_block_prunable = (
        isinstance(storage, AVQFile)
        and function in ("count", "min", "max")
        and _whole_block_coverage_possible(table, bound, position, function)
    )
    id_to_position = (
        {bid: pos for pos, bid in enumerate(storage.block_ids)}
        if full_block_prunable
        else {}
    )

    for block_id in candidates:
        if full_block_prunable:
            answered = _try_directory_answer(
                table, id_to_position.get(block_id), bound, function
            )
            if answered is not None:
                block_count, block_min, block_max = answered
                count += block_count
                if block_min is not None:
                    minimum = block_min if minimum is None else min(minimum, block_min)
                if block_max is not None:
                    maximum = block_max if maximum is None else max(maximum, block_max)
                directory_hits += 1
                continue
        tuples = storage.read_block_id(block_id)
        blocks_read += 1
        for t in tuples:
            if all(lo <= t[pos] <= hi for pos, lo, hi in bound):
                count += 1
                if position is not None:
                    v = t[position]
                    total += v
                    minimum = v if minimum is None else min(minimum, v)
                    maximum = v if maximum is None else max(maximum, v)

    shift = 0
    if position is not None:
        from repro.relational.domain import IntegerRangeDomain

        domain = schema.attribute(attribute).domain
        if isinstance(domain, IntegerRangeDomain):
            shift = domain.lo

    value: Optional[float]
    if function == "count":
        value = float(count)
    elif count == 0:
        value = None
    elif function == "sum":
        value = float(total + count * shift)
    elif function == "min":
        value = None if minimum is None else float(minimum + shift)
    elif function == "max":
        value = None if maximum is None else float(maximum + shift)
    else:  # avg
        value = total / count + shift

    return AggregateResult(
        function=function,
        attribute=attribute,
        value=value,
        tuples_matched=count,
        blocks_read=blocks_read,
        blocks_answered_from_directory=directory_hits,
        access_path=access_path,
    )


def _candidate_blocks(table: Table, query: RangeQuery, bound):
    """Reuse the Table's access-path choice to get candidate block ids."""
    result = None
    if not query.predicates:
        return [bid for bid, _ in _block_ids(table)], "scan"
    leading = next((b for b in bound if b[0] == 0), None)
    if leading is not None:
        _, lo, hi = leading
        weights = table.schema.mapper.weights
        block_ids = table.primary_index.range_blocks(
            lo * weights[0], (hi + 1) * weights[0] - 1
        )
        return block_ids, "primary"
    best = None
    for pred, (pos, lo, hi) in zip(query.predicates, bound):
        idx = table.secondary_indices.get(pred.attribute)
        if idx is not None:
            cand = idx.range_lookup(lo, hi)
            if best is None or len(cand) < len(best[0]):
                best = (cand, f"secondary:{pred.attribute}")
        if lo == hi:
            hidx = table.hash_indices.get(pred.attribute)
            if hidx is not None:
                cand = hidx.lookup(lo)
                if best is None or len(cand) < len(best[0]):
                    best = (cand, f"hash:{pred.attribute}")
    if best is not None:
        return best
    return [bid for bid, _ in _block_ids(table)], "scan"


def _block_ids(table: Table):
    storage = table.storage
    for position in range(storage.num_blocks):
        yield storage.block_ids[position], position


def _whole_block_coverage_possible(table, bound, position, function) -> bool:
    """Directory answers need: predicate on the leading attribute only,
    and the aggregate target to be the leading attribute (its min/max
    over a block follow from the block's first/last ordinals) or COUNT."""
    if any(pos != 0 for pos, _, _ in bound):
        return False
    if function == "count":
        return True
    return position == 0


def _try_directory_answer(table, pos_index, bound, function):
    """Answer one block from the directory if its whole ordinal range
    satisfies the (leading-attribute) predicate; else ``None``."""
    if pos_index is None:
        return None
    storage: AVQFile = table.storage
    first, last = storage.block_range(pos_index)
    w0 = table.schema.mapper.weights[0]
    lead_first = first // w0
    lead_last = last // w0
    for _, lo, hi in bound:  # all bound entries are on attribute 0 here
        if not (lo <= lead_first and lead_last <= hi):
            return None
    count = storage.block_tuple_count(pos_index)
    if function == "count":
        return count, None, None
    # min/max of the leading attribute over the block
    return count, lead_first, lead_last
