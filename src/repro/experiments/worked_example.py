"""The paper's running example: the 50-tuple employee relation.

Figure 2.2 traces one small relation through the whole AVQ pipeline:
Table (a) raw values, Table (b) after attribute encoding, Table (c) after
phi re-ordering, Table (d) after block coding.  This module reconstructs
that relation *from the paper's own printed phi ordinals* (Table (c)'s
``N_R`` column), which pins every attribute value exactly — phi is a
bijection — and lets the tests check our pipeline against the paper's
printed difference tuples and coded stream.

The example's schema (Example 3.1): five attributes — department, job
title, years in company, hours per week, employee number — with domain
sizes 8, 16, 64, 64, 64.  The paper prints the value dictionaries only
partially; unnamed ordinals get ``dept<i>`` / ``job<i>`` placeholders.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.codec import BlockCodec
from repro.core.phi import OrdinalMapper
from repro.relational.domain import CategoricalDomain, IntegerRangeDomain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

__all__ = [
    "PAPER_DOMAIN_SIZES",
    "PAPER_BLOCK_TUPLES",
    "paper_ordinals",
    "paper_schema",
    "paper_relation",
    "paper_blocks",
    "paper_codec",
    "encode_paper_blocks",
]

#: Example 3.1: |department| = 8, |job| = 16, |years| = |hours| = |empno| = 64.
PAPER_DOMAIN_SIZES = (8, 16, 64, 64, 64)

#: Tuples per block in the Figure 2.2 illustration (representatives appear
#: every fifth row of Table (d)).
PAPER_BLOCK_TUPLES = 5

#: Table (c)'s N_R column: the 50 phi ordinals of the example relation,
#: ascending.  Each decodes (via phi inverse) to one row of Table (b).
_PAPER_ORDINALS: Tuple[int, ...] = (
    10069284, 10081602, 11122372, 13760073, 13989445,
    14009739, 14034694, 14289223, 14296728, 14542896,
    14563112, 14571502, 14580058, 14780317, 14809174,
    14812755, 14813324, 14830051, 15042560, 15050469,
    15054497, 15083280, 15337378, 15349350, 18052588,
    18249556, 18515675, 18720782, 18737795, 18749470,
    18774001, 18774344, 19002922, 19007017, 19007213,
    19032205, 19044114, 19080853, 19215690, 19240657,
    19270303, 19524380, 19543275, 19560551, 19974081,
    22382255, 22991897, 23177239, 23672800, 23729551,
)

# Value dictionaries the paper names explicitly (Example 3.1 / Figure 2.2).
_DEPARTMENTS = {2: "management", 3: "production", 4: "marketing", 5: "personnel"}  # repro: shared-state[paper constants (Example 3.1); written once here, read-only lookup table]
_JOBS = {  # repro: shared-state[paper constants (Figure 2.2); written once here, read-only lookup table]
    4: "executive",
    5: "secretary",
    6: "worker1",
    7: "worker2",
    8: "manager",
    9: "part-time",
    10: "supervisor",
    12: "director",
}


def paper_ordinals() -> List[int]:
    """The 50 sorted phi ordinals of Figure 2.2 Table (c)."""
    return list(_PAPER_ORDINALS)


def paper_schema() -> Schema:
    """The Example 3.1 schema with the paper's (partial) value dictionaries."""
    departments = [
        _DEPARTMENTS.get(i, f"dept{i}") for i in range(PAPER_DOMAIN_SIZES[0])
    ]
    jobs = [_JOBS.get(i, f"job{i}") for i in range(PAPER_DOMAIN_SIZES[1])]
    return Schema(
        [
            Attribute("department", CategoricalDomain(departments)),
            Attribute("job_title", CategoricalDomain(jobs)),
            Attribute("years", IntegerRangeDomain(0, 63)),
            Attribute("hours", IntegerRangeDomain(0, 63)),
            Attribute("empno", IntegerRangeDomain(0, 63)),
        ]
    )


def paper_relation() -> Relation:
    """Figure 2.2 Table (b): the encoded relation, in employee-number order.

    The paper's Table (a)/(b) list tuples by employee number (attribute
    ``A_5`` takes each value 0..49 exactly once); re-sorting the Table (c)
    ordinals by that attribute recovers the original presentation order.
    """
    mapper = OrdinalMapper(PAPER_DOMAIN_SIZES)
    tuples = [mapper.phi_inverse(e) for e in _PAPER_ORDINALS]
    tuples.sort(key=lambda t: t[4])
    return Relation(paper_schema(), tuples)


def paper_blocks() -> List[List[Tuple[int, ...]]]:
    """Figure 2.2 Table (c) partitioned as the illustration shows: 10
    blocks of 5 phi-ordered tuples."""
    mapper = OrdinalMapper(PAPER_DOMAIN_SIZES)
    sorted_tuples = [mapper.phi_inverse(e) for e in _PAPER_ORDINALS]
    return [
        sorted_tuples[i : i + PAPER_BLOCK_TUPLES]
        for i in range(0, len(sorted_tuples), PAPER_BLOCK_TUPLES)
    ]


def paper_codec() -> BlockCodec:
    """The codec configuration the paper's example uses (chained, median)."""
    return BlockCodec(PAPER_DOMAIN_SIZES)


def encode_paper_blocks() -> List[bytes]:
    """Figure 2.2 Table (d): every block of the example relation, coded."""
    codec = paper_codec()
    return [codec.encode_block(block) for block in paper_blocks()]
