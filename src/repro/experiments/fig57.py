"""Figure 5.7: compression efficiency across relation characteristics.

The paper's four tests cross two factors — attribute-value skew and
domain-size variance — at multiple relation sizes, and report the
percentage reduction ``100 (1 - coded/uncoded)`` in disk blocks:

    Test 1 (skew, small variance):     73.0%  (10^4 and 10^5 tuples)
    Test 2 (skew, large variance):     65.6%
    Test 3 (uniform, small variance):  73.0%
    Test 4 (uniform, large variance):  65.6%

plus three qualitative claims: compression is high; homogeneous domain
sizes compress better; skew has no visible effect.  This driver
regenerates the table (block counts come from the real packer, not a
formula) and also reports the non-AVQ baselines for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.avq import AVQBaseline
from repro.baselines.nocoding import NaturalWidthBaseline, NoCodingBaseline
from repro.baselines.rawrle import RawRLEBaseline
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.workload.generator import RelationSpec, generate_relation

__all__ = [
    "PAPER_REDUCTIONS",
    "TEST_CONFIGS",
    "CompressionResult",
    "TestConfig",
    "measure_relation",
    "run_compression_test",
    "run_figure_57",
]


@dataclass(frozen=True)
class TestConfig:
    """One column of Figure 5.7 Table (a)."""

    number: int
    skew: bool
    variance: str  # "small" or "large"

    @property
    def label(self) -> str:
        """Human-readable cell label."""
        skew = "skew" if self.skew else "uniform"
        return f"Test {self.number} ({skew}, {self.variance} variance)"


#: Figure 5.7 Table (a): the four relation-characteristic combinations.
TEST_CONFIGS: Tuple[TestConfig, ...] = (
    TestConfig(1, skew=True, variance="small"),
    TestConfig(2, skew=True, variance="large"),
    TestConfig(3, skew=False, variance="small"),
    TestConfig(4, skew=False, variance="large"),
)

#: Figure 5.7 Table (b): the paper's reported reductions, by test number.
PAPER_REDUCTIONS: Dict[int, float] = {1: 73.0, 2: 65.6, 3: 73.0, 4: 65.6}  # repro: shared-state[paper constants; written once here, read-only lookup table]

#: Mean (active) domain size for the Figure 5.7 relations.  The paper never
#: states it; census-style categorical data (the authors' CIESIN context)
#: has a handful of values per attribute, and this value lands the
#: uniform/small-variance cell in the paper's ~73% regime (see
#: EXPERIMENTS.md for the calibration).
DEFAULT_MEAN_DOMAIN_SIZE = 4


@dataclass(frozen=True)
class CompressionResult:
    """One cell of Figure 5.7 Table (b), with extra baseline context.

    ``uncoded_blocks`` sizes the relation at natural int16-style field
    widths — the paper's "before" layout (DESIGN.md substitution table);
    ``packed_blocks`` is the tighter minimal-byte-width layout, reported
    so the packing contribution is visible separately.
    """

    test: TestConfig
    num_tuples: int
    uncoded_blocks: int
    packed_blocks: int
    coded_blocks: int
    raw_rle_blocks: int
    block_size: int

    @property
    def reduction_pct(self) -> float:
        """Figure 5.7's ``100 (1 - after/before)`` in blocks."""
        if self.uncoded_blocks == 0:
            return 0.0
        return 100.0 * (1.0 - self.coded_blocks / self.uncoded_blocks)

    @property
    def packed_reduction_pct(self) -> float:
        """AVQ versus the minimal packed layout (the stricter comparison)."""
        if self.packed_blocks == 0:
            return 0.0
        return 100.0 * (1.0 - self.coded_blocks / self.packed_blocks)

    @property
    def raw_rle_reduction_pct(self) -> float:
        """Same metric for the no-differencing RLE baseline."""
        if self.uncoded_blocks == 0:
            return 0.0
        return 100.0 * (1.0 - self.raw_rle_blocks / self.uncoded_blocks)

    @property
    def paper_reduction_pct(self) -> float:
        """The paper's value for this test (both sizes report the same)."""
        return PAPER_REDUCTIONS[self.test.number]


def _spec_for(test: TestConfig, num_tuples: int, seed: int) -> RelationSpec:
    return RelationSpec(
        num_tuples=num_tuples,
        num_attributes=15,
        mean_domain_size=DEFAULT_MEAN_DOMAIN_SIZE,
        domain_variance=test.variance,
        skew="skewed" if test.skew else "uniform",
        seed=seed,
    )


def run_compression_test(
    test: TestConfig,
    num_tuples: int,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
    workers: Optional[int] = None,
) -> CompressionResult:
    """Generate one relation and measure its block footprint under each coder."""
    relation = generate_relation(_spec_for(test, num_tuples, seed))
    return measure_relation(
        relation, test, block_size=block_size, workers=workers
    )


def measure_relation(
    relation: Relation,
    test: TestConfig,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: Optional[int] = None,
) -> CompressionResult:
    """Block footprints of one already-generated relation.

    With ``workers`` set, the AVQ cell is measured by *materialising*
    every coded block through :func:`repro.core.parallel.encode_blocks`
    (0 = all cores) instead of the sizing-only scan — same count, but
    the sweep then exercises and times the production encode path.
    """
    sizes = relation.schema.domain_sizes
    uncoded = NaturalWidthBaseline(sizes).blocks_needed(relation, block_size)
    packed = NoCodingBaseline(sizes).blocks_needed(relation, block_size)
    if workers is not None:
        from repro.core.codec import BlockCodec
        from repro.core.parallel import encode_blocks
        from repro.storage.packer import pack_runs

        codec = BlockCodec(sizes)
        runs = pack_runs(codec, relation.phi_ordinals(), block_size)
        coded = len(
            encode_blocks(codec, runs, workers=workers, capacity=block_size)
        )
    else:
        coded = AVQBaseline(sizes).blocks_needed(relation, block_size)
    raw_rle = RawRLEBaseline(sizes).blocks_needed(relation, block_size)
    return CompressionResult(
        test=test,
        num_tuples=len(relation),
        uncoded_blocks=uncoded,
        packed_blocks=packed,
        coded_blocks=coded,
        raw_rle_blocks=raw_rle,
        block_size=block_size,
    )


def run_figure_57(
    sizes: Sequence[int] = (10_000, 100_000),
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[CompressionResult]:
    """The full Figure 5.7 sweep: every test at every relation size."""
    out: List[CompressionResult] = []
    for test in TEST_CONFIGS:
        for n in sizes:
            out.append(
                run_compression_test(
                    test, n,
                    block_size=block_size,
                    seed=seed + test.number,
                    workers=workers,
                )
            )
    return out
