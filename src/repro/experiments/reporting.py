"""Plain-text rendering of the experiment tables.

Every driver returns structured results; these formatters print them in
the same row/column arrangement the paper uses, so the output can be
eyeballed against Figures 5.7, 5.8, and 5.9 directly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.fig57 import CompressionResult
from repro.experiments.fig58 import Fig58Result
from repro.experiments.fig59 import ParallelCodecTimings
from repro.perf.costmodel import ResponseTimeRow

__all__ = [
    "format_table",
    "format_fig57",
    "format_fig58",
    "format_fig59",
    "format_parallel_codec",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table with a header rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)


def format_fig57(results: List[CompressionResult]) -> str:
    """Figure 5.7 Table (b): percentage reduction per test and size."""
    headers = [
        "tuples", "test", "uncoded blk", "AVQ blk",
        "reduction", "paper", "vs packed", "raw-RLE",
    ]
    rows = [
        [
            r.num_tuples,
            r.test.label,
            r.uncoded_blocks,
            r.coded_blocks,
            f"{r.reduction_pct:.1f}%",
            f"{r.paper_reduction_pct:.1f}%",
            f"{r.packed_reduction_pct:.1f}%",
            f"{r.raw_rle_reduction_pct:.1f}%",
        ]
        for r in results
    ]
    return format_table(headers, rows)


def format_fig58(result: Fig58Result) -> str:
    """Figure 5.8: N per attribute, then the averages."""
    headers = ["attribute", "range", "N uncoded", "N AVQ"]
    rows = [
        [
            r.attribute + (" (key)" if r.is_key else ""),
            f"[{r.lo}, {r.hi}]",
            r.blocks_uncoded,
            r.blocks_coded,
        ]
        for r in result.rows
    ]
    table = format_table(headers, rows)
    summary = (
        f"\nfile blocks: uncoded={result.total_blocks_uncoded} "
        f"coded={result.total_blocks_coded}"
        f"\naverage N: uncoded={result.avg_uncoded:.1f} "
        f"coded={result.avg_coded:.1f} "
        f"(reduction {result.reduction_pct:.1f}%; paper: 153.6 vs 55.0, 64.2%)"
    )
    return table + summary


def format_fig59(rows: List[ResponseTimeRow]) -> str:
    """Figure 5.9: the full response-time table, machines as columns."""
    labels = [
        ("Block coding time (msec)", lambda r: f"{r.coding_ms:.2f}"),
        ("Block decoding time (msec), t2", lambda r: f"{r.decoding_ms:.2f}"),
        ("Single block I/O time (msec), t1", lambda r: f"{r.t1_ms:.2f}"),
        ("Time to extract tuples (msec), t3", lambda r: f"{r.extract_ms:.2f}"),
        ("Index search (uncoded) (sec), I", lambda r: f"{r.index_time_uncoded_s:.3f}"),
        ("Index search (AVQ) (sec), I", lambda r: f"{r.index_time_coded_s:.3f}"),
        ("Blocks accessed (uncoded), N", lambda r: f"{r.blocks_uncoded:.1f}"),
        ("Blocks accessed (AVQ), N", lambda r: f"{r.blocks_coded:.1f}"),
        ("Total I/O time (uncoded) (sec), C2", lambda r: f"{r.total_uncoded_s:.3f}"),
        ("Total I/O time (AVQ) (sec), C1", lambda r: f"{r.total_coded_s:.3f}"),
        ("Improvement", lambda r: f"{r.improvement_pct:.1f}%"),
    ]
    headers = ["No.", "Description"] + [r.machine for r in rows]
    table_rows = [
        [i + 1, label] + [extract(r) for r in rows]
        for i, (label, extract) in enumerate(labels)
    ]
    return format_table(headers, table_rows)


def format_parallel_codec(t: ParallelCodecTimings) -> str:
    """Serial versus pooled whole-relation coding, plus the per-stage
    breakdown harvested from the scoped observability registry."""
    headers = ["stage", "serial ms", "parallel ms", "speedup"]
    rows = [
        [
            "encode",
            f"{t.serial_encode_ms:.1f}",
            f"{t.parallel_encode_ms:.1f}",
            f"{t.encode_speedup:.2f}x",
        ],
        [
            "decode",
            f"{t.serial_decode_ms:.1f}",
            f"{t.parallel_decode_ms:.1f}",
            f"{t.decode_speedup:.2f}x",
        ],
    ]
    lines = [
        f"{t.num_blocks} blocks, {t.num_tuples} tuples, "
        f"{t.workers} worker(s)",
        format_table(headers, rows),
    ]
    if t.stage_breakdown:
        lines.append("per-stage registry breakdown (serial passes):")
        width = max(len(name) for name in t.stage_breakdown)
        for name in sorted(t.stage_breakdown):
            value = t.stage_breakdown[name]
            lines.append(f"  {name.ljust(width)}  {value:10.3f}")
    return "\n".join(lines)
