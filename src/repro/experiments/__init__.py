"""Experiment drivers: one module per table/figure of the paper.

* :mod:`repro.experiments.worked_example` — the Figure 2.2/3.3 relation
* :mod:`repro.experiments.fig57` — compression efficiency
* :mod:`repro.experiments.fig58` — blocks accessed per query
* :mod:`repro.experiments.fig59` — coding times and response times
* :mod:`repro.experiments.reporting` — paper-style text tables

Run everything with ``python -m repro.experiments``.
"""

from repro.experiments.ablations import AblationReport, run_ablations
from repro.experiments.fig57 import (
    PAPER_REDUCTIONS,
    TEST_CONFIGS,
    CompressionResult,
    run_compression_test,
    run_figure_57,
)
from repro.experiments.fig58 import (
    Fig58Result,
    Fig58Row,
    build_fig58_relation,
    run_figure_58,
)
from repro.experiments.fig59 import (
    CodecTimings,
    ParallelCodecTimings,
    measure_local_codec,
    measure_parallel_codec,
    measured_response_table,
    paper_response_table,
)
from repro.experiments.reporting import (
    format_fig57,
    format_fig58,
    format_fig59,
    format_parallel_codec,
    format_table,
)
from repro.experiments.worked_example import (
    PAPER_BLOCK_TUPLES,
    PAPER_DOMAIN_SIZES,
    encode_paper_blocks,
    paper_blocks,
    paper_codec,
    paper_ordinals,
    paper_relation,
    paper_schema,
)

__all__ = [
    "run_ablations",
    "AblationReport",
    "TEST_CONFIGS",
    "PAPER_REDUCTIONS",
    "CompressionResult",
    "run_compression_test",
    "run_figure_57",
    "Fig58Row",
    "Fig58Result",
    "build_fig58_relation",
    "run_figure_58",
    "CodecTimings",
    "ParallelCodecTimings",
    "measure_local_codec",
    "measure_parallel_codec",
    "paper_response_table",
    "measured_response_table",
    "format_table",
    "format_fig57",
    "format_fig58",
    "format_fig59",
    "format_parallel_codec",
    "PAPER_DOMAIN_SIZES",
    "PAPER_BLOCK_TUPLES",
    "paper_ordinals",
    "paper_schema",
    "paper_relation",
    "paper_blocks",
    "paper_codec",
    "encode_paper_blocks",
]
