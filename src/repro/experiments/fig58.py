"""Figure 5.8: blocks accessed per range query, attribute by attribute.

The paper runs ``sigma_{a <= A_k <= b}(R)`` for ``k = 1..15`` with
``a = 0.5 |A_k|`` against the coded and uncoded relation and counts the
data blocks touched (``N``).  Three regimes appear:

* ``k = 1`` — the clustering attribute: the phi-sorted relation answers
  from a contiguous fraction of blocks;
* ``2 <= k <= 14`` — non-clustered attributes: at 50% selectivity nearly
  every block holds a match, so N is close to the whole file — but the
  coded file *is* about 3x smaller, so its N is about 3x smaller;
* ``k = 15`` — the unique key: a point probe touches one block in both.

The paper's averages are 153.6 (uncoded) versus 55.0 (coded) — a 64.2%
reduction.  This driver builds the relation, stores it both ways (the
uncoded file at natural int16-style widths, per DESIGN.md), builds a
secondary index per attribute, executes the sweep, and reports the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.index.secondary import SecondaryIndex
from repro.relational.domain import IntegerRangeDomain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.storage.avqfile import AVQFile
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.workload.distributions import get_sampler

import numpy as np

__all__ = [
    "PAPER_AVG_UNCODED",
    "PAPER_AVG_CODED",
    "Fig58Row",
    "Fig58Result",
    "build_fig58_relation",
    "run_figure_58",
]

#: Figure 5.9 rows 7-8: the paper's average N values.
PAPER_AVG_UNCODED = 153.6
PAPER_AVG_CODED = 55.0


@dataclass(frozen=True)
class Fig58Row:
    """One attribute's column of Figure 5.8."""

    attribute: str
    is_key: bool
    lo: int
    hi: int
    blocks_uncoded: int
    blocks_coded: int


@dataclass(frozen=True)
class Fig58Result:
    """The full Figure 5.8 table plus file-level context."""

    rows: List[Fig58Row]
    total_blocks_uncoded: int
    total_blocks_coded: int

    @property
    def avg_uncoded(self) -> float:
        """Average N over the sweep (Figure 5.9 row 7 analogue)."""
        return sum(r.blocks_uncoded for r in self.rows) / len(self.rows)

    @property
    def avg_coded(self) -> float:
        """Average N over the sweep (Figure 5.9 row 8 analogue)."""
        return sum(r.blocks_coded for r in self.rows) / len(self.rows)

    @property
    def reduction_pct(self) -> float:
        """The paper's ``100 (1 - 55/153.6) = 64.2%`` analogue."""
        return 100.0 * (1.0 - self.avg_coded / self.avg_uncoded)


def build_fig58_relation(
    num_tuples: int = 50_000,
    *,
    num_attributes: int = 15,
    mean_domain_size: int = 8,
    seed: int = 0,
) -> Relation:
    """The sweep relation: 14 small categorical-style attributes plus a
    unique key as the last attribute (the paper's ``A_15`` primary key)."""
    rng = np.random.default_rng(seed)
    sampler = get_sampler("uniform")
    sizes = [mean_domain_size] * (num_attributes - 1) + [num_tuples]
    columns = [
        sampler(rng, s, num_tuples) for s in sizes[:-1]
    ]
    columns.append(np.arange(num_tuples, dtype=np.int64))  # unique key
    schema = Schema(
        [
            Attribute(f"A{i + 1}", IntegerRangeDomain(0, s - 1))
            for i, s in enumerate(sizes)
        ]
    )
    return Relation.from_array(schema, np.stack(columns, axis=1))


def _build_all_secondaries(storage) -> Dict[int, SecondaryIndex]:
    """One scan, every attribute indexed (cheaper than a scan per index).

    Buckets only need each block's *distinct* values per attribute, so
    the per-tuple loop is replaced by a vectorised ``np.unique`` per
    block column — the index contents are identical.
    """
    schema = storage.schema
    indices = {
        pos: SecondaryIndex(name, pos)
        for pos, name in enumerate(schema.names)
    }
    for block_id, tuples in storage.iter_blocks():
        array = np.asarray(tuples, dtype=np.int64)
        for pos, idx in indices.items():
            for value in np.unique(array[:, pos]):
                idx.add(int(value), block_id)
    return indices


def run_figure_58(
    relation: Relation = None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    start_fraction: float = 0.5,
    num_tuples: int = 50_000,
    seed: int = 0,
) -> Fig58Result:
    """Execute the Figure 5.8 sweep and return the table.

    Non-key attributes get the paper's half-domain range
    ``[0.5 |A_k|, |A_k| - 1]``; the unique key gets a point probe (the
    paper: "only one block is accessed when k = 15 because A_15 is the
    primary key").
    """
    if relation is None:
        relation = build_fig58_relation(num_tuples, seed=seed)
    schema = relation.schema

    uncoded_disk = SimulatedDisk(block_size=block_size)
    coded_disk = SimulatedDisk(block_size=block_size)
    heap = HeapFile.build(relation, uncoded_disk, min_field_bytes=2)
    avq = AVQFile.build(relation, coded_disk)

    heap_indices = _build_all_secondaries(heap)
    avq_indices = _build_all_secondaries(avq)

    key_pos = schema.arity - 1
    rows: List[Fig58Row] = []
    for pos, name in enumerate(schema.names):
        size = schema.domain_sizes[pos]
        if pos == key_pos:
            lo = hi = size // 2  # point probe on the unique key
        else:
            lo, hi = int(size * start_fraction), size - 1
        n_uncoded = len(heap_indices[pos].range_lookup(lo, hi))
        n_coded = len(avq_indices[pos].range_lookup(lo, hi))
        rows.append(
            Fig58Row(
                attribute=name,
                is_key=pos == key_pos,
                lo=lo,
                hi=hi,
                blocks_uncoded=n_uncoded,
                blocks_coded=n_coded,
            )
        )
    return Fig58Result(
        rows=rows,
        total_blocks_uncoded=heap.num_blocks,
        total_blocks_coded=avq.num_blocks,
    )
