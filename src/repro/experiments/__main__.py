"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments [--quick]

``--quick`` shrinks relation sizes so the whole sweep finishes in a few
seconds (useful as a smoke test); the default sizes match the scaled
experiment described in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.fig57 import run_figure_57
from repro.experiments.fig58 import run_figure_58
from repro.experiments.fig59 import (
    measure_local_codec,
    measure_parallel_codec,
    measured_response_table,
    paper_response_table,
)
from repro.experiments.reporting import (
    format_fig57,
    format_fig58,
    format_fig59,
    format_parallel_codec,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table and figure of the AVQ paper.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small relations; finishes in seconds",
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help="also run the DESIGN.md ablation studies",
    )
    args = parser.parse_args(argv)

    if args.quick:
        fig57_sizes = (2_000, 10_000)
        fig58_tuples = 5_000
        timing_tuples = 5_000
        repeats = 20
    else:
        fig57_sizes = (10_000, 100_000)
        fig58_tuples = 50_000
        timing_tuples = 20_000
        repeats = 100

    print("=" * 72)
    print("Figure 5.7 — compression efficiency")
    print("=" * 72)
    print(format_fig57(run_figure_57(fig57_sizes)))

    print()
    print("=" * 72)
    print("Figure 5.8 — blocks accessed per range query")
    print("=" * 72)
    fig58 = run_figure_58(num_tuples=fig58_tuples)
    print(format_fig58(fig58))

    print()
    print("=" * 72)
    print("Figure 5.9 — response times (paper constants, regenerated)")
    print("=" * 72)
    print(format_fig59(paper_response_table()))

    print()
    print("=" * 72)
    print("Figure 5.9 — response times (measured N, + local calibration)")
    print("=" * 72)
    timings = measure_local_codec(num_tuples=timing_tuples, repeats=repeats)
    print(
        f"local codec: {timings.tuples_per_block} tuples/block, "
        f"{timings.block_bytes} coded bytes"
    )
    print(format_fig59(measured_response_table(fig58, local=timings.profile)))

    print()
    print("=" * 72)
    print("Parallel codec — whole-relation coding, serial vs pooled")
    print("=" * 72)
    print(format_parallel_codec(measure_parallel_codec(
        num_tuples=timing_tuples
    )))

    if args.ablations:
        from repro.experiments.ablations import run_ablations

        print()
        print("=" * 72)
        print("Ablation studies (DESIGN.md section 5)")
        print("=" * 72)
        print(run_ablations(num_tuples=2_000 if args.quick else 20_000))
    return 0


if __name__ == "__main__":
    sys.exit(main())
