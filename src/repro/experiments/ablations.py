"""Ablation studies: quantify each design choice the paper makes.

DESIGN.md lists the choices worth isolating; this driver measures them
on a common relation and returns printable tables:

* chained differencing (Example 3.3) on versus off;
* representative selection (median / first / last / nearest-mean) for
  the unchained codec — with chaining the size is provably independent;
* block size (1 to 64 KiB) — compression versus per-block I/O cost;
* attribute ordering — which domain leads the phi radix;
* coding granularity — byte RLE versus bit-level Golomb versus the
  bit-transposed baseline.

Run via ``python -m repro.experiments --ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bittransposed import BitTransposedBaseline
from repro.core.codec import BlockCodec
from repro.core.golomb import GolombBlockCodec
from repro.core.representative import STRATEGIES
from repro.experiments.reporting import format_table
from repro.relational.domain import IntegerRangeDomain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.storage.disk import DiskModel
from repro.storage.packer import pack_ordinals
from repro.workload.generator import RelationSpec, generate_relation

__all__ = ["run_ablations", "AblationReport"]

DEFAULT_BLOCK = 8192


@dataclass
class AblationReport:
    """All ablation tables, pre-rendered."""

    chaining: str
    representative: str
    block_size: str
    attribute_order: str
    granularity: str

    def __str__(self) -> str:
        sections = [
            ("Chaining (Example 3.3)", self.chaining),
            ("Representative strategy (unchained codec)", self.representative),
            ("Block size", self.block_size),
            ("Attribute ordering", self.attribute_order),
            ("Coding granularity", self.granularity),
        ]
        out = []
        for title, body in sections:
            out.append(title)
            out.append("-" * len(title))
            out.append(body)
            out.append("")
        return "\n".join(out)


def _test_relation(num_tuples: int, seed: int) -> Relation:
    return generate_relation(
        RelationSpec(
            num_tuples=num_tuples,
            num_attributes=15,
            mean_domain_size=4,
            domain_variance="small",
            skew="uniform",
            seed=seed,
        )
    )


def _chaining_table(relation: Relation) -> str:
    rows = []
    ordinals = relation.phi_ordinals()
    for chained in (True, False):
        codec = BlockCodec(relation.schema.domain_sizes, chained=chained)
        stats = pack_ordinals(codec, ordinals, DEFAULT_BLOCK).stats
        rows.append(
            [
                "chained" if chained else "unchained",
                stats.num_blocks,
                stats.payload_bytes,
                f"{stats.utilisation:.1%}",
            ]
        )
    return format_table(["variant", "blocks", "payload bytes", "fill"], rows)


def _representative_table(relation: Relation) -> str:
    rows = []
    ordinals = relation.phi_ordinals()
    for name in sorted(STRATEGIES):
        codec = BlockCodec(
            relation.schema.domain_sizes, chained=False, representative=name
        )
        stats = pack_ordinals(codec, ordinals, DEFAULT_BLOCK).stats
        rows.append([name, stats.num_blocks, stats.payload_bytes])
    return format_table(["strategy", "blocks", "payload bytes"], rows)


def _block_size_table(relation: Relation) -> str:
    from repro.baselines.avq import AVQBaseline
    from repro.baselines.nocoding import NaturalWidthBaseline

    sizes = relation.schema.domain_sizes
    avq = AVQBaseline(sizes)
    uncoded = NaturalWidthBaseline(sizes)
    model = DiskModel()
    rows = []
    for bs in (1024, 2048, 4096, 8192, 16384, 32768, 65536):
        coded = avq.blocks_needed(relation, bs)
        plain = uncoded.blocks_needed(relation, bs)
        rows.append(
            [
                bs,
                coded,
                plain,
                f"{100 * (1 - coded / plain):.1f}%",
                f"{model.block_io_ms(bs):.1f}",
            ]
        )
    return format_table(
        ["block size", "AVQ blocks", "uncoded blocks", "reduction", "t1 (ms)"],
        rows,
    )


def _attribute_order_table(seed: int) -> str:
    base_sizes = [3, 200, 5, 40, 4, 1000, 8, 12, 6, 25]
    rng = np.random.default_rng(seed)
    columns = [rng.integers(0, s, size=20_000) for s in base_sizes]

    def build(order):
        sizes = [base_sizes[i] for i in order]
        schema = Schema(
            [
                Attribute(f"A{i}", IntegerRangeDomain(0, s - 1))
                for i, s in enumerate(sizes)
            ]
        )
        array = np.stack([columns[i] for i in order], axis=1)
        return Relation.from_array(schema, array)

    from repro.baselines.avq import AVQBaseline

    orderings = {
        "given": list(range(len(base_sizes))),
        "large-first": sorted(
            range(len(base_sizes)), key=lambda i: -base_sizes[i]
        ),
        "small-first": sorted(
            range(len(base_sizes)), key=lambda i: base_sizes[i]
        ),
    }
    rows = []
    for name, order in orderings.items():
        rel = build(order)
        blocks = AVQBaseline(rel.schema.domain_sizes).blocks_needed(
            rel, DEFAULT_BLOCK
        )
        rows.append([name, blocks])
    return format_table(["ordering", "AVQ blocks"], rows)


def _granularity_table(relation: Relation) -> str:
    sizes = relation.schema.domain_sizes
    tuples = relation.sorted_by_phi()
    rows = []
    for name, data in (
        ("byte AVQ (paper)", BlockCodec(sizes).encode_block(tuples)),
        ("Golomb-Rice gaps", GolombBlockCodec(sizes).encode_block(tuples)),
        ("bit-transposed", BitTransposedBaseline(sizes).encode_block(tuples)),
    ):
        rows.append(
            [name, len(data), f"{8 * len(data) / len(tuples):.1f}"]
        )
    return format_table(["coder", "bytes", "bits/tuple"], rows)


def run_ablations(*, num_tuples: int = 20_000, seed: int = 3) -> AblationReport:
    """Run every ablation and return the rendered report."""
    relation = _test_relation(num_tuples, seed)
    return AblationReport(
        chaining=_chaining_table(relation),
        representative=_representative_table(relation),
        block_size=_block_size_table(relation),
        attribute_order=_attribute_order_table(seed),
        granularity=_granularity_table(relation),
    )
