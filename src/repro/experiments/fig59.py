"""Figure 5.9: coding times and the end-to-end response-time table.

Rows 1-4 are per-block CPU costs.  The paper measured them on three
workstations; we carry those constants (:mod:`repro.perf.machines`) and
measure the same operations on *this* host with the paper's method (100
repetitions over one representative 8192-byte block of the Section 5.2
relation).

Rows 5-11 are pure arithmetic over (I, N, t1, t2, t3) — Equations 5.7
and 5.8.  :func:`paper_response_table` plugs in the paper's own constants
and regenerates its table; :func:`measured_response_table` combines the
paper's machine constants (plus the local calibration) with block counts
measured by the Figure 5.8 sweep.

Known erratum: the paper prints C2 = 6.013 s for the Sun 4/50, but its
own formula with its own constants (I = 0.283, N = 153.6, t1 = 30,
t3 = 3.70) gives 5.459 s; every other cell checks out.  We reproduce the
formula, not the typo (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.codec import BlockCodec
from repro.experiments.fig58 import (
    PAPER_AVG_CODED,
    PAPER_AVG_UNCODED,
    Fig58Result,
)
from repro.perf.costmodel import (
    PAPER_T1_MS,
    ResponseTimeRow,
    response_time_table,
)
from repro.perf.machines import PAPER_MACHINES, MachineProfile, calibrated_profile
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.packer import pack_ordinals
from repro.workload.generator import generate_relation, paper_timing_spec

__all__ = [
    "PAPER_DATA_BLOCKS_UNCODED",
    "PAPER_DATA_BLOCKS_CODED",
    "CodecTimings",
    "ParallelCodecTimings",
    "measure_local_codec",
    "measure_parallel_codec",
    "paper_response_table",
    "measured_response_table",
]

#: Section 5.3.1: data blocks of the uncoded and coded relation.
PAPER_DATA_BLOCKS_UNCODED = 189
PAPER_DATA_BLOCKS_CODED = 64


@dataclass(frozen=True)
class CodecTimings:
    """Locally measured per-block times (Figure 5.9 rows 1, 2, 4)."""

    profile: MachineProfile
    tuples_per_block: int
    block_bytes: int


def measure_local_codec(
    relation: Optional[Relation] = None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    repeats: int = 100,
    num_tuples: int = 20_000,
    seed: int = 0,
) -> CodecTimings:
    """Measure block coding, decoding, and extraction on this host.

    Follows Section 5.2: the tuples of one representative block are held
    in memory, each operation runs ``repeats`` times, and the mean is
    reported.  The default relation is a scaled-down Section 5.2 relation
    (16 attributes, 38-byte tuples).
    """
    if relation is None:
        relation = generate_relation(paper_timing_spec(num_tuples, seed=seed))
    codec = BlockCodec(relation.schema.domain_sizes)
    partition = pack_ordinals(codec, relation.phi_ordinals(), block_size)
    # The middle block is representative; edge blocks may be underfull.
    run = partition.blocks[len(partition.blocks) // 2]
    tuples = [codec.mapper.phi_inverse(o) for o in run]
    encoded = codec.encode_block(tuples)

    heap_disk = SimulatedDisk(block_size=block_size)
    heap = HeapFile(relation.schema, heap_disk)
    heap_tuples = tuples[: heap.tuples_per_block]
    heap_payload = len(heap_tuples).to_bytes(2, "big") + b"".join(
        heap._layout.tuple_to_bytes(t) for t in heap_tuples
    )

    profile = calibrated_profile(
        lambda: codec.encode_block(tuples),
        lambda: codec.decode_block(encoded),
        lambda: heap.extract(heap_payload),
        name="local-python",
        repeats=repeats,
    )
    return CodecTimings(
        profile=profile,
        tuples_per_block=len(tuples),
        block_bytes=len(encoded),
    )


@dataclass(frozen=True)
class ParallelCodecTimings:
    """Whole-relation coding throughput, serial versus the worker pool.

    The Figure 5.9 rows time one block; bulk (re)compression of a whole
    relation is where parallelism pays, so this measures the full batch.
    Speedups can dip below 1.0 on single-core hosts — pool and pickling
    overhead with nothing to overlap — which is itself a result worth
    reporting.
    """

    workers: int
    num_blocks: int
    num_tuples: int
    serial_encode_ms: float
    parallel_encode_ms: float
    serial_decode_ms: float
    parallel_decode_ms: float
    #: Per-stage codec metrics harvested from the scoped observability
    #: registry during the measurement (docs/OBSERVABILITY.md): histogram
    #: totals/means for ``codec.encode_ms``/``codec.decode_ms`` and the
    #: block counters.  Only the serial passes contribute per-block
    #: samples — worker processes do not report back (see
    #: :mod:`repro.core.parallel`) — so the breakdown decomposes the
    #: serial wall times above.
    stage_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def encode_speedup(self) -> float:
        """Serial over parallel encode wall time (>1 means faster)."""
        if self.parallel_encode_ms == 0.0:
            return 0.0
        return self.serial_encode_ms / self.parallel_encode_ms

    @property
    def decode_speedup(self) -> float:
        """Serial over parallel decode wall time (>1 means faster)."""
        if self.parallel_decode_ms == 0.0:
            return 0.0
        return self.serial_decode_ms / self.parallel_decode_ms


def measure_parallel_codec(
    relation: Optional[Relation] = None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 0,
    num_tuples: int = 20_000,
    seed: int = 0,
) -> ParallelCodecTimings:
    """Time whole-relation encode/decode serially and through the pool.

    Uses the same Section 5.2 relation as :func:`measure_local_codec`,
    packs it once, then codes the full batch both ways
    (``workers=0`` resolves to every core).  The parallel payloads are
    checked byte-for-byte against the serial ones before timings are
    reported — a speedup on wrong bytes is no speedup.

    Timing runs through a scoped observability session
    (:func:`repro.obs.runtime.scoped`) rather than an ad-hoc timer: the
    four stages are spans, wall times come from
    :meth:`~repro.obs.tracing.Tracer.stage_totals`, and the registry's
    per-block codec histograms are returned as
    :attr:`ParallelCodecTimings.stage_breakdown`.
    """
    from repro.core.parallel import ParallelBlockCodec
    from repro.errors import CodecError
    from repro.obs import runtime
    from repro.storage.packer import pack_runs

    if relation is None:
        relation = generate_relation(paper_timing_spec(num_tuples, seed=seed))
    codec = BlockCodec(relation.schema.domain_sizes)
    runs = pack_runs(codec, relation.phi_ordinals(), block_size)

    with runtime.scoped() as (registry, tracer):
        with ParallelBlockCodec(codec, workers=1) as serial:
            with runtime.span("serial-encode"):
                expected = serial.encode_blocks(runs, capacity=block_size)
            with runtime.span("serial-decode"):
                serial.decode_blocks(expected)
        with ParallelBlockCodec(codec, workers=workers) as pool:
            with runtime.span("parallel-encode"):
                payloads = pool.encode_blocks(runs, capacity=block_size)
            if payloads != expected:
                raise CodecError(
                    "parallel encode diverged from the serial payloads"
                )
            with runtime.span("parallel-decode"):
                pool.decode_blocks(payloads)
            resolved = pool.workers
        totals = tracer.stage_totals()
        breakdown: Dict[str, float] = {}
        for name in ("codec.encode_ms", "codec.decode_ms"):
            histogram = registry.get(name)
            if histogram is not None:
                breakdown[name + ".total"] = histogram.sum
                breakdown[name + ".mean"] = histogram.mean
        for name in (
            "codec.blocks_encoded",
            "codec.blocks_decoded",
            "parallel.runs_encoded",
            "parallel.payloads_decoded",
        ):
            counter = registry.get(name)
            if counter is not None:
                breakdown[name] = float(counter.value)

    return ParallelCodecTimings(
        workers=resolved,
        num_blocks=len(runs),
        num_tuples=len(relation),
        serial_encode_ms=totals.get("serial-encode", 0.0),
        parallel_encode_ms=totals.get("parallel-encode", 0.0),
        serial_decode_ms=totals.get("serial-decode", 0.0),
        parallel_decode_ms=totals.get("parallel-decode", 0.0),
        stage_breakdown=breakdown,
    )


def paper_response_table() -> List[ResponseTimeRow]:
    """Figure 5.9 rows 5-11 regenerated from the paper's own constants.

    Matches the printed table to its rounding everywhere except the Sun
    C2 cell (the paper's internal inconsistency noted in the module
    docstring).
    """
    return response_time_table(
        PAPER_MACHINES,
        data_blocks_uncoded=PAPER_DATA_BLOCKS_UNCODED,
        data_blocks_coded=PAPER_DATA_BLOCKS_CODED,
        blocks_accessed_uncoded=PAPER_AVG_UNCODED,
        blocks_accessed_coded=PAPER_AVG_CODED,
        t1_ms=PAPER_T1_MS,
    )


def measured_response_table(
    fig58: Fig58Result,
    *,
    local: Optional[MachineProfile] = None,
    t1_ms: float = PAPER_T1_MS,
) -> List[ResponseTimeRow]:
    """The Figure 5.9 table over *measured* block counts.

    Uses the Figure 5.8 sweep's averages for N and file sizes for the
    index estimate; machines are the paper's three plus (optionally) the
    local calibration.
    """
    machines = list(PAPER_MACHINES)
    if local is not None:
        machines.append(local)
    return response_time_table(
        machines,
        data_blocks_uncoded=fig58.total_blocks_uncoded,
        data_blocks_coded=fig58.total_blocks_coded,
        blocks_accessed_uncoded=fig58.avg_uncoded,
        blocks_accessed_coded=fig58.avg_coded,
        t1_ms=t1_ms,
    )
