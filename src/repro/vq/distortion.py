"""Distortion measures for conventional VQ (Equation 2.1).

The paper quotes the common squared-error measure

    ``d(x, x_hat) = sum_i (x_i - x_hat_i)^2``

and defines the optimal quantizer as the one minimising it over all inputs.
These helpers are shared by the LBG design algorithm and the lossy coder.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DomainError

__all__ = ["squared_error", "mean_squared_distortion", "pairwise_squared_error"]


def squared_error(x: Sequence[float], x_hat: Sequence[float]) -> float:
    """Equation 2.1: squared error between a vector and its reproduction."""
    if len(x) != len(x_hat):
        raise DomainError(
            f"vectors have different dimension: {len(x)} vs {len(x_hat)}"
        )
    return float(sum((a - b) ** 2 for a, b in zip(x, x_hat)))


def pairwise_squared_error(points: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """``(num_points, num_codes)`` matrix of squared errors.

    Used by both the LBG partition step and the lossy coder's
    nearest-neighbour search.
    """
    points = np.asarray(points, dtype=np.float64)
    codebook = np.asarray(codebook, dtype=np.float64)
    if points.ndim != 2 or codebook.ndim != 2 or points.shape[1] != codebook.shape[1]:
        raise DomainError(
            f"incompatible shapes: points {points.shape}, codebook {codebook.shape}"
        )
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2, computed without a 3-D blow-up.
    p2 = (points**2).sum(axis=1, keepdims=True)
    c2 = (codebook**2).sum(axis=1)
    cross = points @ codebook.T
    out = p2 - 2.0 * cross + c2
    np.maximum(out, 0.0, out=out)  # clamp tiny negative rounding residue
    return out


def mean_squared_distortion(points: np.ndarray, codebook: np.ndarray) -> float:
    """Average Equation-2.1 distortion of quantizing ``points`` with ``codebook``."""
    d = pairwise_squared_error(points, codebook)
    return float(d.min(axis=1).mean())
