"""The Linde-Buzo-Gray codebook design algorithm [LBG 1980].

The paper (Section 2.1) contrasts AVQ's constant-time codebook
construction with LBG's iterative refinement, whose iteration count is
"non-deterministic".  We implement the classic splitting variant so that
the contrast is measurable:

1. start from the centroid of the training set (codebook of size 1);
2. split every code vector into a perturbed pair (doubling the codebook);
3. Lloyd-iterate — repartition points to nearest codes, move codes to the
   centroids of their partitions — until the relative distortion drop
   falls below ``epsilon``;
4. repeat from step 2 until the requested codebook size is reached.

The returned :class:`LBGResult` records the iteration count per level so
that the AVQ-versus-LBG design-cost benchmark can report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import DomainError
from repro.vq.distortion import pairwise_squared_error

__all__ = ["LBGResult", "lbg_codebook"]


@dataclass
class LBGResult:
    """Output of :func:`lbg_codebook`.

    Attributes
    ----------
    codebook:
        ``(num_codes, n)`` array of output vectors.
    distortion:
        Final mean squared distortion over the training set.
    lloyd_iterations:
        Lloyd iterations performed at each doubling level; the total is the
        "non-deterministic number of iterations" the paper holds against
        conventional VQ.
    """

    codebook: np.ndarray
    distortion: float
    lloyd_iterations: List[int] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        """Total Lloyd iterations across all codebook-doubling levels."""
        return sum(self.lloyd_iterations)


def _lloyd(
    points: np.ndarray,
    codebook: np.ndarray,
    epsilon: float,
    max_iterations: int,
) -> "tuple[np.ndarray, float, int]":
    """Lloyd iteration: alternate nearest-code partition and centroid update."""
    prev_distortion = np.inf
    distortion = np.inf
    iterations = 0
    for _ in range(max_iterations):
        d = pairwise_squared_error(points, codebook)
        assignment = d.argmin(axis=1)
        distortion = float(d[np.arange(len(points)), assignment].mean())
        iterations += 1
        if prev_distortion < np.inf:
            if prev_distortion == 0.0:
                break
            if (prev_distortion - distortion) / prev_distortion <= epsilon:
                break
        prev_distortion = distortion
        new_codebook = codebook.copy()
        for c in range(codebook.shape[0]):
            members = points[assignment == c]
            if len(members):
                new_codebook[c] = members.mean(axis=0)
            # Empty cells keep their old code vector; the next split
            # perturbs them back into play.
        codebook = new_codebook
    return codebook, distortion, iterations


def lbg_codebook(
    points: np.ndarray,
    num_codes: int,
    *,
    epsilon: float = 1e-3,
    perturbation: float = 1e-2,
    max_iterations: int = 100,
    seed: int = 0,
) -> LBGResult:
    """Design a codebook of (up to) ``num_codes`` vectors with LBG splitting.

    ``num_codes`` is rounded up to the next power of two internally (the
    splitting construction doubles each level) and then truncated; the
    distortion is always reported for the returned codebook.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise DomainError(f"training set must be a non-empty 2-D array, got {points.shape}")
    if num_codes < 1:
        raise DomainError(f"codebook size must be >= 1, got {num_codes}")

    rng = np.random.default_rng(seed)
    codebook = points.mean(axis=0, keepdims=True)
    iterations: List[int] = []

    _, distortion, its = _lloyd(points, codebook, epsilon, max_iterations)
    iterations.append(its)

    while codebook.shape[0] < num_codes:
        jitter = perturbation * (1.0 + points.std(axis=0))
        noise = rng.uniform(-1.0, 1.0, size=codebook.shape) * jitter
        codebook = np.concatenate([codebook - noise, codebook + noise], axis=0)
        codebook, distortion, its = _lloyd(points, codebook, epsilon, max_iterations)
        iterations.append(its)

    if codebook.shape[0] > num_codes:
        # Keep the most populated cells so the truncated codebook stays useful.
        d = pairwise_squared_error(points, codebook)
        assignment = d.argmin(axis=1)
        counts = np.bincount(assignment, minlength=codebook.shape[0])
        keep = np.argsort(-counts)[:num_codes]
        codebook = codebook[np.sort(keep)]
        d = pairwise_squared_error(points, codebook)
        distortion = float(d.min(axis=1).mean())

    return LBGResult(
        codebook=codebook,
        distortion=distortion,
        lloyd_iterations=iterations,
    )
