"""A conventional lossy vector quantizer (Section 2.1, Figure 2.1).

The coder ``C`` maps each input vector to the index of its nearest
codebook vector; the decoder ``D`` replaces the index with that vector.
Information is destroyed in between — running this on a relation and
observing the damage is the motivating experiment for AVQ, and the
`examples/lossy_vs_lossless.py` script does exactly that.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CodecError, DomainError
from repro.vq.distortion import pairwise_squared_error

__all__ = ["LossyVectorQuantizer"]


class LossyVectorQuantizer:
    """Classic VQ over an explicit codebook; *not* lossless.

    Examples
    --------
    >>> import numpy as np
    >>> q = LossyVectorQuantizer(np.array([[0.0, 0.0], [10.0, 10.0]]))
    >>> q.encode(np.array([[1.0, 2.0], [9.0, 9.0]])).tolist()
    [0, 1]
    >>> q.decode([0]).tolist()
    [[0.0, 0.0]]
    """

    def __init__(self, codebook: np.ndarray):
        codebook = np.asarray(codebook, dtype=np.float64)
        if codebook.ndim != 2 or len(codebook) == 0:
            raise DomainError(
                f"codebook must be a non-empty 2-D array, got shape {codebook.shape}"
            )
        self._codebook = codebook

    @property
    def codebook(self) -> np.ndarray:
        """The output-vector set ``Y`` of Figure 2.1."""
        return self._codebook.copy()

    @property
    def num_codes(self) -> int:
        """Codebook size ``|Y|`` (the codeword alphabet)."""
        return self._codebook.shape[0]

    @property
    def codeword_bits(self) -> int:
        """Bits per codeword: ``ceil(log2 |Y|)`` — the compressed tuple size."""
        return max(1, int(np.ceil(np.log2(self.num_codes))))

    def encode(self, points: np.ndarray) -> np.ndarray:
        """The coder ``C``: nearest-codebook index per input vector.

        This is the full-search coder whose cost AVQ's "no searching"
        property eliminates; its runtime is O(num_points * num_codes * n).
        """
        d = pairwise_squared_error(points, self._codebook)
        return d.argmin(axis=1)

    def decode(self, codewords: Sequence[int]) -> np.ndarray:
        """The decoder ``D``: replace codewords by their output vectors."""
        codewords = np.asarray(codewords, dtype=np.int64)
        if codewords.size and (
            codewords.min() < 0 or codewords.max() >= self.num_codes
        ):
            raise CodecError("codeword outside codebook range")
        return self._codebook[codewords]

    def reconstruction(self, points: np.ndarray) -> np.ndarray:
        """Encode-then-decode: the lossy round trip ``D(C(x))``."""
        return self.decode(self.encode(points))

    def information_loss(self, points: np.ndarray) -> float:
        """Fraction of input vectors that do NOT survive the round trip.

        This is the headline number motivating AVQ: for any codebook
        smaller than the distinct input set, some vectors are unrecoverable.
        """
        points = np.asarray(points, dtype=np.float64)
        recon = self.reconstruction(points)
        damaged = (np.abs(points - recon) > 1e-9).any(axis=1)
        return float(damaged.mean())
