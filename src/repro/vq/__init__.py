"""Conventional (lossy) vector quantization — the Section 2.1 background.

AVQ's pitch is that it avoids two costs of classical VQ: iterative
codebook design (Linde-Buzo-Gray) and codebook search at coding time.
To make that comparison runnable rather than rhetorical, this package
implements the classical machinery:

* :mod:`repro.vq.distortion` — squared-error distortion (Equation 2.1)
* :mod:`repro.vq.lbg` — the Linde-Buzo-Gray iterative codebook algorithm
* :mod:`repro.vq.lossy` — a conventional coder/decoder pair (lossy!)
"""

from repro.vq.distortion import mean_squared_distortion, squared_error
from repro.vq.lbg import LBGResult, lbg_codebook
from repro.vq.lossy import LossyVectorQuantizer

__all__ = [
    "squared_error",
    "mean_squared_distortion",
    "lbg_codebook",
    "LBGResult",
    "LossyVectorQuantizer",
]
