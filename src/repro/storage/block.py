"""Disk-block constants and the block abstraction (Section 3.3).

The paper partitions relations into units of I/O transfer — disk blocks —
and codes each block independently so that decompression is localized.
The evaluation fixes the block size at 8192 bytes; we default to that but
keep it configurable for the block-size ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

__all__ = ["DEFAULT_BLOCK_SIZE", "Block"]

#: The paper's Section 5.2 block size.
DEFAULT_BLOCK_SIZE = 8192


@dataclass(frozen=True)
class Block:
    """One fixed-size disk block: a payload plus slack accounting.

    ``payload`` is the meaningful prefix; the rest of the block (up to
    ``block_size``) is slack the packer tries to minimise.
    """

    payload: bytes
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self):
        if self.block_size < 1:
            raise StorageError(f"block size must be positive, got {self.block_size}")
        if len(self.payload) > self.block_size:
            raise StorageError(
                f"payload of {len(self.payload)} bytes exceeds block size "
                f"{self.block_size}"
            )

    @property
    def used(self) -> int:
        """Meaningful bytes in the block."""
        return len(self.payload)

    @property
    def slack(self) -> int:
        """Unused bytes at the end of the block."""
        return self.block_size - len(self.payload)

    @property
    def utilisation(self) -> float:
        """Fraction of the block occupied by payload."""
        return len(self.payload) / self.block_size

    def padded(self) -> bytes:
        """The full on-disk image: payload followed by zero slack bytes."""
        return self.payload + bytes(self.slack)
