"""Uncompressed fixed-width tuple storage — the "no coding" baseline.

The paper's uncoded comparator stores domain-mapped tuples at their fixed
byte width, packed back-to-back into disk blocks.  Like the coded
relation, the heap file is phi-clustered by default (the paper's Figure
5.8 shows the uncoded relation answering a clustered-attribute query with
far fewer blocks than an unclustered one, so it too is sorted).

Extraction of tuples from a raw block is the paper's ``t3`` — included in
the coded relation's decode time ``t2``, and measured separately here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.runlength import TupleLayout
from repro.errors import StorageError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.disk import SimulatedDisk

__all__ = ["HeapFile"]


class HeapFile:
    """Fixed-width, phi-clustered, uncompressed relation storage.

    Each block holds ``floor(block_size / m)`` tuples of ``m`` bytes,
    preceded by a 2-byte tuple count (blocks at the relation's tail may be
    partially filled).
    """

    _COUNT_BYTES = 2

    def __init__(
        self,
        schema: Schema,
        disk: SimulatedDisk,
        *,
        sort: bool = True,
        min_field_bytes: int = 1,
    ):
        self._schema = schema
        self._disk = disk
        self._layout = TupleLayout(
            schema.domain_sizes, min_field_bytes=min_field_bytes
        )
        self._sort = sort
        self._block_ids: List[int] = []
        self._num_tuples = 0
        capacity = (disk.block_size - self._COUNT_BYTES) // self._layout.tuple_bytes
        if capacity < 1:
            raise StorageError(
                f"block size {disk.block_size} holds no "
                f"{self._layout.tuple_bytes}-byte tuples"
            )
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        relation: Relation,
        disk: SimulatedDisk,
        *,
        sort: bool = True,
        min_field_bytes: int = 1,
    ) -> "HeapFile":
        """Materialise a relation into heap blocks on ``disk``.

        ``min_field_bytes=2`` stores attributes at natural int16-style
        widths — the paper's uncoded layout (see DESIGN.md).
        """
        hf = cls(relation.schema, disk, sort=sort, min_field_bytes=min_field_bytes)
        tuples = relation.sorted_by_phi() if sort else list(relation)
        for start in range(0, len(tuples), hf._capacity):
            hf._write_block(tuples[start : start + hf._capacity])
        hf._num_tuples = len(tuples)
        return hf

    def _write_block(self, tuples: Sequence[Tuple[int, ...]]) -> None:
        payload = len(tuples).to_bytes(self._COUNT_BYTES, "big") + b"".join(
            self._layout.tuple_to_bytes(t) for t in tuples
        )
        self._block_ids.append(self._disk.append_block(payload))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """Schema of the stored relation."""
        return self._schema

    @property
    def num_blocks(self) -> int:
        """Blocks occupied on disk — the uncoded ``N`` denominator."""
        return len(self._block_ids)

    @property
    def num_tuples(self) -> int:
        """Tuples stored."""
        return self._num_tuples

    @property
    def tuples_per_block(self) -> int:
        """Fixed capacity of a full block."""
        return self._capacity

    @property
    def block_ids(self) -> List[int]:
        """Disk block ids, in phi-cluster order."""
        return list(self._block_ids)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def read_block(self, position: int) -> List[Tuple[int, ...]]:
        """Read and extract the tuples of the ``position``-th block.

        The extraction loop is the ``t3`` operation of Section 5.3.2.
        """
        payload = self._disk.read_block(self._block_id_at(position))
        return self.extract(payload)

    def extract(self, payload: bytes) -> List[Tuple[int, ...]]:
        """Parse a raw heap block into tuples (``t3``, no I/O charged)."""
        count = int.from_bytes(payload[: self._COUNT_BYTES], "big")
        m = self._layout.tuple_bytes
        needed = self._COUNT_BYTES + count * m
        if count > self._capacity or len(payload) < needed:
            raise StorageError("corrupt heap block")
        out = []
        pos = self._COUNT_BYTES
        for _ in range(count):
            out.append(self._layout.tuple_from_bytes(payload[pos : pos + m]))
            pos += m
        return out

    def read_block_id(self, block_id: int) -> List[Tuple[int, ...]]:
        """Read and extract a block by its stable disk id."""
        return self.extract(self._disk.read_block(block_id))

    def decode_payload(self, payload: bytes) -> List[Tuple[int, ...]]:
        """Extract a raw block payload (no I/O) — the buffer-pool path."""
        return self.extract(payload)

    def scan(self) -> Iterator[Tuple[int, ...]]:
        """Full relation scan, block by block."""
        for position in range(self.num_blocks):
            yield from self.read_block(position)

    def iter_blocks(self) -> Iterator[Tuple[int, List[Tuple[int, ...]]]]:
        """Yield ``(block_id, tuples)`` for every block, in storage order."""
        for position in range(self.num_blocks):
            yield self._block_ids[position], self.read_block(position)

    def directory(self) -> List[Tuple[int, int]]:
        """``(first_ordinal, block_id)`` per block — primary-index feed.

        Only meaningful for sorted heap files.
        """
        if not self._sort:
            raise StorageError("directory() requires a sorted heap file")
        mapper = self._schema.mapper
        out = []
        for block_id, tuples in self.iter_blocks():
            out.append((mapper.phi(tuples[0]), block_id))
        return out

    def block_of_ordinal(self, ordinal: int) -> Optional[int]:
        """Position of the block that would hold a tuple with this phi value.

        Valid only for sorted heap files (binary search over block minima).
        """
        if not self._sort:
            raise StorageError("block_of_ordinal requires a sorted heap file")
        if not self._block_ids:
            return None
        lo, hi = 0, self.num_blocks - 1
        mapper = self._schema.mapper
        while lo < hi:
            mid = (lo + hi + 1) // 2
            first = self.read_block(mid)[0]
            if mapper.phi(first) <= ordinal:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _block_id_at(self, position: int) -> int:
        try:
            return self._block_ids[position]
        except IndexError:
            raise StorageError(
                f"heap file has {self.num_blocks} blocks, no position {position}"
            )
