"""An LRU buffer pool over the simulated disk.

Database engines never read blocks straight off the disk for every
access; a buffer pool absorbs re-reads.  The pool is deliberately simple
— block-id keyed, LRU eviction, hit/miss counters — because the paper's
response-time experiments assume cold reads (every block access costs
``t1``); the pool exists so the query engine is honest about when a block
access is a *repeat* access, and so examples can show the warm-cache
behaviour of a compressed relation (more tuples per cached block means a
higher tuple hit rate for the same pool size).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Hit/miss counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total get() calls served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without disk I/O."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """Fixed-capacity LRU cache of raw block payloads."""

    def __init__(self, disk: SimulatedDisk, capacity: int):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self._disk = disk
        self._capacity = capacity
        self._frames: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        """Maximum blocks held."""
        return self._capacity

    @property
    def resident(self) -> int:
        """Blocks currently cached."""
        return len(self._frames)

    def get(self, block_id: int) -> bytes:
        """Return a block's payload, reading from disk only on a miss."""
        cached = self._frames.get(block_id)
        if cached is not None:
            self._frames.move_to_end(block_id)
            self.stats.hits += 1
            return cached
        payload = self._disk.read_block(block_id)
        self.stats.misses += 1
        self._frames[block_id] = payload
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        return payload

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the pool (after it was rewritten on disk)."""
        self._frames.pop(block_id, None)

    def clear(self) -> None:
        """Empty the pool (counters are kept; use ``stats.reset()``)."""
        self._frames.clear()
