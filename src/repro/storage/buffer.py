"""An LRU buffer pool over the simulated disk, plus a decoded-block cache.

Database engines never read blocks straight off the disk for every
access; a buffer pool absorbs re-reads.  The pool is deliberately simple
— block-id keyed, LRU eviction, hit/miss counters — because the paper's
response-time experiments assume cold reads (every block access costs
``t1``); the pool exists so the query engine is honest about when a block
access is a *repeat* access, and so examples can show the warm-cache
behaviour of a compressed relation (more tuples per cached block means a
higher tuple hit rate for the same pool size).

For a *compressed* relation a repeat access still pays the decode cost
``t2`` even when the raw payload is resident.  :class:`DecodedBlockCache`
layers a second LRU on top of the pool, keyed by the same disk block id
but holding the **decoded tuples**, so repeated point and range lookups
skip RLE decoding entirely.  The layering keeps invalidation honest: a
block rewritten on disk (Section 4.2 mutation, block split, compaction)
is invalidated through :meth:`BufferPool.invalidate`, and the pool
cascades the drop to every attached decoded cache — a stale payload and
a stale decode are the same bug.

Both caches are **latched**: one shared reentrant lock per pool (adopted
by every attached decoded cache) serializes LRU reordering, eviction,
and stats updates, so the concurrent serving layer's reader threads
(:mod:`repro.server`) can share a pool without corrupting eviction
state or double-counting stats.  The latch is deliberately coarse — a
single lock covering pool and caches — because the alternative (a lock
per layer) deadlocks on the invalidation cascade: a decoded-cache get
takes cache-then-pool while an invalidate takes pool-then-cache.
Single-threaded callers pay one uncontended RLock acquire per access.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import StorageError
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass
from repro.storage.disk import SimulatedDisk

if TYPE_CHECKING:  # circular at type level only
    from repro.storage.integrity import QuarantineSet

__all__ = ["BufferPool", "BufferStats", "DecodedBlockCache"]

#: Type of the payload -> tuples decoder a decoded cache runs on a miss.
Decoder = Callable[[bytes], List[Tuple[int, ...]]]

#: Type of the integrity check a pool runs on every payload it admits:
#: ``(block_id, payload)``, raising
#: :class:`~repro.errors.CorruptionError` on damage.
Verifier = Callable[[int, bytes], None]


@dataclass
class BufferStats:
    """Hit/miss counters for a buffer pool and its decoded-block cache.

    ``hits``/``misses`` count raw-payload accesses through
    :meth:`BufferPool.get`; the ``decoded_*`` counters count tuple-level
    accesses through :meth:`DecodedBlockCache.get`.  Eviction counters
    are *lifetime* tallies of cache churn: :meth:`reset` zeroes the
    hit/miss window but deliberately leaves them standing, so a caller
    that resets between measurement phases still sees how much eviction
    pressure the whole run generated.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    decoded_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total raw-payload get() calls served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without disk I/O (0.0 when fresh)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def decoded_accesses(self) -> int:
        """Total decoded-block get() calls served."""
        return self.decoded_hits + self.decoded_misses

    @property
    def decoded_hit_rate(self) -> float:
        """Fraction of accesses served without decoding (0.0 when fresh)."""
        if self.decoded_accesses == 0:
            return 0.0
        return self.decoded_hits / self.decoded_accesses

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """All counters plus derived rates, under stable keys.

        The derived ``hit_rate``/``decoded_hit_rate`` are included so a
        snapshot taken right after :meth:`reset` reads 0.0 — never a
        division error — and exporters need no recomputation.
        """
        out = snapshot_dataclass(self)
        out["hit_rate"] = self.hit_rate
        out["decoded_hit_rate"] = self.decoded_hit_rate
        return out

    def reset(self) -> None:
        """Zero the hit/miss window; eviction counts survive.

        Evictions measure lifetime cache pressure, not a per-phase rate —
        zeroing them with the window would silently understate churn in
        any experiment that resets between warm-up and measurement.
        """
        self.hits = 0
        self.misses = 0
        self.decoded_hits = 0
        self.decoded_misses = 0


class BufferPool:
    """Fixed-capacity LRU cache of raw block payloads."""

    def __init__(self, disk: SimulatedDisk, capacity: int):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self._disk = disk
        self._capacity = capacity
        self._frames: "OrderedDict[int, bytes]" = OrderedDict()
        self._decoded_caches: List["DecodedBlockCache"] = []
        self._verifier: Optional[Verifier] = None
        self._quarantine: Optional["QuarantineSet"] = None
        #: One latch for the pool *and* every attached decoded cache —
        #: see the module docstring for why it must be shared.  The
        #: serving layer's shared-structure inventory (docs/SERVING.md)
        #: lists this latch alongside the R010 module-level registry.
        self._latch = threading.RLock()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        """Maximum blocks held."""
        return self._capacity

    @property
    def resident(self) -> int:
        """Blocks currently cached."""
        return len(self._frames)

    @property
    def latch(self) -> "threading.RLock":
        """The shared pool/decoded-cache lock (reentrant).

        Exposed so callers that need a multi-step atomic view (the
        hammer tests, the serving layer's stats snapshots) can hold it
        across several reads.
        """
        return self._latch

    def get(self, block_id: int) -> bytes:
        """Return a block's payload, reading from disk only on a miss.

        A quarantined block is refused outright — even on a cache hit,
        because a block quarantined *after* being cached may hold the
        pre-corruption payload, and serving it would mask the fault the
        quarantine exists to surface.  Freshly read payloads run through
        the attached verifier before being cached, so a corrupt payload
        is never admitted to a frame.
        """
        with self._latch:
            self.check_quarantine(block_id)
            reg = _obs.REGISTRY
            cached = self._frames.get(block_id)
            if cached is not None:
                self._frames.move_to_end(block_id)
                self.stats.hits += 1
                if reg is not None:
                    reg.inc("buffer.hits")
                return cached
            payload = self._disk.read_block(block_id)
            if self._verifier is not None:
                self._verifier(block_id, payload)
            self.stats.misses += 1
            if reg is not None:
                reg.inc("buffer.misses")
            self._frames[block_id] = payload
            if len(self._frames) > self._capacity:
                self._frames.popitem(last=False)
                self.stats.evictions += 1
                if reg is not None:
                    reg.inc("buffer.evictions")
            return payload

    def attach_verifier(self, verifier: Verifier) -> None:
        """Run ``verifier(block_id, payload)`` on every payload admitted.

        :class:`~repro.db.table.Table` attaches the storage file's
        checksum check here, so a rotted payload raises
        :class:`~repro.errors.CorruptionError` at the pool boundary
        instead of decoding into garbage downstream.
        """
        self._verifier = verifier

    def attach_quarantine(self, quarantine: "QuarantineSet") -> None:
        """Refuse quarantined block ids on every :meth:`get`.

        Attaching also has no retroactive effect on resident frames —
        the integrity layer invalidates a block when it quarantines it.
        """
        self._quarantine = quarantine

    def check_quarantine(self, block_id: int) -> None:
        """Raise :class:`~repro.errors.QuarantinedBlockError` if barred.

        A no-op when no quarantine set is attached.  The decoded-block
        cache calls this on its own hits, which never touch the pool.
        """
        if self._quarantine is not None:
            self._quarantine.check(block_id)

    def attach_decoded_cache(self, cache: "DecodedBlockCache") -> None:
        """Register a decoded cache for invalidation cascade.

        Called by :class:`DecodedBlockCache` itself; after attachment,
        :meth:`invalidate` and :meth:`clear` also drop the corresponding
        decoded entries — a rewritten payload makes the decode stale too.
        """
        with self._latch:
            if cache not in self._decoded_caches:
                self._decoded_caches.append(cache)

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the pool (after it was rewritten on disk).

        Cascades to every attached decoded cache: the decoded tuples of a
        rewritten block are exactly as stale as its payload.
        """
        with self._latch:
            self._frames.pop(block_id, None)
            for cache in self._decoded_caches:
                cache.drop(block_id)

    def clear(self) -> None:
        """Empty the pool and attached decoded caches (counters are kept;
        use ``stats.reset()``)."""
        with self._latch:
            self._frames.clear()
            for cache in self._decoded_caches:
                cache.drop_all()


class DecodedBlockCache:
    """Fixed-capacity LRU cache of *decoded* blocks over a buffer pool.

    Keyed by disk block id, like the pool underneath.  A hit returns the
    cached tuple list with no I/O and no decode; a miss fetches the
    payload through the pool (which may itself hit or miss) and decodes
    it once.  Counters live on the shared ``pool.stats`` so one object
    tells the whole caching story.

    The cache registers itself with the pool, so the pool's
    ``invalidate``/``clear`` — the calls every Section 4.2 mutation path
    already makes — keep it consistent for free.

    Callers must treat returned lists as immutable: the same list object
    is handed to every hit.
    """

    def __init__(
        self, pool: BufferPool, capacity: int, decoder: Decoder
    ) -> None:
        if capacity < 1:
            raise StorageError(
                f"decoded cache capacity must be >= 1, got {capacity}"
            )
        self._pool = pool
        self._capacity = capacity
        self._decoder = decoder
        self._frames: "OrderedDict[int, List[Tuple[int, ...]]]" = OrderedDict()
        # Adopt the pool's latch rather than owning one: a get here takes
        # cache-then-pool while an invalidate takes pool-then-cache, so
        # two locks would deadlock (see module docstring).
        self._latch = pool.latch
        pool.attach_decoded_cache(self)

    @property
    def pool(self) -> BufferPool:
        """The raw-payload pool underneath."""
        return self._pool

    @property
    def capacity(self) -> int:
        """Maximum decoded blocks held."""
        return self._capacity

    @property
    def resident(self) -> int:
        """Decoded blocks currently cached."""
        return len(self._frames)

    @property
    def stats(self) -> BufferStats:
        """The shared counters (same object as ``pool.stats``)."""
        return self._pool.stats

    def get(self, block_id: int) -> List[Tuple[int, ...]]:
        """Return a block's decoded tuples, decoding only on a miss."""
        with self._latch:
            self._pool.check_quarantine(block_id)
            reg = _obs.REGISTRY
            cached = self._frames.get(block_id)
            if cached is not None:
                self._frames.move_to_end(block_id)
                self.stats.decoded_hits += 1
                if reg is not None:
                    reg.inc("cache.decoded_hits")
                return cached
            tuples = self._decoder(self._pool.get(block_id))
            self.stats.decoded_misses += 1
            if reg is not None:
                reg.inc("cache.decoded_misses")
            self._frames[block_id] = tuples
            if len(self._frames) > self._capacity:
                self._frames.popitem(last=False)
                self.stats.decoded_evictions += 1
                if reg is not None:
                    reg.inc("cache.decoded_evictions")
            return tuples

    def peek(self, block_id: int) -> Optional[List[Tuple[int, ...]]]:
        """The cached decode of a block, or ``None`` — never decodes.

        Point probes use this to exploit a warm cache without forcing a
        full block decode on a cold one (the early-exit difference-stream
        probe is cheaper than decoding when the block is cold).
        """
        with self._latch:
            self._pool.check_quarantine(block_id)
            cached = self._frames.get(block_id)
            if cached is not None:
                self._frames.move_to_end(block_id)
                self.stats.decoded_hits += 1
                reg = _obs.REGISTRY
                if reg is not None:
                    reg.inc("cache.decoded_hits")
            return cached

    def drop(self, block_id: int) -> None:
        """Forget one block's decode (no-op if absent)."""
        with self._latch:
            self._frames.pop(block_id, None)

    def drop_all(self) -> None:
        """Forget every decode (counters are kept; use ``stats.reset()``)."""
        with self._latch:
            self._frames.clear()
