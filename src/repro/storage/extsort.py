"""External merge sort and bounded-memory bulk loading.

The Section 3.2 re-ordering sorts the *whole relation* by phi — trivial
in memory at paper scale, but a real deployment loads relations larger
than RAM.  This module supplies the standard solution:

* :func:`external_sort_ordinals` — run formation (sort chunks of at most
  ``memory_budget`` ordinals) with runs spilled to the simulated disk as
  fixed-width blocks, then a k-way heap merge streaming the sorted
  sequence back;
* :func:`bulk_load` — sort externally, then stream the sorted ordinals
  straight through the packer/codec into a fresh
  :class:`~repro.storage.avqfile.AVQFile`, never holding more than one
  run buffer plus one output block in memory.

Spill I/O is charged to the disk like any other block access, so the
cost of loading shows up in the stats — a real bulk load pays it too.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional

from repro.core.bitutils import byte_width
from repro.core.codec import BlockCodec
from repro.errors import StorageError
from repro.relational.schema import Schema
from repro.storage.avqfile import AVQFile
from repro.storage.disk import SimulatedDisk

__all__ = ["PARALLEL_BATCH_RUNS", "external_sort_ordinals", "bulk_load"]


class _RunWriter:
    """Spills one sorted run to the disk as fixed-width ordinal blocks."""

    def __init__(self, disk: SimulatedDisk, ordinal_bytes: int):
        self._disk = disk
        self._width = ordinal_bytes
        self._per_block = max(1, disk.block_size // ordinal_bytes)
        self.block_ids: List[int] = []
        self.count = 0

    def write_run(self, ordinals: List[int]) -> None:
        for start in range(0, len(ordinals), self._per_block):
            chunk = ordinals[start : start + self._per_block]
            payload = b"".join(
                o.to_bytes(self._width, "big") for o in chunk
            )
            self.block_ids.append(self._disk.append_block(payload))
            self.count += len(chunk)


def _read_run(
    disk: SimulatedDisk, block_ids: List[int], ordinal_bytes: int
) -> Iterator[int]:
    """Stream a spilled run back, one block in memory at a time."""
    for block_id in block_ids:
        payload = disk.read_block(block_id)
        for start in range(0, len(payload), ordinal_bytes):
            chunk = payload[start : start + ordinal_bytes]
            if len(chunk) == ordinal_bytes:
                yield int.from_bytes(chunk, "big")


def external_sort_ordinals(
    ordinals: Iterable[int],
    *,
    memory_budget: int,
    spill_disk: SimulatedDisk,
    max_ordinal: int,
) -> Iterator[int]:
    """Sort an ordinal stream using at most ``memory_budget`` in memory.

    ``max_ordinal`` sizes the fixed-width spill encoding (pass
    ``mapper.space_size - 1``).  Small inputs never spill; large inputs
    form ceil(n / budget) runs and heap-merge them.
    """
    if memory_budget < 1:
        raise StorageError(f"memory budget must be >= 1, got {memory_budget}")
    width = byte_width(max_ordinal)

    runs: List[List[int]] = []  # spilled run block-id lists
    writer_width = width
    buffer: List[int] = []

    def spill():
        buffer.sort()
        writer = _RunWriter(spill_disk, writer_width)
        writer.write_run(buffer)
        runs.append(writer.block_ids)
        buffer.clear()

    for o in ordinals:
        if o < 0 or o > max_ordinal:
            raise StorageError(f"ordinal {o} outside [0, {max_ordinal}]")
        buffer.append(o)
        if len(buffer) >= memory_budget:
            spill()

    if not runs:
        buffer.sort()
        yield from buffer
        return
    if buffer:
        spill()

    streams = [_read_run(spill_disk, ids, writer_width) for ids in runs]
    yield from heapq.merge(*streams)


#: Runs buffered per parallel encode batch during bulk load.  The batch
#: is the memory ceiling of the parallel path (at most this many packed
#: runs held decoded at once) and the unit handed to the worker pool.
PARALLEL_BATCH_RUNS = 64


def bulk_load(
    schema: Schema,
    tuples: Iterable,
    data_disk: SimulatedDisk,
    *,
    memory_budget: int = 100_000,
    spill_disk: Optional[SimulatedDisk] = None,
    codec: Optional[BlockCodec] = None,
    workers: Optional[int] = None,
) -> AVQFile:
    """Build an AVQ file from a tuple stream with bounded memory.

    ``tuples`` may be any iterable of ordinal tuples (a generator reading
    a source file, for instance).  Sorting spills to ``spill_disk`` (its
    own scratch disk by default), and the phi-sorted stream is packed and
    coded block by block onto ``data_disk``.

    ``workers`` fans block coding out to a process pool
    (:mod:`repro.core.parallel`): runs are buffered in batches of
    :data:`PARALLEL_BATCH_RUNS` and encoded together, keeping memory
    bounded while the pool stays busy.  ``None`` keeps the serial
    one-run-at-a-time path; ``0`` uses every core.  Written blocks are
    byte-identical in all modes.
    """
    codec = codec or BlockCodec(schema.domain_sizes)
    if codec.mapper.domain_sizes != schema.domain_sizes:
        raise StorageError("codec domain sizes do not match the schema")
    if not codec.chained:
        raise StorageError(
            "bulk loading requires the chained codec (incremental sizing)"
        )
    if spill_disk is None:
        spill_disk = SimulatedDisk(block_size=data_disk.block_size)

    mapper = schema.mapper

    def ordinal_stream():
        for t in tuples:
            yield mapper.phi(t)

    sorted_ordinals = external_sort_ordinals(
        ordinal_stream(),
        memory_budget=memory_budget,
        spill_disk=spill_disk,
        max_ordinal=mapper.space_size - 1,
    )

    out = AVQFile(schema, data_disk, codec=codec)
    min_block = 4 + codec.tuple_bytes  # header + representative
    block_size = data_disk.block_size
    if block_size < min_block:
        raise StorageError(
            f"block size {block_size} cannot hold even one tuple"
        )

    if workers is None:
        current: List[int] = []
        current_size = 0
        for ordinal in sorted_ordinals:
            if not current:
                current = [ordinal]
                current_size = min_block
                continue
            cost = codec.incremental_gap_cost(ordinal - current[-1])
            if current_size + cost <= block_size:
                current.append(ordinal)
                current_size += cost
            else:
                out._append_run(current)
                current = [ordinal]
                current_size = min_block
        if current:
            out._append_run(current)
        return out

    from repro.core.parallel import ParallelBlockCodec

    with ParallelBlockCodec(codec, workers=workers) as pcodec:
        batch: List[List[int]] = []

        def flush() -> None:
            payloads = pcodec.encode_blocks(batch, capacity=block_size)
            for run, payload in zip(batch, payloads):
                out._append_encoded(run, payload)
            batch.clear()

        run_buf: List[int] = []
        run_size = 0
        for ordinal in sorted_ordinals:
            if not run_buf:
                run_buf = [ordinal]
                run_size = min_block
                continue
            cost = codec.incremental_gap_cost(ordinal - run_buf[-1])
            if run_size + cost <= block_size:
                run_buf.append(ordinal)
                run_size += cost
            else:
                batch.append(run_buf)
                if len(batch) >= PARALLEL_BATCH_RUNS:
                    flush()
                run_buf = [ordinal]
                run_size = min_block
        if run_buf:
            batch.append(run_buf)
        if batch:
            flush()
    return out
