"""Block-version MVCC: snapshot-isolation reads over one AVQ file.

The serving layer (:mod:`repro.server`) runs many concurrent readers
against a table a single writer is mutating.  Readers must never see a
*mixed* state — half the blocks from before a mutation and half from
after — so reads happen against **snapshots**: a frozen block directory
plus, per block, the payload that was committed when the snapshot was
taken.

The scheme is copy-before-write at block granularity, sequenced by a
**commit sequence number** (csn):

* The writer, before overwriting a block, *stashes* the committed
  payload here as an **open** version (:meth:`BlockVersionStore.stash`).
* At each commit boundary — transaction commit or abort on a durable
  table, every top-level mutation otherwise — the writer *publishes*
  (:meth:`publish`): open versions are sealed with ``death_csn = csn+1``,
  the csn advances, and the committed directory is replaced.  A version
  sealed with death csn ``D`` is the payload visible to every snapshot
  ``S < D``.
* A reader takes a :meth:`snapshot` — the current csn plus the committed
  directory, pinned against garbage collection — and resolves each block
  through :meth:`read`: the oldest stashed version that outlives the
  snapshot wins; with none, the block has not been rewritten since the
  snapshot and the *current* payload (read through the caller's latched
  buffer pool) is the right one.

Block ids make this safe: :class:`~repro.storage.disk.SimulatedDisk`
allocates ids monotonically and never reuses them, so a block id in a
stale directory always denotes the block the snapshot meant.

:meth:`read` is deliberately race-tolerant.  The fallback disk read runs
*outside* the store lock (serialising simulated I/O under it would
flatten reader concurrency), so a writer may stash-and-overwrite while
the fallback is in flight.  The reader re-checks the stash afterwards
and prefers it: the stash is written before the overwrite, so a reader
that saw no stash on the re-check is guaranteed its fallback bytes
pre-date any overwrite.

Everything here is latched; the store is shared by one writer and any
number of reader threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs import runtime as _obs

__all__ = ["BlockVersionStore", "SnapshotHandle", "VersionStoreStats"]

#: One directory entry: ``(block_id, first_ordinal, last_ordinal, count)``
#: — the shape :meth:`AVQFile.directory_entries` produces.
DirectoryEntry = Tuple[int, int, int, int]


@dataclass
class _Version:
    """One stashed pre-image of a block.

    ``death_csn is None`` while open (the current on-disk payload is an
    uncommitted overwrite); sealed to the publishing csn, after which the
    payload serves every snapshot ``S < death_csn``.
    """

    payload: bytes
    death_csn: Optional[int] = None


@dataclass
class VersionStoreStats:
    """Counters for stash/publish/read traffic (monotonic)."""

    stashed: int = 0
    published: int = 0
    snapshots_taken: int = 0
    reads_from_stash: int = 0
    reads_from_current: int = 0
    versions_pruned: int = 0


@dataclass(frozen=True)
class SnapshotHandle:
    """A pinned snapshot: csn plus the directory committed at that csn.

    Obtained from :meth:`BlockVersionStore.snapshot`; must be passed back
    to :meth:`BlockVersionStore.release` (the db layer's
    ``TableSnapshot`` wraps that in a context manager).
    """

    csn: int
    directory: Tuple[DirectoryEntry, ...]


class BlockVersionStore:
    """Latched store of superseded block payloads, keyed by block id."""

    def __init__(self, directory: List[DirectoryEntry]):
        self._lock = threading.RLock()
        self._csn = 0
        self._versions: Dict[int, List[_Version]] = {}
        self._committed: Tuple[DirectoryEntry, ...] = tuple(directory)
        #: csn -> number of unreleased snapshots pinned at it.
        self._pinned: Dict[int, int] = {}
        self.stats = VersionStoreStats()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    @property
    def csn(self) -> int:
        """The current commit sequence number."""
        with self._lock:
            return self._csn

    def committed_directory(self) -> Tuple[DirectoryEntry, ...]:
        """The directory as of the last publish."""
        with self._lock:
            return self._committed

    def stash(self, block_id: int, loader: Callable[[], bytes]) -> bool:
        """Preserve a block's committed payload before it is overwritten.

        ``loader`` is invoked (under the store lock, before the caller's
        overwrite) only when the block has no open version yet — a block
        rewritten twice in one transaction keeps its first pre-image,
        which is the committed one.  Returns whether a version was
        actually stashed.
        """
        with self._lock:
            chain = self._versions.setdefault(block_id, [])
            if chain and chain[-1].death_csn is None:
                return False  # already preserved for this epoch
            chain.append(_Version(payload=loader()))
            self.stats.stashed += 1
            reg = _obs.REGISTRY
            if reg is not None:
                reg.inc("mvcc.stashed")
            return True

    def publish(self, directory: List[DirectoryEntry]) -> int:
        """Commit boundary: seal open versions and adopt ``directory``.

        Advances the csn only when something actually changed (an open
        version exists, or the directory differs) — a no-op mutation
        creates no new epoch for readers to distinguish.  Returns the
        csn current after the call.
        """
        with self._lock:
            entries = tuple(directory)
            open_versions = [
                chain[-1]
                for chain in self._versions.values()
                if chain and chain[-1].death_csn is None
            ]
            if not open_versions and entries == self._committed:
                return self._csn
            self._csn += 1
            for version in open_versions:
                version.death_csn = self._csn
            self._committed = entries
            self.stats.published += 1
            reg = _obs.REGISTRY
            if reg is not None:
                reg.inc("mvcc.published")
                reg.set_gauge("mvcc.csn", float(self._csn))
            self._prune_locked()
            return self._csn

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def snapshot(self) -> SnapshotHandle:
        """Pin the current committed state and return its handle."""
        with self._lock:
            self._pinned[self._csn] = self._pinned.get(self._csn, 0) + 1
            self.stats.snapshots_taken += 1
            reg = _obs.REGISTRY
            if reg is not None:
                reg.inc("mvcc.snapshots")
                reg.set_gauge("mvcc.pinned", float(self.pinned_snapshots))
            return SnapshotHandle(csn=self._csn, directory=self._committed)

    def release(self, handle: SnapshotHandle) -> None:
        """Unpin a snapshot; versions nobody can see any more are pruned."""
        with self._lock:
            count = self._pinned.get(handle.csn)
            if count is None:
                raise StorageError(
                    f"snapshot at csn {handle.csn} is not pinned"
                )
            if count == 1:
                del self._pinned[handle.csn]
            else:
                self._pinned[handle.csn] = count - 1
            self._prune_locked()
            reg = _obs.REGISTRY
            if reg is not None:
                reg.set_gauge("mvcc.pinned", float(self.pinned_snapshots))

    def read(
        self,
        block_id: int,
        snapshot_csn: int,
        fallback: Callable[[], bytes],
    ) -> bytes:
        """The payload of ``block_id`` as of ``snapshot_csn``.

        Resolution order: stashed version outliving the snapshot, else
        the current payload via ``fallback`` (the caller's latched
        pool/disk read), re-checking the stash afterwards to close the
        read-vs-overwrite race described in the module docstring.
        """
        with self._lock:
            payload = self._visible_locked(block_id, snapshot_csn)
            if payload is not None:
                self._count_read(from_stash=True)
                return payload
        current = fallback()
        with self._lock:
            payload = self._visible_locked(block_id, snapshot_csn)
            if payload is not None:
                self._count_read(from_stash=True)
                return payload
            self._count_read(from_stash=False)
            return current

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version_count(self) -> int:
        """Stashed payloads currently retained."""
        with self._lock:
            return sum(len(chain) for chain in self._versions.values())

    @property
    def pinned_snapshots(self) -> int:
        """Unreleased snapshots across all csns."""
        return sum(self._pinned.values())

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------

    def _visible_locked(
        self, block_id: int, snapshot_csn: int
    ) -> Optional[bytes]:
        chain = self._versions.get(block_id)
        if not chain:
            return None
        for version in chain:  # oldest first; deaths ascend
            if version.death_csn is None or version.death_csn > snapshot_csn:
                return version.payload
        return None

    def _count_read(self, *, from_stash: bool) -> None:
        if from_stash:
            self.stats.reads_from_stash += 1
        else:
            self.stats.reads_from_current += 1

    def _prune_locked(self) -> None:
        """Drop versions no live or future snapshot can see.

        A version sealed at death csn ``D`` serves snapshots ``S < D``;
        once every pinned snapshot (and the current csn, which is where
        new snapshots start) is ``>= D``, it is garbage.
        """
        floor = min(self._pinned, default=self._csn)
        floor = min(floor, self._csn)
        dead_keys: List[int] = []
        for block_id, chain in self._versions.items():
            kept = [
                v
                for v in chain
                if v.death_csn is None or v.death_csn > floor
            ]
            pruned = len(chain) - len(kept)
            if pruned:
                self.stats.versions_pruned += pruned
                if kept:
                    self._versions[block_id] = kept
                else:
                    dead_keys.append(block_id)
        for block_id in dead_keys:
            del self._versions[block_id]
