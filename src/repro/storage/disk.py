"""A simulated disk with the Section 5.3.2 timing model.

The paper estimates the per-block I/O time ``t1`` analytically from the
Katz/Gibson/Patterson component costs:

    seek (10-20 ms) + rotational delay (8 ms) + transfer (block/3 MB/s)
    + controller overhead (2 ms)  ~  30 ms for an 8192-byte block.

:class:`DiskModel` reproduces that arithmetic; :class:`SimulatedDisk`
stores blocks in memory, charges the model's time for every access, and
keeps the counters (blocks read/written, simulated milliseconds) that the
response-time experiments report.

The substitution note from DESIGN.md applies: the paper never measures a
physical disk either — its ``N * t1`` terms come from exactly this model,
so using it preserves the experiment's structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import ReadFault, StorageError
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass
from repro.storage.block import DEFAULT_BLOCK_SIZE

__all__ = ["DiskModel", "SimulatedDisk", "DiskStats"]

#: Bytes per "Mb" in the paper's 3 Mb/sec transfer figure.  The paper's
#: arithmetic (8192 b / 3 Mb -> ~2.7 ms, for a ~30 ms total) treats the rate
#: as megabytes per second.
_MEGABYTE = 10**6


@dataclass(frozen=True)
class DiskModel:
    """Analytic per-block I/O cost (Section 5.3.2 constants by default)."""

    seek_ms: float = 20.0
    rotational_ms: float = 8.0
    transfer_mb_per_s: float = 3.0
    controller_ms: float = 2.0

    def __post_init__(self):
        if self.transfer_mb_per_s <= 0:
            raise StorageError("transfer rate must be positive")
        if min(self.seek_ms, self.rotational_ms, self.controller_ms) < 0:
            raise StorageError("time components must be non-negative")

    def transfer_ms(self, nbytes: int) -> float:
        """Data transfer time for ``nbytes`` at the configured rate."""
        return nbytes / (self.transfer_mb_per_s * _MEGABYTE) * 1000.0

    def block_io_ms(self, block_size: int = DEFAULT_BLOCK_SIZE) -> float:
        """``t1``: total time for one random block read or write.

        With the paper's defaults and an 8192-byte block this is
        ~32.7 ms, which the paper rounds to 30 ms; :mod:`repro.perf`
        exposes both the computed and the paper's rounded figure.
        """
        return (
            self.seek_ms
            + self.rotational_ms
            + self.transfer_ms(block_size)
            + self.controller_ms
        )


@dataclass
class DiskStats:
    """Access counters accumulated by :class:`SimulatedDisk`.

    Implements the :class:`~repro.obs.snapshot.StatsSnapshot` protocol:
    ``as_dict()`` exposes every field under a stable key set, and the
    instrumented read/write paths mirror each increment into the global
    :mod:`repro.obs` registry (``disk.*`` metrics) when it is enabled.
    """

    blocks_read: int = 0
    blocks_written: int = 0
    elapsed_ms: float = 0.0
    read_retries: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """All counters as one flat mapping (key-stable; see tests)."""
        return snapshot_dataclass(self)

    def reset(self) -> None:
        """Zero all counters."""
        self.blocks_read = 0
        self.blocks_written = 0
        self.elapsed_ms = 0.0
        self.read_retries = 0
        self.bytes_read = 0
        self.bytes_written = 0


class SimulatedDisk:
    """In-memory block store that charges :class:`DiskModel` time per access.

    Blocks are fixed-size and addressed by integer id.  Reads of never-
    written blocks are storage errors — in a database that is a corruption
    bug, not an empty result.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        model: Optional[DiskModel] = None,
        *,
        read_retry_limit: int = 0,
        retry_backoff_ms: float = 5.0,
    ):
        if block_size < 1:
            raise StorageError(f"block size must be positive, got {block_size}")
        if read_retry_limit < 0:
            raise StorageError(
                f"read retry limit must be >= 0, got {read_retry_limit}"
            )
        if retry_backoff_ms < 0:
            raise StorageError(
                f"retry backoff must be >= 0 ms, got {retry_backoff_ms}"
            )
        self._block_size = block_size
        self._model = model or DiskModel()
        self._blocks: Dict[int, bytes] = {}
        self._next_id = 0
        self._read_retry_limit = read_retry_limit
        self._retry_backoff_ms = retry_backoff_ms
        self.stats = DiskStats()

    @property
    def block_size(self) -> int:
        """Fixed size of every block on this disk."""
        return self._block_size

    @property
    def model(self) -> DiskModel:
        """The timing model charged on every access."""
        return self._model

    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks."""
        return self._next_id

    def allocate(self) -> int:
        """Reserve a new block id (no I/O charged until it is written)."""
        block_id = self._next_id
        self._next_id += 1
        return block_id

    def write_block(self, block_id: int, payload: bytes) -> None:
        """Write one block; payload must fit the block size."""
        if not 0 <= block_id < self._next_id:
            raise StorageError(f"write to unallocated block {block_id}")
        if len(payload) > self._block_size:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds block size "
                f"{self._block_size}"
            )
        io_ms = self._model.block_io_ms(self._block_size)
        self.stats.blocks_written += 1
        self.stats.bytes_written += len(payload)
        self.stats.elapsed_ms += io_ms
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("disk.blocks_written")
            reg.inc("disk.bytes_written", len(payload))
            reg.observe("disk.write_io_ms", io_ms)
        self._store_block(block_id, payload)

    def _store_block(self, block_id: int, payload: bytes) -> None:
        """Persist an already-validated payload.

        The single point where bytes actually land in the store —
        :class:`~repro.storage.faults.FaultyDisk` overrides this to tear
        or drop the write, so validation and accounting above stay in
        one place.
        """
        self._blocks[block_id] = payload

    @property
    def read_retry_limit(self) -> int:
        """Retries granted to a faulting read before it escapes."""
        return self._read_retry_limit

    @property
    def retry_backoff_ms(self) -> float:
        """Base backoff charged per retry (linear: attempt × base)."""
        return self._retry_backoff_ms

    def read_block(self, block_id: int) -> bytes:
        """Read one block, charging one ``t1`` of simulated time.

        A :class:`~repro.errors.ReadFault` from the medium (injected by
        :class:`~repro.storage.faults.FaultyDisk`) is retried up to
        ``read_retry_limit`` times with linear backoff — each retry
        charges ``attempt × retry_backoff_ms`` of simulated time, the
        way a controller re-seeks and waits before the next attempt.
        Only when the budget is exhausted does the fault escape.
        """
        attempt = 0
        while True:
            try:
                return self._read_attempt(block_id)
            except ReadFault:
                attempt += 1
                if attempt > self._read_retry_limit:
                    raise
                self.stats.read_retries += 1
                self.stats.elapsed_ms += self._retry_backoff_ms * attempt
                reg = _obs.REGISTRY
                if reg is not None:
                    reg.inc("disk.read_retries")

    def _read_attempt(self, block_id: int) -> bytes:
        """One read attempt.

        The single point where bytes leave the store —
        :class:`~repro.storage.faults.FaultyDisk` overrides this to
        consult the injector, so the retry loop above stays in one
        place.
        """
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise StorageError(f"read of unwritten block {block_id}")
        io_ms = self._model.block_io_ms(self._block_size)
        self.stats.blocks_read += 1
        self.stats.bytes_read += len(payload)
        self.stats.elapsed_ms += io_ms
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("disk.blocks_read")
            reg.inc("disk.bytes_read", len(payload))
            reg.observe("disk.read_io_ms", io_ms)
        return payload

    def corrupt_stored(self, block_id: int, bit_index: int) -> None:
        """Flip one bit of a stored payload in place — bit rot at rest.

        This is entropy, not I/O: no time is charged and no counters
        move, exactly as a cosmic ray would.  The scrub/fsck test
        harness sweeps ``bit_index`` exhaustively to prove detection
        coverage (docs/INTEGRITY.md).
        """
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise StorageError(f"cannot corrupt unwritten block {block_id}")
        if not 0 <= bit_index < len(payload) * 8:
            raise StorageError(
                f"bit {bit_index} out of range for a "
                f"{len(payload)}-byte payload"
            )
        mutated = bytearray(payload)
        mutated[bit_index // 8] ^= 1 << (bit_index % 8)
        self._blocks[block_id] = bytes(mutated)

    def stored_size(self, block_id: int) -> int:
        """Bytes currently stored in a block (no I/O charged)."""
        try:
            return len(self._blocks[block_id])
        except KeyError:
            raise StorageError(f"no stored payload for block {block_id}")

    def append_block(self, payload: bytes) -> int:
        """Allocate and write in one step; returns the new block id."""
        block_id = self.allocate()
        self.write_block(block_id, payload)
        return block_id

    def block_ids(self) -> List[int]:
        """Ids of all written blocks, ascending."""
        return sorted(self._blocks)
