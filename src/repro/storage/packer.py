"""Block partitioning with minimal slack (Sections 3.3 and 3.4).

The paper: "The number of tuples allocated to a block before coding must
be suitably fixed so as to minimize this [unused] space."  Because the
chained AVQ encoding of a phi-ordered run of tuples has an exactly
incremental size (header + representative + one RLE-coded gap per extra
tuple), the greedy maximal fill is optimal for a given tuple order: each
block takes tuples until the next one would overflow.

:func:`pack_ordinals` implements that fill; :func:`pack_relation` is the
relation-level wrapper.  Both return the partition plus a
:class:`PackStats` summary (block count, slack, utilisation) used by the
compression-efficiency experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.core.codec import HEADER_BYTES, BlockCodec
from repro.errors import BlockOverflowError, StorageError
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE

__all__ = [
    "PackStats",
    "PackedPartition",
    "pack_ordinals",
    "pack_relation",
    "pack_runs",
]


@dataclass(frozen=True)
class PackStats:
    """Fill summary for a packed partition."""

    num_blocks: int
    num_tuples: int
    payload_bytes: int
    block_size: int

    @property
    def total_bytes(self) -> int:
        """Bytes occupied on disk: blocks times block size."""
        return self.num_blocks * self.block_size

    @property
    def slack_bytes(self) -> int:
        """Unused bytes across all blocks."""
        return self.total_bytes - self.payload_bytes

    @property
    def utilisation(self) -> float:
        """Mean fraction of each block occupied by payload."""
        if self.num_blocks == 0:
            return 0.0
        return self.payload_bytes / self.total_bytes

    @property
    def tuples_per_block(self) -> float:
        """Average tuples stored per block."""
        if self.num_blocks == 0:
            return 0.0
        return self.num_tuples / self.num_blocks

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Fields plus derived sizes/rates, under stable keys.

        PackStats is frozen — a one-shot summary of a finished pack, not
        a live counter set — so it implements the snapshot protocol's
        ``as_dict`` without a ``reset``.
        """
        out = snapshot_dataclass(self)
        out["total_bytes"] = self.total_bytes
        out["slack_bytes"] = self.slack_bytes
        out["utilisation"] = self.utilisation
        out["tuples_per_block"] = self.tuples_per_block
        return out


@dataclass(frozen=True)
class PackedPartition:
    """The Section 3.3 partition: per-block ordinal runs plus statistics.

    ``blocks[k]`` is the ascending list of phi ordinals stored in block
    ``B_{k+1}``; consecutive blocks cover consecutive ordinal ranges, which
    is what makes the primary index's whole-tuple search keys work.
    """

    blocks: List[List[int]]
    stats: PackStats


def pack_ordinals(
    codec: BlockCodec,
    sorted_ordinals: Sequence[int],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> PackedPartition:
    """Greedily fill blocks with a phi-ordered run of tuple ordinals.

    ``sorted_ordinals`` must be ascending (ties allowed — duplicate
    tuples).  Raises :class:`~repro.errors.StorageError` when even a
    single tuple cannot fit a block, which only happens for absurdly
    small block sizes.
    """
    min_block = getattr(
        codec, "min_block_bytes", HEADER_BYTES + codec.tuple_bytes
    )
    if block_size < min_block:
        raise StorageError(
            f"block size {block_size} cannot hold even one tuple "
            f"(needs {min_block} bytes)"
        )
    for i in range(1, len(sorted_ordinals)):
        if sorted_ordinals[i] < sorted_ordinals[i - 1]:
            raise StorageError("pack_ordinals requires ascending ordinals")

    blocks: List[List[int]] = []
    payload_bytes = 0

    if codec.chained:
        # Exact incremental fill: block size = header + m + sum of gap costs.
        current: List[int] = []
        current_size = 0
        for ordinal in sorted_ordinals:
            if not current:
                current = [ordinal]
                current_size = min_block
                continue
            cost = codec.incremental_gap_cost(ordinal - current[-1])
            if current_size + cost <= block_size:
                current.append(ordinal)
                current_size += cost
            else:
                blocks.append(current)
                payload_bytes += current_size
                current = [ordinal]
                current_size = min_block
        if current:
            blocks.append(current)
            payload_bytes += current_size
    else:
        # Unchained sizes are not incremental (they depend on the moving
        # representative) and not even strictly monotone in prefix length
        # (a median shift can shrink several stored differences at once).
        # Bisection still yields a valid fill — every emitted block is
        # size-checked — at O(u log u) evaluations instead of O(u^2); it
        # may occasionally stop one tuple short of the true maximum, which
        # only costs a sliver of slack in this ablation-only code path.
        start = 0
        n = len(sorted_ordinals)
        while start < n:
            lo, hi = 1, n - start  # lo tuples always "fit" (forced minimum)
            while lo < hi:
                mid = (lo + hi + 1) // 2
                size = codec.encoded_size_of_ordinals(
                    sorted_ordinals[start : start + mid]
                )
                if size <= block_size:
                    lo = mid
                else:
                    hi = mid - 1
            run = list(sorted_ordinals[start : start + lo])
            size = codec.encoded_size_of_ordinals(run)
            if size > block_size:
                raise BlockOverflowError(
                    "a single tuple's unchained encoding exceeds the block size"
                )
            blocks.append(run)
            payload_bytes += size
            start += lo

    stats = PackStats(
        num_blocks=len(blocks),
        num_tuples=len(sorted_ordinals),
        payload_bytes=payload_bytes,
        block_size=block_size,
    )
    reg = _obs.REGISTRY
    if reg is not None:
        reg.inc("pack.blocks", stats.num_blocks)
        reg.inc("pack.tuples", stats.num_tuples)
        reg.inc("pack.payload_bytes", stats.payload_bytes)
        reg.set_gauge("pack.utilisation", stats.utilisation)
    return PackedPartition(blocks=blocks, stats=stats)


def pack_runs(
    codec: BlockCodec,
    sorted_ordinals: Sequence[int],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[Sequence[int]]:
    """Per-block ordinal runs only, taking the vectorised path if it applies.

    The partition is identical to :func:`pack_ordinals`; codecs eligible
    for the numpy boundary scan (chained, median representative, int64
    ordinal space) skip the per-tuple Python loop.  This is the packing
    front half of the parallel encode pipeline — runs go straight to
    :func:`repro.core.parallel.encode_blocks`.
    """
    if not sorted_ordinals:
        return []
    if (
        codec.chained
        and getattr(codec, "representative_strategy", None) == "median"
        and codec.mapper.fits_int64
    ):
        import numpy as np

        from repro.core.fastpack import fast_pack_boundaries

        arr = np.asarray(sorted_ordinals, dtype=np.int64)
        return [
            sorted_ordinals[start:end]
            for start, end in fast_pack_boundaries(
                arr, codec.mapper.domain_sizes, block_size
            )
        ]
    return list(pack_ordinals(codec, sorted_ordinals, block_size).blocks)


def pack_relation(
    relation: Relation,
    *,
    codec: BlockCodec = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> PackedPartition:
    """Sort a relation by phi (Section 3.2) and pack it into blocks.

    A codec built from the relation's schema is used unless one is given
    (give one to run the chaining or representative ablations).
    """
    if codec is None:
        codec = BlockCodec(relation.schema.domain_sizes)
    return pack_ordinals(codec, relation.phi_ordinals(), block_size)
