"""Storage substrate: blocks, the simulated disk, packing, and files.

* :mod:`repro.storage.block` — the 8192-byte block abstraction (Sec. 3.3)
* :mod:`repro.storage.disk` — the Section 5.3.2 disk timing model
* :mod:`repro.storage.packer` — minimal-slack block partitioning (Sec. 3.4)
* :mod:`repro.storage.heapfile` — the uncoded fixed-width baseline
* :mod:`repro.storage.avqfile` — AVQ-coded relation storage (Sec. 4.2 ops)
* :mod:`repro.storage.buffer` — an LRU buffer pool
* :mod:`repro.storage.wal` — write-ahead logging and crash recovery
* :mod:`repro.storage.faults` — fault injection (torn writes, crashes,
  bit rot, transient read faults)
* :mod:`repro.storage.integrity` — scrubbing, quarantine, block repair
"""

from repro.storage.avqfile import AVQFile
from repro.storage.block import DEFAULT_BLOCK_SIZE, Block
from repro.storage.buffer import BufferPool, BufferStats, DecodedBlockCache
from repro.storage.disk import DiskModel, DiskStats, SimulatedDisk
from repro.storage.extsort import (
    PARALLEL_BATCH_RUNS,
    bulk_load,
    external_sort_ordinals,
)
from repro.storage.faults import (
    CRASH_MODES,
    FaultInjector,
    FaultStats,
    FaultyDisk,
)
from repro.storage.heapfile import HeapFile
from repro.storage.integrity import (
    DEGRADED_READ_POLICIES,
    IntegrityManager,
    IntegrityReport,
    QuarantineSet,
    RepairEngine,
    RepairOutcome,
    ScrubFinding,
    ScrubReport,
    Scrubber,
)
from repro.storage.packer import (
    PackedPartition,
    PackStats,
    pack_ordinals,
    pack_relation,
    pack_runs,
)
from repro.storage.wal import (
    LogImage,
    RecoveryReport,
    WALHeader,
    WALRecord,
    WALStats,
    WriteAheadLog,
    read_log,
    recover,
    replay_records,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "Block",
    "DiskModel",
    "DiskStats",
    "SimulatedDisk",
    "BufferPool",
    "BufferStats",
    "DecodedBlockCache",
    "PackStats",
    "PackedPartition",
    "pack_ordinals",
    "pack_relation",
    "pack_runs",
    "HeapFile",
    "AVQFile",
    "PARALLEL_BATCH_RUNS",
    "external_sort_ordinals",
    "bulk_load",
    "CRASH_MODES",
    "FaultInjector",
    "FaultStats",
    "FaultyDisk",
    "DEGRADED_READ_POLICIES",
    "IntegrityManager",
    "IntegrityReport",
    "QuarantineSet",
    "RepairEngine",
    "RepairOutcome",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "LogImage",
    "RecoveryReport",
    "WALHeader",
    "WALRecord",
    "WALStats",
    "WriteAheadLog",
    "read_log",
    "recover",
    "replay_records",
]
