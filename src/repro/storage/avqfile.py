"""AVQ-coded relation storage: blocks of losslessly quantized tuples.

The coded counterpart of :class:`~repro.storage.heapfile.HeapFile`.  A
relation is phi-sorted, greedily packed (Section 3.3), block-coded
(Section 3.4) and written to a simulated disk.  The file keeps a small
in-memory directory of each block's first and last ordinal — the same
information the primary index of Figure 4.4 holds — so that point and
range lookups touch only the blocks that can contain matches.

Tuple insertion and deletion follow Section 4.2: locate the block, decode
it, apply the change, re-encode.  Changes are confined to the affected
block; an insertion that overflows the block splits it in two, exactly as
a clustered file would.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.codec import BlockCodec
from repro.errors import BlockOverflowError, CorruptionError, RepairError, StorageError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.packer import pack_runs

__all__ = ["AVQFile"]


class AVQFile:
    """A phi-clustered, AVQ-compressed relation on a simulated disk."""

    def __init__(
        self,
        schema: Schema,
        disk: SimulatedDisk,
        *,
        codec: Optional[BlockCodec] = None,
    ):
        self._schema = schema
        self._disk = disk
        self._codec = codec or BlockCodec(schema.domain_sizes)
        if self._codec.mapper.domain_sizes != schema.domain_sizes:
            raise StorageError("codec domain sizes do not match the schema")
        self._block_ids: List[int] = []
        self._block_min: List[int] = []   # first ordinal in each block
        self._block_max: List[int] = []   # last ordinal in each block
        self._block_count: List[int] = []
        #: CRC32 of each block's payload as last written, keyed by the
        #: stable disk id (positions shift; ids do not).  ``None`` for a
        #: block adopted from a pre-checksum directory — a scrub
        #: backfills it (docs/INTEGRITY.md).
        self._crc_by_id: Dict[int, Optional[int]] = {}
        self._num_tuples = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        relation: Relation,
        disk: SimulatedDisk,
        *,
        codec: Optional[BlockCodec] = None,
        workers: Optional[int] = None,
    ) -> "AVQFile":
        """Sort, pack, code, and write a relation to ``disk``.

        The default codec configuration (chained, median representative)
        takes the vectorised encode path when the ordinal space fits
        int64; the output is byte-identical to the scalar path
        (property-tested in ``tests/core/test_fastpack.py``).

        ``workers`` fans block coding out to a process pool via
        :mod:`repro.core.parallel` — ``None`` keeps the in-process
        serial path, ``0`` uses every core, ``n`` uses exactly ``n``.
        The written blocks are byte-identical either way; packing always
        happens in-process (it is a sequential scan).
        """
        f = cls(relation.schema, disk, codec=codec)
        ordinals = relation.phi_ordinals()
        if not ordinals:
            return f
        runs = f._pack_runs(ordinals)
        if workers is not None:
            from repro.core.parallel import encode_blocks

            payloads = encode_blocks(
                f._codec, runs, workers=workers, capacity=disk.block_size
            )
            for run, payload in zip(runs, payloads):
                f._append_encoded(run, payload)
            return f
        # Duck-typed alternative codecs (e.g. GolombBlockCodec) have no
        # vectorised companion; they take the scalar loop below.
        vec = getattr(f._codec, "vector_codec", None)
        if vec is not None:
            for run in runs:
                f._append_encoded(run, vec.encode_run(run, disk.block_size))
            return f
        for run in runs:
            f._append_run(run)
        return f

    @classmethod
    def from_ordinals(
        cls,
        schema: Schema,
        disk: SimulatedDisk,
        ordinals: Sequence[int],
        *,
        codec: Optional[BlockCodec] = None,
    ) -> "AVQFile":
        """Materialise a file from an already-sorted phi-ordinal sequence.

        The crash-recovery path (:func:`repro.storage.wal.recover`):
        the replayed logical image is repacked onto *fresh* blocks —
        whatever the old blocks hold after a crash is never trusted.
        ``ordinals`` must be sorted ascending (duplicates allowed).
        """
        f = cls(schema, disk, codec=codec)
        if not ordinals:
            return f
        for run in f._pack_runs(ordinals):
            f._append_run(run)
        return f

    @classmethod
    def attach(
        cls,
        schema: Schema,
        disk: SimulatedDisk,
        directory: Sequence[Sequence[int]],
        *,
        codec: Optional[BlockCodec] = None,
    ) -> "AVQFile":
        """Re-adopt existing blocks from a recorded physical directory.

        The clean-shutdown path: each entry is ``(block_id,
        first_ordinal, last_ordinal, tuple_count)`` — optionally with a
        trailing payload CRC32 — exactly as
        :meth:`directory_entries_checked` reported it.  No block is read
        or written — reopening a cleanly closed file is a byte-for-byte
        no-op; :meth:`verify_directory` remains the paranoid check.
        Entries without a CRC (a pre-checksum directory) adopt with
        unknown checksums, which a scrub backfills.
        """
        f = cls(schema, disk, codec=codec)
        prev_max: Optional[int] = None
        for entry in directory:
            if len(entry) not in (4, 5):
                raise StorageError(
                    f"attach: directory entry has {len(entry)} fields, "
                    "expected 4 or 5"
                )
            block_id, first, last, count = (
                entry[0], entry[1], entry[2], entry[3]
            )
            crc = entry[4] if len(entry) == 5 else None
            if count < 1 or last < first:
                raise StorageError(
                    f"attach: impossible directory entry for block "
                    f"{block_id} ([{first}, {last}], {count} tuples)"
                )
            if prev_max is not None and first <= prev_max:
                raise StorageError(
                    f"attach: block {block_id} min {first} does not "
                    f"follow previous block max {prev_max}"
                )
            prev_max = last
            f._block_ids.append(block_id)
            f._block_min.append(first)
            f._block_max.append(last)
            f._block_count.append(count)
            f._crc_by_id[block_id] = None if crc is None else int(crc)
            f._num_tuples += count
        return f

    def _pack_runs(self, ordinals: Sequence[int]) -> List[Sequence[int]]:
        """Greedy Section 3.3 packing of sorted ordinals into block runs."""
        return pack_runs(self._codec, ordinals, self._disk.block_size)

    def _append_run(self, ordinals: Sequence[int]) -> None:
        self._append_encoded(ordinals, self._encode_ordinals(ordinals))

    def _append_encoded(
        self, ordinals: Sequence[int], payload: bytes
    ) -> None:
        """Append a run whose payload was already encoded (parallel path)."""
        block_id = self._disk.append_block(payload)
        self._block_ids.append(block_id)
        self._block_min.append(ordinals[0])
        self._block_max.append(ordinals[-1])
        self._block_count.append(len(ordinals))
        self._crc_by_id[block_id] = zlib.crc32(payload)
        self._num_tuples += len(ordinals)

    def _write_payload(self, block_id: int, payload: bytes) -> None:
        """Rewrite one block, keeping its recorded checksum current."""
        self._disk.write_block(block_id, payload)
        self._crc_by_id[block_id] = zlib.crc32(payload)

    def _encode_ordinals(self, ordinals: Sequence[int]) -> bytes:
        # Mutation paths always hold sorted ordinals, so a codec that
        # can encode runs directly skips the phi_inverse -> phi round
        # trip (vectorised when eligible, byte-identical either way).
        # Duck-typed codecs without that method expand to tuples first.
        encode_ordinals = getattr(self._codec, "encode_ordinals", None)
        if encode_ordinals is not None:
            return encode_ordinals(ordinals, capacity=self._disk.block_size)
        tuples = [self._codec.mapper.phi_inverse(o) for o in ordinals]
        return self._codec.encode_block(tuples, capacity=self._disk.block_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """Schema of the stored relation."""
        return self._schema

    @property
    def codec(self) -> BlockCodec:
        """The block codec used for coding and decoding."""
        return self._codec

    @property
    def num_blocks(self) -> int:
        """Blocks occupied on disk — the coded ``N`` of Figure 5.8."""
        return len(self._block_ids)

    @property
    def num_tuples(self) -> int:
        """Tuples stored across all blocks."""
        return self._num_tuples

    @property
    def block_ids(self) -> List[int]:
        """Disk block ids in phi-cluster order."""
        return list(self._block_ids)

    def block_id_at(self, position: int) -> int:
        """Disk block id of the ``position``-th block (no list copy)."""
        self._check_position(position)
        return self._block_ids[position]

    def block_range(self, position: int) -> Tuple[int, int]:
        """(first, last) phi ordinal stored in the ``position``-th block."""
        self._check_position(position)
        return self._block_min[position], self._block_max[position]

    def block_tuple_count(self, position: int) -> int:
        """Number of tuples in the ``position``-th block."""
        self._check_position(position)
        return self._block_count[position]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def read_block(self, position: int) -> List[Tuple[int, ...]]:
        """Read and decode one block (``t1`` I/O plus ``t2`` decode)."""
        return self._codec.decode_block(self.read_payload(position))

    def read_block_ordinals(self, position: int) -> List[int]:
        """Read one block, decoding only to phi ordinals."""
        return self._codec.decode_ordinals(self.read_payload(position))

    def read_payload(self, position: int) -> bytes:
        """Read one block's raw payload, checksum-verified.

        Every decode path funnels through here (or through
        :meth:`verify_payload` for id-keyed reads), so bit rot at rest
        surfaces as :class:`~repro.errors.CorruptionError` *before* the
        damaged bytes reach the codec — a chained difference stream
        decodes single-bit damage into arbitrarily wrong tuples, so the
        checksum is the only honest detector.
        """
        self._check_position(position)
        block_id = self._block_ids[position]
        payload = self._disk.read_block(block_id)
        self.verify_payload(block_id, payload)
        return payload

    def read_block_id(self, block_id: int) -> List[Tuple[int, ...]]:
        """Read and decode a block by its stable disk id.

        Indices store disk ids (they survive block splits, unlike
        positions); this is the access path a query takes after an index
        probe.  Checksum-verified like :meth:`read_payload`.
        """
        payload = self._disk.read_block(block_id)
        self.verify_payload(block_id, payload)
        return self._codec.decode_block(payload)

    def verify_payload(self, block_id: int, payload: bytes) -> None:
        """Check a payload against the block's recorded checksum.

        A no-op for blocks adopted from a pre-checksum directory (their
        recorded CRC is unknown until a scrub backfills it) and for ids
        this file does not own — the buffer pool attaches this method as
        its admission verifier, and the pool may also cache foreign
        blocks (e.g. the WAL's).
        """
        expected = self._crc_by_id.get(block_id)
        if expected is None:
            return
        if zlib.crc32(payload) != expected:
            raise CorruptionError(
                f"payload checksum mismatch on disk block {block_id}",
                block_id=block_id,
                position=self.position_of_id(block_id),
                detected_by="crc32",
            )

    def position_of_id(self, block_id: int) -> Optional[int]:
        """Current position of a disk id, or ``None`` if not in this file."""
        try:
            return self._block_ids.index(block_id)
        except ValueError:
            return None

    def decode_payload(self, payload: bytes) -> List[Tuple[int, ...]]:
        """Decode a raw block payload (no I/O) — the buffer-pool path."""
        return self._codec.decode_block(payload)

    def scan(self) -> Iterator[Tuple[int, ...]]:
        """Full relation scan in phi order."""
        for position in range(self.num_blocks):
            yield from self.read_block(position)

    def iter_blocks(self) -> Iterator[Tuple[int, List[Tuple[int, ...]]]]:
        """Yield ``(block_id, tuples)`` for every block, in phi order."""
        for position in range(self.num_blocks):
            yield self._block_ids[position], self.read_block(position)

    def directory(self) -> List[Tuple[int, int]]:
        """``(first_ordinal, block_id)`` per block — primary-index feed."""
        return list(zip(self._block_min, self._block_ids))

    def directory_entries(self) -> List[Tuple[int, int, int, int]]:
        """``(block_id, first, last, count)`` per block, in phi order.

        The full physical directory — what a clean-shutdown WAL record
        stores so :meth:`attach` can re-adopt the blocks without I/O.
        """
        return list(
            zip(
                self._block_ids,
                self._block_min,
                self._block_max,
                self._block_count,
            )
        )

    def directory_entries_checked(
        self,
    ) -> List[Tuple[int, int, int, int, Optional[int]]]:
        """Directory entries with each block's payload CRC32 appended.

        ``(block_id, first, last, count, crc32)`` per block; the CRC is
        ``None`` only for blocks adopted from a pre-checksum directory
        and not yet scrub-backfilled.  :meth:`attach` accepts these
        entries directly, so a clean shutdown round-trips checksums
        through the WAL's CLEAN record.
        """
        return [
            (
                block_id,
                self._block_min[i],
                self._block_max[i],
                self._block_count[i],
                self._crc_by_id[block_id],
            )
            for i, block_id in enumerate(self._block_ids)
        ]

    def block_crc(self, position: int) -> Optional[int]:
        """Recorded payload CRC32 of the ``position``-th block.

        ``None`` means unknown (pre-checksum adoption), not "no check" —
        a scrub backfills it once the payload proves decode-clean.
        """
        self._check_position(position)
        return self._crc_by_id.get(self._block_ids[position])

    def set_block_crc(self, position: int, crc: int) -> None:
        """Record a backfilled checksum for a pre-checksum block.

        Only the scrubber calls this, and only after proving the payload
        decodes to exactly what the directory claims — blessing bytes
        that were never checksum-verified requires that decode proof.
        """
        self._check_position(position)
        self._crc_by_id[self._block_ids[position]] = int(crc)

    def all_ordinals(self) -> List[int]:
        """Every stored phi ordinal, ascending (one read per block).

        The checkpoint feed: the complete logical image of the file.
        """
        out: List[int] = []
        for position in range(self.num_blocks):
            out.extend(self.read_block_ordinals(position))
        return out

    def block_of_ordinal(self, ordinal: int) -> Optional[int]:
        """Directory lookup: position of the block covering ``ordinal``.

        Returns the unique block whose [min, max] range the ordinal falls
        into, or the block it *would* belong to if inserted (the block with
        the greatest min <= ordinal, else block 0).  ``None`` for an empty
        file.
        """
        if not self._block_ids:
            return None
        pos = bisect.bisect_right(self._block_min, ordinal) - 1
        if pos < 0:
            # Ordinal sorts below the first block's minimum; without this
            # guard the raw bisect result (-1) would silently index the
            # *last* block.  Such an ordinal belongs in block 0.
            return 0
        return pos

    def covering_block_of_ordinal(self, ordinal: int) -> Optional[int]:
        """Position of the block whose [min, max] range holds ``ordinal``.

        Unlike :meth:`block_of_ordinal` (which answers "where would this
        ordinal go?"), this answers "where could it already *be*?" —
        ``None`` when the ordinal falls outside every block's range, so
        point probes and deletes can skip the disk read entirely.
        """
        if not self._block_ids:
            return None
        pos = bisect.bisect_right(self._block_min, ordinal) - 1
        if pos < 0:
            return None
        if ordinal > self._block_max[pos]:
            return None
        return pos

    def contains_ordinal(self, ordinal: int) -> bool:
        """Point probe: whether a tuple with this phi ordinal is stored.

        Reads one block and walks its difference stream with early exit
        (:meth:`~repro.core.codec.BlockCodec.probe_block`) — no full
        block reconstruction.  Ordinals outside every block's range are
        answered from the in-memory directory with no I/O at all.
        """
        pos = self.covering_block_of_ordinal(ordinal)
        if pos is None:
            return False
        payload = self.read_payload(pos)
        probe = getattr(self._codec, "probe_block", None)
        if probe is not None:
            return probe(payload, ordinal)
        return ordinal in self._codec.decode_ordinals(payload)

    def blocks_overlapping(self, lo: int, hi: int) -> List[int]:
        """Positions of blocks whose ordinal range intersects [lo, hi]."""
        if lo > hi or not self._block_ids:
            return []
        start = self.block_of_ordinal(lo)
        out = []
        for pos in range(start, self.num_blocks):
            if self._block_min[pos] > hi:
                break
            if self._block_max[pos] >= lo:
                out.append(pos)
        return out

    # ------------------------------------------------------------------
    # Mutation (Section 4.2)
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[int]) -> int:
        """Insert one ordinal tuple; returns the block position updated.

        The change is confined to the affected block (re-coded in place);
        a block that can no longer hold its tuples is split in two.
        """
        ordinal = self._schema.mapper.phi(values)
        if not self._block_ids:
            self._append_run([ordinal])
            return 0
        pos = self.block_of_ordinal(ordinal)
        ordinals = self.read_block_ordinals(pos)
        bisect.insort(ordinals, ordinal)
        try:
            payload = self._encode_ordinals(ordinals)
        except BlockOverflowError:
            self._split_block(pos, ordinals)
            return pos
        self._write_payload(self._block_ids[pos], payload)
        self._block_min[pos] = ordinals[0]
        self._block_max[pos] = ordinals[-1]
        self._block_count[pos] = len(ordinals)
        self._num_tuples += 1
        return pos

    def _split_block(self, position: int, ordinals: List[int]) -> None:
        """Replace one overfull block with two half-full ones."""
        mid = len(ordinals) // 2
        left, right = ordinals[:mid], ordinals[mid:]
        self._write_payload(
            self._block_ids[position], self._encode_ordinals(left)
        )
        right_payload = self._encode_ordinals(right)
        right_id = self._disk.append_block(right_payload)
        self._crc_by_id[right_id] = zlib.crc32(right_payload)
        self._block_min[position] = left[0]
        self._block_max[position] = left[-1]
        self._block_count[position] = len(left)
        self._block_ids.insert(position + 1, right_id)
        self._block_min.insert(position + 1, right[0])
        self._block_max.insert(position + 1, right[-1])
        self._block_count.insert(position + 1, len(right))
        self._num_tuples += 1

    def delete(self, values: Sequence[int]) -> bool:
        """Delete one occurrence of a tuple; returns whether it was found."""
        ordinal = self._schema.mapper.phi(values)
        pos = self.covering_block_of_ordinal(ordinal)
        if pos is None:
            # Outside every block's range: the directory alone proves the
            # tuple is absent, so don't pay a block read to find out.
            return False
        ordinals = self.read_block_ordinals(pos)
        idx = bisect.bisect_left(ordinals, ordinal)
        if idx >= len(ordinals) or ordinals[idx] != ordinal:
            return False
        ordinals.pop(idx)
        if not ordinals:
            self._crc_by_id.pop(self._block_ids[pos], None)
            self._block_ids.pop(pos)
            self._block_min.pop(pos)
            self._block_max.pop(pos)
            self._block_count.pop(pos)
        else:
            payload = self._encode_ordinals(ordinals)
            self._write_payload(self._block_ids[pos], payload)
            self._block_min[pos] = ordinals[0]
            self._block_max[pos] = ordinals[-1]
            self._block_count[pos] = len(ordinals)
        self._num_tuples -= 1
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def encode_payload(self, ordinals: Sequence[int]) -> bytes:
        """Encode a sorted ordinal run exactly as a block write would.

        The repair engine uses this to re-encode a candidate tuple set
        and compare its CRC against the directory's recorded checksum —
        the codec is deterministic, so a CRC match on the re-encoding is
        byte-identity with what was originally written.
        """
        return self._encode_ordinals(ordinals)

    def restore_block(
        self, position: int, ordinals: Sequence[int], payload: bytes
    ) -> None:
        """Overwrite one block with a repaired payload, then verify it.

        The repair contract (docs/INTEGRITY.md): ``ordinals`` must match
        the directory's recorded range and count for the block — repair
        reconstructs what *was* there, never something new — and the
        written bytes are read back and compared before the block is
        considered healthy.  Any failure raises
        :class:`~repro.errors.RepairError` and the block stays suspect.
        """
        self._check_position(position)
        block_id = self._block_ids[position]
        if (
            not ordinals
            or ordinals[0] != self._block_min[position]
            or ordinals[-1] != self._block_max[position]
            or len(ordinals) != self._block_count[position]
        ):
            raise RepairError(
                f"restored tuple set contradicts the directory for "
                f"block {position} (expected [{self._block_min[position]}, "
                f"{self._block_max[position]}], "
                f"{self._block_count[position]} tuples)",
                block_id=block_id,
                position=position,
                detected_by="directory",
            )
        self._write_payload(block_id, payload)
        reread = self._disk.read_block(block_id)
        if reread != payload:
            raise RepairError(
                f"repaired block {position} did not read back "
                "byte-identical",
                block_id=block_id,
                position=position,
                detected_by="reread",
            )

    def verify_directory(self) -> None:
        """Check the in-memory directory against the blocks on disk.

        Re-reads every block and confirms the cached min/max/count match
        the decoded contents, that block ranges are disjoint and sorted,
        and that the tuple total adds up — raising
        :class:`~repro.errors.StorageError` on the first inconsistency.
        Mutation tests run this after split-heavy workloads to prove the
        Section 4.2 bookkeeping never drifts.
        """
        total = 0
        prev_max: Optional[int] = None
        for position in range(self.num_blocks):
            ordinals = self.read_block_ordinals(position)
            if not ordinals:
                raise StorageError(f"block {position} decoded to no tuples")
            if ordinals[0] != self._block_min[position]:
                raise StorageError(
                    f"block {position} min is {ordinals[0]}, "
                    f"directory says {self._block_min[position]}"
                )
            if ordinals[-1] != self._block_max[position]:
                raise StorageError(
                    f"block {position} max is {ordinals[-1]}, "
                    f"directory says {self._block_max[position]}"
                )
            if len(ordinals) != self._block_count[position]:
                raise StorageError(
                    f"block {position} holds {len(ordinals)} tuples, "
                    f"directory says {self._block_count[position]}"
                )
            if prev_max is not None and ordinals[0] <= prev_max:
                raise StorageError(
                    f"block {position} min {ordinals[0]} does not follow "
                    f"previous block max {prev_max}"
                )
            prev_max = ordinals[-1]
            total += len(ordinals)
        if total != self._num_tuples:
            raise StorageError(
                f"blocks hold {total} tuples, file claims {self._num_tuples}"
            )

    def utilisation(self) -> float:
        """Mean payload fraction of the file's blocks.

        Mutation churn fragments blocks (splits leave two half-full
        blocks; deletes leave slack); this is the number
        :meth:`compact` restores.
        """
        if not self._block_ids:
            return 0.0
        used = 0
        for position in range(self.num_blocks):
            ordinals = self.read_block_ordinals(position)
            used += self._codec.encoded_size_of_ordinals(ordinals)
        return used / (self.num_blocks * self._disk.block_size)

    def compact(self) -> int:
        """Repack the whole file at maximal fill; returns blocks saved.

        Reads every block once, re-runs the greedy Section 3.3 packing
        over the full ordinal sequence, and rewrites the file onto fresh
        blocks.  Old blocks are abandoned (the simulated disk does not
        reclaim space; a real implementation would free them).
        """
        from repro.storage.packer import pack_ordinals

        ordinals: List[int] = []
        for position in range(self.num_blocks):
            ordinals.extend(self.read_block_ordinals(position))
        old_blocks = self.num_blocks

        partition = pack_ordinals(self._codec, ordinals, self._disk.block_size)
        self._block_ids = []
        self._block_min = []
        self._block_max = []
        self._block_count = []
        self._crc_by_id = {}
        self._num_tuples = 0
        for run in partition.blocks:
            self._append_run(run)
        return old_blocks - self.num_blocks

    def _check_position(self, position: int) -> None:
        if not 0 <= position < len(self._block_ids):
            raise StorageError(
                f"AVQ file has {len(self._block_ids)} blocks, "
                f"no position {position}"
            )
