"""Online integrity: scrubbing, quarantine, and index-driven self-repair.

Crash damage (:mod:`repro.storage.wal`) is loud — a torn write invalidates
the CLEAN marker and recovery rebuilds.  Bit rot is silent: a block's
stored bytes change *at rest*, the directory still looks right, and the
chained difference coding of Section 3.4 amplifies a single flipped bit
into arbitrarily many wrong tuples.  This module is the defence in depth
behind the per-read checksums of :class:`~repro.storage.avqfile.AVQFile`:

* :class:`Scrubber` — walks a file block by block, verifying checksum
  and decode round-trip against the directory, in resumable increments
  (a background scrubber never gets to stop the world);
* :class:`QuarantineSet` — corrupt blocks are isolated, not returned:
  every read path refuses a quarantined id, and the rest of the table
  stays readable;
* :class:`RepairEngine` — reconstructs a quarantined block's exact
  logical contents from redundant structure (the tuple-level primary
  index, the write-ahead log's committed image, or bounded enumeration
  over secondary indices), re-encodes them, and proves byte-identity
  against the recorded checksum before the block is declared healthy;
* :class:`IntegrityManager` — the per-table policy glue ("raise",
  "skip", or "repair" on a degraded read) that
  :class:`~repro.db.table.Table` drives.

The repair contract is strict: a restored payload must match the
directory's recorded range and count, must re-read byte-identically, and
— wherever a checksum was recorded — must reproduce it exactly.  A block
that cannot be proven correct stays quarantined; garbage is never
silently returned.  See docs/INTEGRITY.md for the full protocol.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CodecError,
    CorruptionError,
    IntegrityError,
    QuarantinedBlockError,
    RepairError,
    StorageError,
)
from repro.index.primary import TupleOrdinalIndex
from repro.index.secondary import SecondaryIndex
from repro.obs import runtime as _obs
from repro.storage.avqfile import AVQFile
from repro.storage.buffer import BufferPool
from repro.storage.wal import WriteAheadLog, read_log, replay_records

__all__ = [
    "DEGRADED_READ_POLICIES",
    "IntegrityManager",
    "IntegrityReport",
    "QuarantineSet",
    "RepairEngine",
    "RepairOutcome",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
]

#: What a table does when a read hits corruption: ``"raise"`` surfaces
#: the error to the caller, ``"skip"`` lets *queries* omit the block
#: (point probes and mutations still raise — absence of evidence must
#: never read as evidence of absence), ``"repair"`` attempts an online
#: rebuild and raises only if that fails.
DEGRADED_READ_POLICIES = ("raise", "skip", "repair")

#: Secondary-index enumeration gives up past this many candidate
#: combinations — repair must stay bounded, and the checksum gate makes
#: a partial enumeration useless anyway.
_ENUMERATION_CAP = 65536


class QuarantineSet:
    """Block ids barred from every read path, with the reason why.

    Quarantine is containment, not diagnosis: once a block is listed
    here, no caller gets its bytes until a verified repair releases it.
    The set is shared between a table's buffer pool, decoded cache, and
    direct storage reads, so there is exactly one authority on which
    blocks are suspect.
    """

    def __init__(self, *, path: Optional[str] = None):
        self._path = path
        self._reasons: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._reasons)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._reasons

    def block_ids(self) -> List[int]:
        """Quarantined disk block ids, ascending."""
        return sorted(self._reasons)

    def reason_for(self, block_id: int) -> Optional[str]:
        """Why a block is quarantined, or ``None`` if it is not."""
        return self._reasons.get(block_id)

    def quarantine(self, block_id: int, reason: str) -> None:
        """Bar a block from all reads (idempotent; first reason wins)."""
        self._reasons.setdefault(block_id, reason)

    def release(self, block_id: int) -> None:
        """Lift the bar after a *verified* repair (no-op if absent)."""
        self._reasons.pop(block_id, None)

    def check(self, block_id: int) -> None:
        """Raise :class:`~repro.errors.QuarantinedBlockError` if barred."""
        reason = self._reasons.get(block_id)
        if reason is not None:
            raise QuarantinedBlockError(
                f"block {block_id} is quarantined: {reason}",
                path=self._path,
                block_id=block_id,
                detected_by="quarantine",
            )


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged block a scrub pass discovered."""

    position: int
    block_id: int
    detected_by: str
    message: str

    def fsck_line(self) -> str:
        """The finding in ``fsck`` report shape."""
        return (
            f"block {self.position}, disk id {self.block_id}: "
            f"{self.message} [{self.detected_by}]"
        )


@dataclass
class ScrubReport:
    """What one scrub increment checked and found."""

    start_position: int
    blocks_checked: int
    complete: bool
    findings: List[ScrubFinding] = field(default_factory=list)
    backfilled: int = 0

    @property
    def clean(self) -> bool:
        """Whether every checked block verified."""
        return not self.findings

    def fsck_lines(self) -> List[str]:
        """One report line per finding (empty when clean)."""
        return [f.fsck_line() for f in self.findings]


class Scrubber:
    """Incremental verifier of an AVQ file's blocks.

    Each :meth:`scrub` call checks up to ``max_blocks`` blocks starting
    at the saved cursor, then leaves the cursor where it stopped — the
    next call resumes there, wrapping to the start after a complete
    pass.  Checks per block: payload checksum against the recorded
    CRC32, decode round-trip, and agreement of the decoded ordinals
    with the in-memory directory.  Damage is recorded as a finding and
    (when a quarantine set is attached) quarantined immediately.

    The scrubber deliberately reads the *medium*, never a cache: a
    buffer-pool copy predating the rot would pass every check while the
    stored bytes are garbage.
    """

    def __init__(
        self,
        storage: AVQFile,
        *,
        quarantine: Optional[QuarantineSet] = None,
        path: Optional[str] = None,
    ):
        self._storage = storage
        self._quarantine = quarantine
        self._path = path
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Block position the next increment starts at."""
        return self._cursor

    def reset(self) -> None:
        """Restart the scan from block 0."""
        self._cursor = 0

    def scrub(
        self,
        *,
        max_blocks: Optional[int] = None,
        backfill: bool = False,
    ) -> ScrubReport:
        """Verify the next ``max_blocks`` blocks (all remaining if ``None``).

        With ``backfill=True``, a block adopted without a checksum that
        passes the decode round-trip has its CRC32 recorded — the
        upgrade path for pre-checksum directories.  Blocks that fail
        *any* check are never blessed.
        """
        if max_blocks is not None and max_blocks < 1:
            raise StorageError(
                f"scrub increment must be >= 1 blocks, got {max_blocks}"
            )
        storage = self._storage
        if self._cursor >= storage.num_blocks:
            self._cursor = 0
        start = self._cursor
        end = storage.num_blocks
        if max_blocks is not None:
            end = min(end, start + max_blocks)
        report = ScrubReport(
            start_position=start, blocks_checked=0, complete=False
        )
        with _obs.span("scrub.pass", start=start):
            for position in range(start, end):
                finding = self._check_block(position, backfill, report)
                report.blocks_checked += 1
                if finding is not None:
                    report.findings.append(finding)
                    if self._quarantine is not None:
                        self._quarantine.quarantine(
                            finding.block_id, finding.message
                        )
        self._cursor = end
        if self._cursor >= storage.num_blocks:
            report.complete = True
            self._cursor = 0
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("scrub.blocks_checked", report.blocks_checked)
            reg.inc("scrub.findings", len(report.findings))
            reg.inc("scrub.backfilled", report.backfilled)
            if report.complete:
                reg.inc("scrub.passes_completed")
        return report

    def _check_block(
        self, position: int, backfill: bool, report: ScrubReport
    ) -> Optional[ScrubFinding]:
        storage = self._storage
        block_id = storage.block_id_at(position)
        try:
            payload = storage.read_payload(position)
        except CorruptionError as exc:
            return ScrubFinding(
                position=position,
                block_id=block_id,
                detected_by="crc32",
                message=str(exc),
            )
        try:
            ordinals = storage.codec.decode_ordinals(payload)
        except CodecError as exc:
            return ScrubFinding(
                position=position,
                block_id=block_id,
                detected_by="decode",
                message=f"payload does not decode: {exc}",
            )
        first, last = storage.block_range(position)
        count = storage.block_tuple_count(position)
        if (
            not ordinals
            or ordinals[0] != first
            or ordinals[-1] != last
            or len(ordinals) != count
        ):
            return ScrubFinding(
                position=position,
                block_id=block_id,
                detected_by="directory",
                message=(
                    f"decoded contents contradict the directory "
                    f"(expected [{first}, {last}], {count} tuples)"
                ),
            )
        if backfill and storage.block_crc(position) is None:
            storage.set_block_crc(position, zlib.crc32(payload))
            report.backfilled += 1
        return None


@dataclass(frozen=True)
class RepairOutcome:
    """A successful block repair: where the truth came from."""

    position: int
    block_id: int
    source: str
    tuples: int
    crc_verified: bool


class RepairEngine:
    """Reconstructs a corrupt block from the table's redundant structure.

    Candidate sources, tried in order of trustworthiness:

    1. **Tuple-level primary index** — one entry per stored tuple with
       multiplicity; :meth:`TupleOrdinalIndex.ordinals_for_block` *is*
       the block's logical contents.
    2. **Write-ahead log** — the committed logical image (checkpoint
       plus committed operations) sliced to the block's ordinal range.
       Block ranges are disjoint, so the slice is exact — including
       duplicate multiplicity.
    3. **Secondary-index enumeration** — the cross product of each
       attribute's values known to occur in the block, filtered to the
       block's ordinal range.  Bounded (:data:`_ENUMERATION_CAP`) and
       duplicate-blind, so it only ever succeeds through the checksum
       gate below.

    Every candidate must match the directory's recorded range and
    count, and — whenever the directory recorded a checksum — its
    re-encoding must reproduce that CRC32 exactly (the codec is
    deterministic, so a CRC match is byte-identity with what was
    originally written).  Sources 1 and 2 are accepted without a
    recorded checksum because they are exact logical replicas; source 3
    never is.  The restored payload is then re-read and byte-compared
    by :meth:`AVQFile.restore_block` before the block counts as
    healthy.
    """

    def __init__(
        self,
        storage: AVQFile,
        *,
        tuple_index: Optional[TupleOrdinalIndex] = None,
        wal: Optional[WriteAheadLog] = None,
        secondaries: Sequence[SecondaryIndex] = (),
    ):
        self._storage = storage
        self._tuple_index = tuple_index
        self._wal = wal
        self._secondaries = list(secondaries)

    @property
    def sources(self) -> List[str]:
        """Names of the candidate sources this engine can consult."""
        out = []
        if self._tuple_index is not None:
            out.append("primary-index")
        if self._wal is not None:
            out.append("wal")
        if self._secondaries:
            out.append("secondary-enumeration")
        return out

    def repair(self, position: int) -> RepairOutcome:
        """Rebuild the block at ``position``; raise if no source proves it.

        On success the block's stored bytes are verified healthy and the
        outcome names the source that supplied the truth.  On failure
        the block's bytes are untouched (the engine never writes an
        unproven payload) and :class:`~repro.errors.RepairError` carries
        the structured location payload.
        """
        storage = self._storage
        block_id = storage.block_id_at(position)
        expected_crc = storage.block_crc(position)
        attempts: List[str] = []
        reg = _obs.REGISTRY
        with _obs.span("repair.block", position=position):
            for source, ordinals in self._candidates(position, block_id):
                verdict = self._prove(
                    position, ordinals, expected_crc, source
                )
                if verdict is None:
                    attempts.append(source)
                    continue
                payload, crc_verified = verdict
                storage.restore_block(position, ordinals, payload)
                if reg is not None:
                    reg.inc("repair.blocks_repaired")
                return RepairOutcome(
                    position=position,
                    block_id=block_id,
                    source=source,
                    tuples=len(ordinals),
                    crc_verified=crc_verified,
                )
            if reg is not None:
                reg.inc("repair.failures")
            tried = ", ".join(attempts) if attempts else "none available"
            raise RepairError(
                f"no source could prove block {position}'s contents "
                f"(tried: {tried})",
                block_id=block_id,
                position=position,
            )

    def _candidates(self, position: int, block_id: int):
        """Yield ``(source_name, sorted_ordinals)`` candidates in order."""
        if self._tuple_index is not None:
            yield "primary-index", self._tuple_index.ordinals_for_block(
                block_id
            )
        if self._wal is not None:
            ordinals = self._wal_slice(position)
            if ordinals is not None:
                yield "wal", ordinals
        if self._secondaries:
            ordinals = self._enumerate(position, block_id)
            if ordinals is not None:
                yield "secondary-enumeration", ordinals

    def _prove(
        self,
        position: int,
        ordinals: Sequence[int],
        expected_crc: Optional[int],
        source: str,
    ) -> Optional[Tuple[bytes, bool]]:
        """Encode a candidate and decide whether it is proven correct."""
        storage = self._storage
        first, last = storage.block_range(position)
        count = storage.block_tuple_count(position)
        if (
            not ordinals
            or ordinals[0] != first
            or ordinals[-1] != last
            or len(ordinals) != count
        ):
            return None
        try:
            payload = storage.encode_payload(ordinals)
        except CodecError:
            return None
        if expected_crc is not None:
            if zlib.crc32(payload) != expected_crc:
                return None
            return payload, True
        # No recorded checksum to prove against: only an exact logical
        # replica is acceptable, never a blind enumeration.
        if source == "secondary-enumeration":
            return None
        return payload, False

    def _wal_slice(self, position: int) -> Optional[List[int]]:
        """The committed logical image restricted to one block's range."""
        wal = self._wal
        if wal is None:
            return None
        wal.force()
        _header, records, _truncated, _end = read_log(wal.path)
        image = replay_records(records).ordinals
        first, last = self._storage.block_range(position)
        lo = bisect_left(image, first)
        hi = bisect_right(image, last)
        return image[lo:hi]

    def _enumerate(
        self, position: int, block_id: int
    ) -> Optional[List[int]]:
        """Bounded cross-product of secondary-index values for a block.

        Positions without an index fall back to the full attribute
        domain; the leading position is additionally clamped to the
        values compatible with the block's ordinal range.  ``None``
        when the combination count exceeds the cap or no value set can
        be formed.
        """
        storage = self._storage
        mapper = storage.codec.mapper
        domain_sizes = mapper.domain_sizes
        first, last = storage.block_range(position)
        weights = mapper.weights
        value_sets: List[List[int]] = []
        total = 1
        for pos, domain in enumerate(domain_sizes):
            values: Optional[List[int]] = None
            for idx in self._secondaries:
                if idx.position == pos:
                    values = idx.values_for_block(block_id)
                    break
            if values is None:
                if pos == 0:
                    # phi is lexicographic: the leading attribute of any
                    # ordinal in [first, last] lies in this value range.
                    values = list(
                        range(first // weights[0], last // weights[0] + 1)
                    )
                else:
                    values = list(range(domain))
            if not values:
                return None
            total *= len(values)
            if total > _ENUMERATION_CAP:
                return None
            value_sets.append(values)
        ordinals: List[int] = []
        for combo in _product(value_sets):
            ordinal = mapper.phi(combo)
            if first <= ordinal <= last:
                ordinals.append(ordinal)
        ordinals.sort()
        return ordinals


def _product(value_sets: Sequence[Sequence[int]]):
    """Cartesian product without :mod:`itertools` recursion limits."""
    if not value_sets:
        return
    indices = [0] * len(value_sets)
    while True:
        yield tuple(vs[i] for vs, i in zip(value_sets, indices))
        pos = len(value_sets) - 1
        while pos >= 0:
            indices[pos] += 1
            if indices[pos] < len(value_sets[pos]):
                break
            indices[pos] = 0
            pos -= 1
        if pos < 0:
            return


@dataclass
class IntegrityReport:
    """A full ``fsck`` pass: scrub findings plus repair outcomes."""

    scrub: ScrubReport
    repaired: List[RepairOutcome] = field(default_factory=list)
    unrepairable: List[ScrubFinding] = field(default_factory=list)
    backfilled: int = 0

    @property
    def healthy(self) -> bool:
        """Whether the file ended the pass with no quarantined damage."""
        return not self.unrepairable

    def fsck_lines(self) -> List[str]:
        """Human-readable report lines, damage first."""
        lines = [f.fsck_line() for f in self.scrub.findings]
        for outcome in self.repaired:
            lines.append(
                f"block {outcome.position}, disk id {outcome.block_id}: "
                f"repaired from {outcome.source} "
                f"({outcome.tuples} tuples, "
                f"{'crc-verified' if outcome.crc_verified else 'directory-verified'})"
            )
        for finding in self.unrepairable:
            lines.append(
                f"block {finding.position}, disk id {finding.block_id}: "
                "UNREPAIRABLE - quarantined"
            )
        return lines


class IntegrityManager:
    """Per-table integrity policy: quarantine, scrubbing, and repair glue.

    One manager per table.  It owns the :class:`QuarantineSet`, wires
    the storage file's checksum verifier and the quarantine into the
    table's buffer pool, and applies the degraded-read policy when a
    read trips corruption.
    """

    def __init__(
        self,
        storage: AVQFile,
        *,
        policy: str = "raise",
        pool: Optional[BufferPool] = None,
        path: Optional[str] = None,
    ):
        if policy not in DEGRADED_READ_POLICIES:
            raise StorageError(
                f"unknown degraded-read policy {policy!r}; expected one "
                f"of {DEGRADED_READ_POLICIES}"
            )
        self._storage = storage
        self._policy = policy
        self._pool = pool
        self._quarantine = QuarantineSet(path=path)
        self._scrubber = Scrubber(
            storage, quarantine=self._quarantine, path=path
        )
        self._engine: Optional[RepairEngine] = None
        if pool is not None:
            pool.attach_verifier(storage.verify_payload)
            pool.attach_quarantine(self._quarantine)

    @property
    def policy(self) -> str:
        """The degraded-read policy ("raise", "skip", or "repair")."""
        return self._policy

    @property
    def quarantine(self) -> QuarantineSet:
        """The table's quarantine set (the single authority)."""
        return self._quarantine

    @property
    def scrubber(self) -> Scrubber:
        """The table's resumable scrubber."""
        return self._scrubber

    @property
    def repair_engine(self) -> Optional[RepairEngine]:
        """The attached repair engine, or ``None``."""
        return self._engine

    def attach_repair_engine(self, engine: RepairEngine) -> None:
        """Provide the repair sources (the table knows its indices)."""
        self._engine = engine

    def check(self, block_id: int) -> None:
        """Gate a read on the quarantine, honouring the repair policy.

        Under ``"repair"``, a quarantined block triggers a repair
        attempt instead of an immediate refusal; only a failed repair
        raises.  Under any other policy a quarantined id raises
        :class:`~repro.errors.QuarantinedBlockError` directly.
        """
        if block_id not in self._quarantine:
            return
        if self._policy == "repair" and self._engine is not None:
            position = self._storage.position_of_id(block_id)
            if position is not None:
                try:
                    self.repair_block(position)
                except IntegrityError:
                    # Unrepairable: fall through to the refusal below,
                    # chained to the repair failure.
                    self._quarantine.check(block_id)
                    raise
                return
        self._quarantine.check(block_id)

    def note_corruption(self, exc: CorruptionError) -> None:
        """Quarantine the damaged block and purge cached copies."""
        if exc.block_id is None:
            return
        self._quarantine.quarantine(exc.block_id, str(exc))
        self._invalidate(exc.block_id)

    def resolve(self, exc: CorruptionError) -> None:
        """Apply the degraded-read policy to a fresh corruption hit.

        Quarantines first (containment is unconditional).  Returns
        normally only when a repair succeeded — the caller retries its
        read; otherwise raises :class:`~repro.errors.QuarantinedBlockError`
        chained to the original corruption (the ``"skip"`` policy is
        honoured by *query loops*, which catch that error per block).
        """
        self.note_corruption(exc)
        if self._policy == "repair" and self._engine is not None:
            position = (
                exc.position
                if exc.position is not None
                else self._storage.position_of_id(exc.block_id)
                if exc.block_id is not None
                else None
            )
            if position is not None:
                try:
                    self.repair_block(position)
                except IntegrityError as repair_exc:
                    raise self._quarantined(exc) from repair_exc
                return
        raise self._quarantined(exc) from exc

    def _quarantined(self, exc: CorruptionError) -> QuarantinedBlockError:
        return QuarantinedBlockError(
            f"block quarantined after corruption: {exc}",
            path=exc.path,
            block_id=exc.block_id,
            position=exc.position,
            detected_by="quarantine",
        )

    def repair_block(self, position: int) -> RepairOutcome:
        """Repair one block and, on success, release it from quarantine."""
        if self._engine is None:
            raise RepairError(
                "no repair engine attached to this table",
                position=position,
            )
        outcome = self._engine.repair(position)
        self._quarantine.release(outcome.block_id)
        self._invalidate(outcome.block_id)
        return outcome

    def scrub(
        self,
        *,
        max_blocks: Optional[int] = None,
        backfill: bool = False,
    ) -> ScrubReport:
        """Run one scrub increment, purging caches of anything it flags."""
        report = self._scrubber.scrub(
            max_blocks=max_blocks, backfill=backfill
        )
        for finding in report.findings:
            self._invalidate(finding.block_id)
        return report

    def fsck(
        self, *, repair: bool = False, backfill: bool = False
    ) -> IntegrityReport:
        """A complete pass: full scrub, then (optionally) repair.

        Runs the scrubber over the whole file from position 0 —
        regardless of any incremental cursor — quarantining every
        damaged block.  With ``repair=True``, each finding is then fed
        to the repair engine; blocks no source can prove stay
        quarantined and are listed as unrepairable.
        """
        self._scrubber.reset()
        scrub = self.scrub(backfill=backfill)
        report = IntegrityReport(scrub=scrub, backfilled=scrub.backfilled)
        for finding in scrub.findings:
            if not repair or self._engine is None:
                report.unrepairable.append(finding)
                continue
            position = self._storage.position_of_id(finding.block_id)
            if position is None:
                report.unrepairable.append(finding)
                continue
            try:
                report.repaired.append(self.repair_block(position))
            except IntegrityError:
                report.unrepairable.append(finding)
        return report

    def _invalidate(self, block_id: int) -> None:
        if self._pool is not None:
            self._pool.invalidate(block_id)
