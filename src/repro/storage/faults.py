"""Fault injection for the storage layer: torn writes, crashes, bad reads.

Durability claims are only as good as the faults they were tested under.
This module provides the adversary for :mod:`repro.storage.wal`:

* :class:`FaultInjector` — a seeded, deterministic fault plan shared by
  every device participating in one "machine": it counts writes across
  all of them and can tear, drop, or crash on the Nth write;
* :class:`FaultyDisk` — a :class:`~repro.storage.disk.SimulatedDisk`
  whose persistence step runs through the injector, so a torn block
  write persists only a prefix of the payload (the classic power-loss
  failure mode that difference coding then amplifies) and a dropped
  write leaves the old content in place;
* :class:`CrashPoint` (re-exported from :mod:`repro.errors`) — raised
  when the injector's write budget is exhausted.  Crashes are *sticky*:
  after the crash every further read or write on the same injector
  raises, exactly as a dead machine would, until :meth:`FaultInjector.disarm`
  models the reboot.

Beyond crash damage, the injector also models the *quiet* failure
classes the integrity layer (:mod:`repro.storage.integrity`) exists
for: seeded silent bit rot (:meth:`FaultyDisk.rot_block` flips one bit
of a payload at rest — no write ever misbehaved, the medium decayed)
and transient read faults (``transient_read_rate``/``transient_burst``)
that :meth:`SimulatedDisk.read_block` absorbs with bounded
retry/backoff.

Everything is seeded (lint rule R007): the same plan over the same
workload tears the same byte of the same write, so a failing crash test
replays exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    CrashPoint,
    ReadFault,
    StorageError,
    TransientReadFault,
)
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.disk import DiskModel, SimulatedDisk

__all__ = ["CRASH_MODES", "FaultInjector", "FaultStats", "FaultyDisk"]

#: How the final (crashing) write is persisted: ``torn`` keeps a strict
#: prefix of the payload, ``drop`` keeps none of it, ``clean`` persists
#: it fully (the crash lands just *after* the write reached the medium).
CRASH_MODES = ("torn", "drop", "clean")


@dataclass
class FaultStats:
    """Counters accumulated by a :class:`FaultInjector`.

    Follows the :class:`~repro.storage.disk.DiskStats` /
    :class:`~repro.storage.buffer.BufferStats` pattern: a plain mutable
    record the tests and CLI can read and reset.
    """

    writes_seen: int = 0
    reads_seen: int = 0
    torn_writes: int = 0
    dropped_writes: int = 0
    read_errors: int = 0
    crashes: int = 0
    transient_faults: int = 0
    bits_flipped: int = 0
    stalled_reads: int = 0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """All counters as one flat mapping (key-stable; see tests)."""
        return snapshot_dataclass(self)

    def reset(self) -> None:
        """Zero all counters."""
        self.writes_seen = 0
        self.reads_seen = 0
        self.torn_writes = 0
        self.dropped_writes = 0
        self.read_errors = 0
        self.crashes = 0
        self.transient_faults = 0
        self.bits_flipped = 0
        self.stalled_reads = 0


class FaultInjector:
    """A deterministic fault plan shared across storage devices.

    One injector models one machine: the data disk and the write-ahead
    log both route their persistence through it, so ``crash_after=N``
    means "the process dies on the Nth write *overall*", wherever that
    write lands.  The write that hits the crash point is persisted
    according to ``crash_mode`` (torn prefix, dropped, or fully intact)
    and then :class:`~repro.errors.CrashPoint` is raised; afterwards the
    injector is *crashed* and every I/O raises until :meth:`disarm`.
    """

    def __init__(
        self,
        *,
        crash_after: Optional[int] = None,
        crash_mode: str = "torn",
        torn_write_rate: float = 0.0,
        drop_write_rate: float = 0.0,
        read_error_rate: float = 0.0,
        transient_read_rate: float = 0.0,
        transient_burst: int = 1,
        seed: int = 0,
    ):
        if crash_mode not in CRASH_MODES:
            raise StorageError(
                f"crash_mode must be one of {CRASH_MODES}, got {crash_mode!r}"
            )
        if crash_after is not None and crash_after < 1:
            raise StorageError("crash_after counts writes from 1")
        for name, rate in (
            ("torn_write_rate", torn_write_rate),
            ("drop_write_rate", drop_write_rate),
            ("read_error_rate", read_error_rate),
            ("transient_read_rate", transient_read_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {rate}")
        if transient_burst < 1:
            raise StorageError(
                f"transient_burst must be >= 1, got {transient_burst}"
            )
        self._crash_after = crash_after
        self._crash_mode = crash_mode
        self._torn_rate = torn_write_rate
        self._drop_rate = drop_write_rate
        self._read_error_rate = read_error_rate
        self._transient_rate = transient_read_rate
        self._transient_burst = transient_burst
        self._transient_left = 0
        self._stall_ms = 0.0
        self._stalls_left = 0
        self._stall_release = threading.Event()
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._crashed = False
        self.stats = FaultStats()

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        """Whether a crash point has fired (all I/O refused)."""
        return self._crashed

    @property
    def crash_after(self) -> Optional[int]:
        """The armed crash point (write index), or ``None``."""
        return self._crash_after

    @property
    def crash_mode(self) -> str:
        """How the crashing write is persisted (torn / drop / clean)."""
        return self._crash_mode

    def arm(
        self,
        crash_after: int,
        *,
        crash_mode: Optional[str] = None,
    ) -> None:
        """(Re)arm the crash point, counting writes from zero again.

        The crash-consistency harness uses this to sweep one workload
        with the crash at every write index: build the table disarmed,
        arm at index ``k``, replay.
        """
        if crash_after < 1:
            raise StorageError("crash_after counts writes from 1")
        if crash_mode is not None:
            if crash_mode not in CRASH_MODES:
                raise StorageError(
                    f"crash_mode must be one of {CRASH_MODES}, "
                    f"got {crash_mode!r}"
                )
            self._crash_mode = crash_mode
        self._crash_after = crash_after
        self._crashed = False
        self.stats.writes_seen = 0

    def disarm(self) -> None:
        """Model the reboot: clear the crash and all fault rates.

        Recovery code runs against a disarmed injector — the machine
        that comes back up is assumed healthy.  Any read currently
        blocked on an injected stall is released immediately.
        """
        self._crash_after = None
        self._crashed = False
        self._torn_rate = 0.0
        self._drop_rate = 0.0
        self._read_error_rate = 0.0
        self._transient_rate = 0.0
        self._transient_left = 0
        self.release_stalls()

    def stall_reads(self, duration_ms: float, *, count: int = 1) -> None:
        """Make the next ``count`` reads block *wall-clock* time.

        Unlike every other fault here (which charges only simulated
        milliseconds), a stall really parks the calling thread for up to
        ``duration_ms`` — the wedged-controller failure mode that pins a
        reader thread and, without deadlines, an admission slot with it.
        The serving layer's deadline tests hang a select on exactly
        this.  :meth:`release_stalls` (or :meth:`disarm`) frees blocked
        readers early.
        """
        if duration_ms < 0:
            raise StorageError(
                f"stall duration must be >= 0 ms, got {duration_ms}"
            )
        if count < 1:
            raise StorageError(f"stall count must be >= 1, got {count}")
        self._stall_ms = duration_ms
        self._stalls_left = count
        self._stall_release.clear()

    def release_stalls(self) -> None:
        """Free any stalled readers and cancel pending stalls."""
        self._stalls_left = 0
        self._stall_release.set()

    # ------------------------------------------------------------------
    # Fault decisions
    # ------------------------------------------------------------------

    def filter_write(self, payload: bytes) -> Optional[bytes]:
        """Decide one write's fate; returns the bytes that reach the medium.

        ``None`` means the write was dropped entirely.  When the write
        is the armed crash point, the decided bytes must be persisted by
        the caller *before* this method raises — so the protocol is:
        call, persist the return value, and let :class:`CrashPoint`
        propagate (it is raised here only after the decision, via
        :meth:`_crash`).
        """
        self._require_alive()
        self.stats.writes_seen += 1
        if (
            self._crash_after is not None
            and self.stats.writes_seen >= self._crash_after
        ):
            return self._crash_payload(payload)
        if self._torn_rate and self._rng.random() < self._torn_rate:
            return self._tear(payload)
        if self._drop_rate and self._rng.random() < self._drop_rate:
            self.stats.dropped_writes += 1
            reg = _obs.REGISTRY
            if reg is not None:
                reg.inc("faults.dropped_writes")
            return None
        return payload

    def check_read(self) -> None:
        """Raise a read fault per the configured rates.

        Persistent faults (:class:`~repro.errors.ReadFault`, per
        ``read_error_rate``) model media damage — every retry re-rolls
        and may fail again.  Transient faults
        (:class:`~repro.errors.TransientReadFault`, per
        ``transient_read_rate``) model a flaky bus or controller: once
        triggered, the next ``transient_burst - 1`` reads of the same
        plan also fault, then the condition clears — so a disk with a
        retry budget of at least ``transient_burst`` always recovers.
        """
        self._require_alive()
        self.stats.reads_seen += 1
        reg = _obs.REGISTRY
        if self._stalls_left > 0:
            self._stalls_left -= 1
            self.stats.stalled_reads += 1
            if reg is not None:
                reg.inc("faults.stalled_reads")
            # Park the reader for up to the stall duration; an early
            # release_stalls()/disarm() wakes it.  The wait is real
            # time, not simulated time — that is the fault being
            # modelled.
            self._stall_release.wait(self._stall_ms / 1000.0)
            self._require_alive()
        if self._transient_left > 0:
            self._transient_left -= 1
            self.stats.transient_faults += 1
            if reg is not None:
                reg.inc("faults.transient_faults")
            raise TransientReadFault(
                f"injected transient read fault (read "
                f"#{self.stats.reads_seen}, seed {self._seed})"
            )
        if (
            self._read_error_rate
            and self._rng.random() < self._read_error_rate
        ):
            self.stats.read_errors += 1
            if reg is not None:
                reg.inc("faults.read_errors")
            raise ReadFault(
                f"injected read error (read #{self.stats.reads_seen}, "
                f"seed {self._seed})"
            )
        if (
            self._transient_rate
            and self._rng.random() < self._transient_rate
        ):
            self._transient_left = self._transient_burst - 1
            self.stats.transient_faults += 1
            if reg is not None:
                reg.inc("faults.transient_faults")
            raise TransientReadFault(
                f"injected transient read fault (read "
                f"#{self.stats.reads_seen}, seed {self._seed})"
            )

    def choose_block(self, num_choices: int) -> int:
        """Seeded choice among ``num_choices`` blocks (for bit rot)."""
        if num_choices < 1:
            raise StorageError("no blocks to choose from")
        return int(self._rng.integers(0, num_choices))

    def choose_rot_bit(self, payload_bits: int) -> int:
        """Seeded choice of which bit of a payload rots.

        Deterministic under the seed (lint rule R007), so a failing
        bit-rot test replays the exact flip.
        """
        if payload_bits < 1:
            raise StorageError("cannot rot an empty payload")
        self.stats.bits_flipped += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("faults.bits_flipped")
        return int(self._rng.integers(0, payload_bits))

    def raise_crash(self) -> None:
        """Raise the sticky :class:`~repro.errors.CrashPoint`.

        Called by the device *after* it persisted whatever
        :meth:`filter_write` decided survives the crashing write.
        """
        raise CrashPoint(
            f"injected crash after write #{self.stats.writes_seen} "
            f"(mode {self._crash_mode!r})"
        )

    def _crash_payload(self, payload: bytes) -> Optional[bytes]:
        self._crashed = True
        self.stats.crashes += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("faults.crashes")
        if self._crash_mode == "drop":
            self.stats.dropped_writes += 1
            if reg is not None:
                reg.inc("faults.dropped_writes")
            return None
        if self._crash_mode == "torn":
            return self._tear(payload)
        return payload

    def _tear(self, payload: bytes) -> bytes:
        """A strict prefix of the payload (possibly empty)."""
        self.stats.torn_writes += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("faults.torn_writes")
        if len(payload) <= 1:
            return b""
        return payload[: int(self._rng.integers(0, len(payload)))]

    def _require_alive(self) -> None:
        if self._crashed:
            raise CrashPoint(
                "device is crashed; no I/O until the injector is disarmed"
            )


class FaultyDisk(SimulatedDisk):
    """A simulated disk whose persistence runs through a fault injector.

    Shares all of :class:`~repro.storage.disk.SimulatedDisk`'s state and
    accounting; only the final "bytes land on the medium" step and the
    read path consult the injector.  A torn write leaves a strict prefix
    of the payload in the block (decoding it later fails or yields
    garbage — which is why recovery never trusts post-crash block
    contents), a dropped write leaves the previous content.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        model: Optional[DiskModel] = None,
        *,
        injector: Optional[FaultInjector] = None,
        read_retry_limit: int = 0,
        retry_backoff_ms: float = 5.0,
    ):
        super().__init__(
            block_size=block_size,
            model=model,
            read_retry_limit=read_retry_limit,
            retry_backoff_ms=retry_backoff_ms,
        )
        self._injector = injector if injector is not None else FaultInjector()

    @property
    def injector(self) -> FaultInjector:
        """The shared fault plan (arm/disarm/stats live here)."""
        return self._injector

    @property
    def fault_stats(self) -> FaultStats:
        """Shortcut to ``injector.stats``."""
        return self._injector.stats

    def _store_block(self, block_id: int, payload: bytes) -> None:
        persisted = self._injector.filter_write(payload)
        if persisted is not None:
            super()._store_block(block_id, persisted)
        if self._injector.crashed:
            self._injector.raise_crash()

    def _read_attempt(self, block_id: int) -> bytes:
        self._injector.check_read()
        return super()._read_attempt(block_id)

    def rot_block(self, block_id: Optional[int] = None) -> Tuple[int, int]:
        """Silently flip one seeded bit of a stored payload, at rest.

        The *silent* counterpart of torn and dropped writes: nothing in
        the write path misbehaved, the medium decayed afterwards.  No
        I/O is charged and no write is counted — only a scrub or a
        checksummed read can notice.  Returns ``(block_id, bit_index)``
        so a test can assert exactly which flip was detected.
        """
        if block_id is None:
            ids = self.block_ids()
            if not ids:
                raise StorageError("no stored blocks to rot")
            block_id = ids[self._injector.choose_block(len(ids))]
        bit = self._injector.choose_rot_bit(self.stored_size(block_id) * 8)
        self.corrupt_stored(block_id, bit)
        return block_id, bit
