"""Write-ahead logging and crash recovery for durable tables.

The paper's Section 4 mutations are block-local and eager: an insert
re-codes the affected block in place.  That is fast, but a crash between
(or worse, *during*) block writes leaves the file arbitrarily damaged —
and difference coding amplifies a torn block write into every tuple
behind the tear.  This module adds the classic cure:

* an **append-only, CRC-framed redo/undo log** on the real filesystem,
  reusing the container framing conventions of :mod:`repro.io.format`
  (big-endian fixed-width fields, CRC32 over every body, schema and
  codec configuration in a JSON header);
* a **logical checkpoint** record carrying the full phi-ordinal image of
  the table — mutations between checkpoints are logged as logical
  operations (``insert ordinal`` / ``delete ordinal``), which compose
  with block splits for free, exactly like the logical undo of
  :mod:`repro.db.transactions`;
* :func:`recover` — on open, replay the last checkpoint image plus every
  *committed* operation after it, discard uncommitted ones, and rewrite
  the data blocks from scratch.  Post-crash block contents are never
  trusted: a torn write may have left a decodable-looking prefix.

Durability protocol (write-ahead in the only sense that matters for
redo-from-image recovery):

1. operations append to an in-memory tail (the "OS cache");
2. ``commit`` appends a COMMIT record and **forces** the tail to the
   file — only then does commit return;
3. a crash discards the unforced tail; a torn force leaves a torn log
   tail, which recovery truncates at the last CRC-valid record.

A force is ``write + flush + os.fsync``: flush alone only moves the
tail into the OS page cache, so a machine crash (as opposed to a mere
process crash) could still lose a "committed" transaction.  The
``sync=False`` escape hatch downgrades a force to flush-only for tests
and benchmarks that model process crashes via the fault injector and
do not want to pay the fsync on every commit.

A clean close writes CHECKPOINT + CLEAN (the CLEAN record carries the
physical block directory); re-opening a log whose *final* record is
CLEAN attaches the existing blocks without rewriting anything —
recovery of a cleanly closed table is a byte-for-byte no-op.

The CLEAN optimisation makes the clean→dirty transition the one place
where logging must truly happen *ahead* of the data write: while the
durable log ends in CLEAN, recovery will trust the recorded directory,
so the first data-block mutation after a clean state must be preceded
by :meth:`WriteAheadLog.ensure_dirty` — forcing at least one record so
a crash that tears the data write also invalidates the CLEAN marker.
(If that force itself is torn away, no data write has happened yet and
the CLEAN directory is still accurate — correct either way.)

Checkpoints are forbidden while a transaction is open: the image must
contain committed state only.

All file formats here are fuzz-tested: any byte flip in a log record is
detected (CRC reject, or clean truncation at the last valid record) —
see ``tests/io/test_corruption_fuzz.py``.
"""

from __future__ import annotations

import json
import os
import zlib
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.codec import BlockCodec
from repro.errors import StorageError, WALError
from repro.obs import runtime as _obs
from repro.obs.snapshot import snapshot_dataclass
from repro.io.schema_json import schema_from_dict, schema_to_dict
from repro.relational.schema import Schema
from repro.storage.avqfile import AVQFile
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultInjector

__all__ = [
    "REC_ABORT",
    "REC_BEGIN",
    "REC_CHECKPOINT",
    "REC_CLEAN",
    "REC_COMMIT",
    "REC_DELETE",
    "REC_INSERT",
    "LogImage",
    "RecoveryReport",
    "WALHeader",
    "WALRecord",
    "WALStats",
    "WriteAheadLog",
    "read_log",
    "recover",
    "replay_records",
]

_MAGIC = b"AVQW"
_VERSION = 1

#: Record types (one byte on the wire).
REC_BEGIN = 1
REC_INSERT = 2
REC_DELETE = 3
REC_COMMIT = 4
REC_ABORT = 5
REC_CHECKPOINT = 6
REC_CLEAN = 7

_OP_TYPES = (REC_INSERT, REC_DELETE)
_TID_TYPES = (REC_BEGIN, REC_INSERT, REC_DELETE, REC_COMMIT, REC_ABORT)

#: Directory entry carried by a CLEAN record:
#: ``(block_id, first_ordinal, last_ordinal, tuple_count)``, optionally
#: extended with a fifth element — the block payload's CRC32 (or
#: ``None`` when unknown) — so clean shutdown round-trips checksums and
#: a reattached table can verify reads immediately.  Four-element
#: entries (pre-checksum logs) remain decodable forever.
DirectoryEntry = Union[
    Tuple[int, int, int, int],
    Tuple[int, int, int, int, Optional[int]],
]


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record.

    Only the fields relevant to ``rtype`` are meaningful: ``tid`` for
    transaction records, ``ordinal`` for operations, ``ordinals`` for a
    checkpoint image, ``directory`` for a CLEAN record.
    """

    rtype: int
    tid: int = 0
    ordinal: int = 0
    ordinals: Tuple[int, ...] = ()
    directory: Tuple[DirectoryEntry, ...] = ()


@dataclass(frozen=True)
class WALHeader:
    """The log's self-description (mirrors the container header)."""

    schema: Schema
    chained: bool
    representative: str
    block_size: int

    def make_codec(self) -> BlockCodec:
        """The block codec the logged table was coded with."""
        return BlockCodec(
            self.schema.domain_sizes,
            chained=self.chained,
            representative=self.representative,
        )


@dataclass
class WALStats:
    """Counters for one log, in the ``DiskStats``/``BufferStats`` mould."""

    records_appended: int = 0
    bytes_durable: int = 0
    forces: int = 0
    begins: int = 0
    commits: int = 0
    aborts: int = 0
    checkpoints: int = 0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """All counters as one flat mapping (key-stable; see tests)."""
        return snapshot_dataclass(self)

    def reset(self) -> None:
        """Zero all counters."""
        self.records_appended = 0
        self.bytes_durable = 0
        self.forces = 0
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0


@dataclass(frozen=True)
class LogImage:
    """The logical state a log prefix proves: replay's output."""

    ordinals: List[int]
    clean: bool
    directory: Tuple[DirectoryEntry, ...]
    committed_txns: int
    discarded_txns: int
    replayed_ops: int


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` found and did."""

    clean: bool
    records_scanned: int
    truncated_at: Optional[int]
    committed_txns: int
    discarded_txns: int
    replayed_ops: int
    tuples: int
    blocks_rebuilt: int


# ----------------------------------------------------------------------
# Record encoding / decoding
# ----------------------------------------------------------------------


def _encode_uint(value: int) -> bytes:
    """Length-prefixed big-endian unsigned int (arbitrary precision).

    Ordinals can exceed 64 bits for wide schemas (the container format
    stores them as decimal strings for the same reason), so the wire
    form is ``u16 length`` followed by minimal big-endian bytes.
    """
    if value < 0:
        raise WALError(f"cannot encode negative value {value}")
    width = (value.bit_length() + 7) // 8
    return width.to_bytes(2, "big") + value.to_bytes(width, "big")


def _decode_uint(body: bytes, off: int) -> Tuple[int, int]:
    if off + 2 > len(body):
        raise WALError("record body too short for a uint length prefix")
    width = int.from_bytes(body[off : off + 2], "big")
    off += 2
    if off + width > len(body):
        raise WALError("record body too short for its uint payload")
    return int.from_bytes(body[off : off + width], "big"), off + width


def _encode_record(record: WALRecord) -> bytes:
    body = bytes([record.rtype])
    if record.rtype in _TID_TYPES:
        body += record.tid.to_bytes(8, "big")
    if record.rtype in _OP_TYPES:
        body += _encode_uint(record.ordinal)
    elif record.rtype == REC_CHECKPOINT:
        image = json.dumps(
            [str(o) for o in record.ordinals], separators=(",", ":")
        )
        body += zlib.compress(image.encode("ascii"))
    elif record.rtype == REC_CLEAN:
        rows: List[List[object]] = []
        for entry in record.directory:
            row: List[object] = [
                entry[0], str(entry[1]), str(entry[2]), entry[3]
            ]
            if len(entry) == 5:
                row.append(entry[4])
            rows.append(row)
        listing = json.dumps(rows, separators=(",", ":"))
        body += zlib.compress(listing.encode("ascii"))
    return (
        len(body).to_bytes(4, "big") + body + zlib.crc32(body).to_bytes(4, "big")
    )


def _decode_body(body: bytes) -> WALRecord:
    """Decode a CRC-valid record body; :class:`WALError` if impossible.

    A CRC-valid body that fails to decode indicates writer corruption
    (the CRC already rules out crash damage and bit rot), so this raises
    rather than truncating.
    """
    if not body:
        raise WALError("empty record body")
    rtype = body[0]
    off = 1
    if rtype in _TID_TYPES:
        if len(body) < 9:
            raise WALError("record body too short for a transaction id")
        tid = int.from_bytes(body[1:9], "big")
        off = 9
        if rtype in _OP_TYPES:
            ordinal, off = _decode_uint(body, off)
            _require_exact(body, off)
            return WALRecord(rtype=rtype, tid=tid, ordinal=ordinal)
        _require_exact(body, off)
        return WALRecord(rtype=rtype, tid=tid)
    if rtype == REC_CHECKPOINT:
        return WALRecord(
            rtype=rtype, ordinals=tuple(_decode_json_ints(body[off:]))
        )
    if rtype == REC_CLEAN:
        return WALRecord(
            rtype=rtype, directory=_decode_directory(body[off:])
        )
    raise WALError(f"unknown record type {rtype}")


def _require_exact(body: bytes, off: int) -> None:
    if off != len(body):
        raise WALError(
            f"record body has {len(body) - off} trailing bytes"
        )


def _decode_json_ints(blob: bytes) -> List[int]:
    try:
        listing = json.loads(zlib.decompress(blob).decode("ascii"))
        return [int(item) for item in listing]
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError,
            TypeError, ValueError) as exc:
        raise WALError("malformed checkpoint image") from exc


def _decode_directory(blob: bytes) -> Tuple[DirectoryEntry, ...]:
    try:
        listing = json.loads(zlib.decompress(blob).decode("ascii"))
        entries: List[DirectoryEntry] = []
        for row in listing:
            if len(row) not in (4, 5):
                raise WALError(
                    f"clean-shutdown directory row has {len(row)} "
                    "fields, expected 4 or 5"
                )
            base = (int(row[0]), int(row[1]), int(row[2]), int(row[3]))
            if len(row) == 5:
                crc = None if row[4] is None else int(row[4])
                entries.append(base + (crc,))
            else:
                entries.append(base)
        return tuple(entries)
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError,
            TypeError, ValueError) as exc:
        raise WALError("malformed clean-shutdown directory") from exc


# ----------------------------------------------------------------------
# Reading a log file
# ----------------------------------------------------------------------


def read_log(
    path: str,
) -> Tuple[WALHeader, List[WALRecord], Optional[int], int]:
    """Parse a log file into its valid prefix.

    Returns ``(header, records, truncated_at, valid_end)``.  A torn or
    corrupt tail does not raise: scanning stops at the first frame whose
    length, bytes, or CRC do not check out, and ``truncated_at`` is that
    frame's byte offset (``None`` for a log that ends exactly on a
    record boundary).  ``valid_end`` is the offset one past the last
    valid record — the append point after tail repair.

    Header damage *does* raise: without the schema the log is
    unusable, and the header is CRC-protected so any flip is detected.
    """
    with open(path, "rb") as f:
        data = f.read()
    header, off = _parse_header(path, data)

    records: List[WALRecord] = []
    truncated: Optional[int] = None
    while off < len(data):
        if off + 4 > len(data):
            truncated = off
            break
        body_len = int.from_bytes(data[off : off + 4], "big")
        end = off + 4 + body_len + 4
        if body_len < 1 or end > len(data):
            truncated = off
            break
        body = data[off + 4 : off + 4 + body_len]
        crc = int.from_bytes(data[end - 4 : end], "big")
        if zlib.crc32(body) != crc:
            truncated = off
            break
        records.append(_decode_body(body))
        off = end
    valid_end = off if truncated is None else truncated
    return header, records, truncated, valid_end


def _parse_header(path: str, data: bytes) -> Tuple[WALHeader, int]:
    if data[:4] != _MAGIC:
        raise StorageError(
            f"{path}: not a write-ahead log (magic {data[:4]!r})"
        )
    version = int.from_bytes(data[4:6], "big")
    if version != _VERSION:
        raise StorageError(f"{path}: unsupported log version {version}")
    if len(data) < 10:
        raise StorageError(f"{path}: truncated log header")
    header_len = int.from_bytes(data[6:10], "big")
    end = 10 + header_len + 4
    if end > len(data):
        raise StorageError(f"{path}: truncated log header")
    raw = data[10 : 10 + header_len]
    crc = int.from_bytes(data[end - 4 : end], "big")
    if zlib.crc32(raw) != crc:
        raise WALError(f"{path}: log header failed its checksum")
    try:
        header = json.loads(raw.decode("utf-8"))
        schema = schema_from_dict(header["schema"])
        codec_cfg = header["codec"]
        parsed = WALHeader(
            schema=schema,
            chained=bool(codec_cfg["chained"]),
            representative=str(codec_cfg["representative"]),
            block_size=int(header["block_size"]),
        )
    except (KeyError, TypeError, ValueError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise WALError(f"{path}: malformed log header") from exc
    return parsed, end


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


def replay_records(records: Sequence[WALRecord]) -> LogImage:
    """Compute the logical table state a record sequence proves.

    Start from the last CHECKPOINT image (empty if none survived),
    apply every operation after it whose transaction has a COMMIT record
    anywhere in the log, in log order; ignore operations of transactions
    that never committed (crash-discard and explicit abort look the
    same).  The result is ``clean`` when the final record is CLEAN —
    meaning the on-disk blocks match the image exactly and carry the
    recorded physical directory.
    """
    committed = {r.tid for r in records if r.rtype == REC_COMMIT}
    begun = {r.tid for r in records if r.rtype == REC_BEGIN}
    ckpt_idx: Optional[int] = None
    for i, r in enumerate(records):
        if r.rtype == REC_CHECKPOINT:
            ckpt_idx = i

    image: List[int] = []
    start = 0
    if ckpt_idx is not None:
        image = list(records[ckpt_idx].ordinals)
        start = ckpt_idx + 1

    replayed = 0
    for r in records[start:]:
        if r.rtype == REC_INSERT and r.tid in committed:
            insort(image, r.ordinal)
            replayed += 1
        elif r.rtype == REC_DELETE and r.tid in committed:
            i = bisect_left(image, r.ordinal)
            if i >= len(image) or image[i] != r.ordinal:
                raise WALError(
                    f"committed delete of ordinal {r.ordinal} (txn "
                    f"{r.tid}) finds no such tuple in the replayed image"
                )
            image.pop(i)
            replayed += 1

    clean = bool(records) and records[-1].rtype == REC_CLEAN
    directory = records[-1].directory if clean else ()
    return LogImage(
        ordinals=image,
        clean=clean,
        directory=directory,
        committed_txns=len(committed),
        discarded_txns=len(begun - committed),
        replayed_ops=replayed,
    )


# ----------------------------------------------------------------------
# The log object
# ----------------------------------------------------------------------


class WriteAheadLog:
    """An append-only, CRC-framed transaction log on the filesystem.

    Records appended through :meth:`log_insert` / :meth:`log_delete` /
    :meth:`begin` buffer in an in-memory tail; :meth:`force` makes the
    tail durable (one injected "write", so crash points can tear the
    log mid-force).  :meth:`commit` forces; :meth:`abort` does not —
    recovery discards by default, so abort records are advisory.
    """

    def __init__(
        self,
        path: str,
        header: WALHeader,
        *,
        injector: Optional[FaultInjector] = None,
        sync: bool = True,
        _file: Optional[IO[bytes]] = None,
        _next_tid: int = 1,
    ):
        self._path = path
        self._header = header
        self._injector = injector
        self._sync = sync
        self._file = _file if _file is not None else open(path, "ab")
        self._pending = bytearray()
        self._next_tid = _next_tid
        self._closed = False
        self._clean_on_disk = False
        self.stats = WALStats()
        #: Parse results from :meth:`open` (empty for a created log).
        self.records_at_open: Tuple[WALRecord, ...] = ()
        self.truncated_at_open: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        schema: Schema,
        *,
        codec: Optional[BlockCodec] = None,
        block_size: int,
        injector: Optional[FaultInjector] = None,
        sync: bool = True,
    ) -> "WriteAheadLog":
        """Start a fresh log: header only, no records yet.

        The header write is part of table *setup*, not the logged
        workload, so it bypasses fault injection (a table that failed to
        create has nothing to recover).  ``sync=False`` downgrades every
        force to flush-only (see the module docstring) — commits then
        survive process crashes but not OS crashes.
        """
        codec = codec or BlockCodec(schema.domain_sizes)
        header = WALHeader(
            schema=schema,
            chained=codec.chained,
            representative=codec.representative_strategy,
            block_size=block_size,
        )
        header_json = json.dumps(
            {
                "schema": schema_to_dict(schema),
                "codec": {
                    "chained": header.chained,
                    "representative": header.representative,
                },
                "block_size": block_size,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        f = open(path, "wb")
        try:
            f.write(_MAGIC)
            f.write(_VERSION.to_bytes(2, "big"))
            f.write(len(header_json).to_bytes(4, "big"))
            f.write(header_json)
            f.write(zlib.crc32(header_json).to_bytes(4, "big"))
            f.flush()
        except BaseException:
            f.close()
            raise
        return cls(path, header, injector=injector, sync=sync, _file=f)

    @classmethod
    def open(
        cls,
        path: str,
        *,
        injector: Optional[FaultInjector] = None,
        sync: bool = True,
    ) -> "WriteAheadLog":
        """Open an existing log for append, repairing any torn tail.

        The valid record prefix is parsed (and kept on
        ``records_at_open`` for :func:`recover`); bytes past the last
        CRC-valid record — a torn force — are truncated away so new
        appends land on a clean boundary.
        """
        header, records, truncated, valid_end = read_log(path)
        if truncated is not None:
            with open(path, "r+b") as repair:
                repair.truncate(valid_end)
        tids = [r.tid for r in records if r.rtype in _TID_TYPES]
        wal = cls(
            path,
            header,
            injector=injector,
            sync=sync,
            _next_tid=max(tids) + 1 if tids else 1,
        )
        wal.records_at_open = tuple(records)
        wal.truncated_at_open = truncated
        wal._clean_on_disk = bool(records) and records[-1].rtype == REC_CLEAN
        return wal

    def close(self) -> None:
        """Flush any pending tail and release the file handle.

        Does *not* write CHECKPOINT/CLEAN — that is
        :meth:`repro.db.table.Table.close`'s job, which knows the block
        directory.
        """
        if self._closed:
            return
        self.force()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """Filesystem path of the log."""
        return self._path

    @property
    def header(self) -> WALHeader:
        """The log's schema/codec/block-size self-description."""
        return self._header

    @property
    def pending_bytes(self) -> int:
        """Bytes appended but not yet forced (lost in a crash)."""
        return len(self._pending)

    @property
    def sync(self) -> bool:
        """Whether a force fsyncs (True) or merely flushes (False)."""
        return self._sync

    @property
    def clean_on_disk(self) -> bool:
        """Whether the durable log currently ends in a CLEAN record.

        While true, recovery would attach the recorded block directory
        verbatim — so data blocks must not be mutated until
        :meth:`ensure_dirty` has invalidated the marker.
        """
        return self._clean_on_disk

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def begin(self) -> int:
        """Allocate a transaction id and log BEGIN; returns the tid."""
        tid = self._next_tid
        self._next_tid += 1
        self._append(WALRecord(rtype=REC_BEGIN, tid=tid))
        self.stats.begins += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.begins")
        return tid

    def log_insert(self, tid: int, ordinal: int) -> None:
        """Log one insert under ``tid`` (buffered until the next force)."""
        self._append(WALRecord(rtype=REC_INSERT, tid=tid, ordinal=ordinal))

    def log_delete(self, tid: int, ordinal: int) -> None:
        """Log one delete under ``tid`` (buffered until the next force)."""
        self._append(WALRecord(rtype=REC_DELETE, tid=tid, ordinal=ordinal))

    def commit(self, tid: int) -> None:
        """Log COMMIT and force; when this returns, the txn is durable."""
        self._append(WALRecord(rtype=REC_COMMIT, tid=tid))
        self.stats.commits += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.commits")
        self.force()

    def abort(self, tid: int) -> None:
        """Log ABORT (advisory: recovery discards uncommitted anyway)."""
        self._append(WALRecord(rtype=REC_ABORT, tid=tid))
        self.stats.aborts += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.aborts")

    def checkpoint(self, ordinals: Iterable[int]) -> None:
        """Log a full logical image and force it."""
        self._append(
            WALRecord(rtype=REC_CHECKPOINT, ordinals=tuple(ordinals))
        )
        self.stats.checkpoints += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.checkpoints")
        self.force()

    def write_clean(self, directory: Iterable[DirectoryEntry]) -> None:
        """Log the physical directory as a clean-shutdown marker.

        Valid only while it remains the *final* record: any later append
        supersedes it, and recovery falls back to checkpoint replay.
        """
        self._append(
            WALRecord(rtype=REC_CLEAN, directory=tuple(directory))
        )
        self.force()
        self._clean_on_disk = True

    def ensure_dirty(self) -> None:
        """Durably supersede a CLEAN marker before the first data write.

        Forces the pending tail — typically the transaction's BEGIN; if
        nothing is pending, a marker BEGIN (a transaction that never
        commits, which recovery discards) is appended first.  After
        this, any crash makes recovery rebuild from the checkpoint
        image instead of trusting a directory whose blocks are about to
        change.  If the force itself is torn away the log still ends in
        CLEAN, but then no data block has changed yet and the recorded
        directory is still accurate.  A no-op when the log is already
        dirty.
        """
        if not self._clean_on_disk:
            return
        if not self._pending:
            self.begin()
        self.force()

    def force(self) -> None:
        """Make the pending tail durable (one injectable write).

        A torn force persists a prefix of the tail — recovery's
        truncation rule turns that into "the unforced records never
        happened", which is exactly the crash semantics commit relies
        on.  Unless ``sync=False`` was requested, the force fsyncs:
        flush alone leaves the tail in the OS page cache, where a
        machine crash would discard it after commit already returned.
        """
        if self._closed:
            raise StorageError(f"{self._path}: log is closed")
        if not self._pending:
            return
        payload = bytes(self._pending)
        crash = False
        if self._injector is not None:
            payload_opt = self._injector.filter_write(payload)
            crash = self._injector.crashed
            payload = payload_opt if payload_opt is not None else b""
        if payload:
            self._file.write(payload)
            self._file.flush()
            if self._sync:
                os.fsync(self._file.fileno())
            self.stats.bytes_durable += len(payload)
        self._pending.clear()
        self._clean_on_disk = False
        self.stats.forces += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.forces")
            reg.inc("wal.bytes_durable", len(payload))
        if crash and self._injector is not None:
            self._injector.raise_crash()

    def _append(self, record: WALRecord) -> None:
        if self._closed:
            raise StorageError(f"{self._path}: log is closed")
        self._pending += _encode_record(record)
        self.stats.records_appended += 1
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.records_appended")


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


def recover(
    disk: SimulatedDisk,
    wal: Union[str, WriteAheadLog],
) -> Tuple[AVQFile, RecoveryReport]:
    """Bring a table's storage to a consistent, durable state.

    ``wal`` may be a path (opened here, tail-repaired, and left closed
    after recovery completes) or an already-open :class:`WriteAheadLog`
    (used by :meth:`repro.db.table.Table.open`, which keeps appending to
    it afterwards).

    *Clean log* (final record is CLEAN): attach the recorded block
    directory — zero disk I/O, zero log appends, byte-for-byte no-op.

    *Anything else*: rebuild.  The logical image (last checkpoint plus
    committed operations) is repacked onto fresh blocks — post-crash
    block contents are never read, because a torn write can leave
    plausible-looking garbage — and the log is re-based with a new
    CHECKPOINT + CLEAN pair so an immediately repeated open is clean.
    """
    owns_wal = isinstance(wal, str)
    log = WriteAheadLog.open(wal) if isinstance(wal, str) else wal
    try:
        with _obs.span("wal.recover") as sp:
            image = replay_records(log.records_at_open)
            codec = log.header.make_codec()
            schema = log.header.schema
            if image.clean:
                storage = AVQFile.attach(
                    schema, disk, image.directory, codec=codec
                )
                blocks_rebuilt = 0
            else:
                storage = AVQFile.from_ordinals(
                    schema, disk, image.ordinals, codec=codec
                )
                blocks_rebuilt = storage.num_blocks
                log.checkpoint(image.ordinals)
                log.write_clean(storage.directory_entries_checked())
            if sp is not None:
                sp.set_attribute("clean", image.clean)
                sp.set_attribute("replayed_ops", image.replayed_ops)
                sp.set_attribute("blocks_rebuilt", blocks_rebuilt)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("wal.recoveries")
            reg.inc("wal.replayed_ops", image.replayed_ops)
            reg.inc("wal.blocks_rebuilt", blocks_rebuilt)
        report = RecoveryReport(
            clean=image.clean,
            records_scanned=len(log.records_at_open),
            truncated_at=log.truncated_at_open,
            committed_txns=image.committed_txns,
            discarded_txns=image.discarded_txns,
            replayed_ops=image.replayed_ops,
            tuples=storage.num_tuples,
            blocks_rebuilt=blocks_rebuilt,
        )
    finally:
        if owns_wal:
            log.close()
    return storage, report
