"""The Section 5.3 analytic response-time model (Equations 5.7 and 5.8).

    C1 = I + N (t1 + t2)      coded relation
    C2 = I + N (t1 + t3)      uncoded relation

``I`` is index search time, dominated by reading the secondary index's
blocks, which the paper sizes at 5% of the data blocks; ``N`` is the
number of data blocks a query touches; ``t1`` the per-block I/O time;
``t2`` block decode time; ``t3`` plain tuple extraction time.

Everything here reproduces the paper's arithmetic exactly — plugging in
the Figure 5.8/5.9 constants regenerates rows 5–11 of Figure 5.9 to the
printed precision (see ``tests/experiments`` and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.perf.machines import MachineProfile

__all__ = [
    "PAPER_T1_MS",
    "INDEX_BLOCK_FRACTION",
    "index_search_time_s",
    "response_time_s",
    "improvement_percent",
    "ResponseTimeRow",
    "response_time_table",
]

#: The paper's rounded single-block I/O time (Section 5.3.2).
PAPER_T1_MS = 30.0

#: "Assuming the number of secondary index blocks to be 5% of the total
#: number of data blocks" (Section 5.3.1).
INDEX_BLOCK_FRACTION = 0.05


def index_search_time_s(
    num_data_blocks: float,
    *,
    t1_ms: float = PAPER_T1_MS,
    index_fraction: float = INDEX_BLOCK_FRACTION,
) -> float:
    """``I``: time to read the secondary index blocks, in seconds.

    >>> round(index_search_time_s(189), 3)   # paper row 5 prints 0.283
    0.284
    >>> round(index_search_time_s(64), 3)    # paper row 6
    0.096
    """
    if num_data_blocks < 0:
        raise ReproError(f"block count must be >= 0, got {num_data_blocks}")
    return num_data_blocks * index_fraction * t1_ms / 1000.0


def response_time_s(
    index_time_s: float,
    blocks_accessed: float,
    *,
    t1_ms: float = PAPER_T1_MS,
    cpu_ms_per_block: float = 0.0,
) -> float:
    """Equations 5.7/5.8: ``I + N (t1 + t_cpu)`` in seconds.

    ``cpu_ms_per_block`` is ``t2`` for the coded relation and ``t3`` for
    the uncoded one.
    """
    if blocks_accessed < 0:
        raise ReproError(f"blocks accessed must be >= 0, got {blocks_accessed}")
    return index_time_s + blocks_accessed * (t1_ms + cpu_ms_per_block) / 1000.0


def improvement_percent(c_coded: float, c_uncoded: float) -> float:
    """Figure 5.9 row 11: ``100 (1 - C1/C2)``."""
    if c_uncoded <= 0:
        raise ReproError(f"uncoded cost must be positive, got {c_uncoded}")
    return 100.0 * (1.0 - c_coded / c_uncoded)


@dataclass(frozen=True)
class ResponseTimeRow:
    """One machine's column of Figure 5.9."""

    machine: str
    coding_ms: float          # row 1
    decoding_ms: float        # row 2 (t2)
    t1_ms: float              # row 3
    extract_ms: float         # row 4 (t3)
    index_time_uncoded_s: float   # row 5
    index_time_coded_s: float     # row 6
    blocks_uncoded: float     # row 7 (N)
    blocks_coded: float       # row 8 (N)
    total_uncoded_s: float    # row 9 (C2)
    total_coded_s: float      # row 10 (C1)
    improvement_pct: float    # row 11


def response_time_table(
    machines: List[MachineProfile],
    *,
    data_blocks_uncoded: float,
    data_blocks_coded: float,
    blocks_accessed_uncoded: float,
    blocks_accessed_coded: float,
    t1_ms: float = PAPER_T1_MS,
    index_fraction: float = INDEX_BLOCK_FRACTION,
) -> List[ResponseTimeRow]:
    """Assemble the full Figure 5.9 table for a set of machines.

    ``data_blocks_*`` size the index (rows 5-6); ``blocks_accessed_*``
    are the average ``N`` of the query sweep (rows 7-8).
    """
    rows: List[ResponseTimeRow] = []
    i_uncoded = index_search_time_s(
        data_blocks_uncoded, t1_ms=t1_ms, index_fraction=index_fraction
    )
    i_coded = index_search_time_s(
        data_blocks_coded, t1_ms=t1_ms, index_fraction=index_fraction
    )
    for m in machines:
        c2 = response_time_s(
            i_uncoded,
            blocks_accessed_uncoded,
            t1_ms=t1_ms,
            cpu_ms_per_block=m.extract_ms,
        )
        c1 = response_time_s(
            i_coded,
            blocks_accessed_coded,
            t1_ms=t1_ms,
            cpu_ms_per_block=m.decoding_ms,
        )
        rows.append(
            ResponseTimeRow(
                machine=m.name,
                coding_ms=m.coding_ms,
                decoding_ms=m.decoding_ms,
                t1_ms=t1_ms,
                extract_ms=m.extract_ms,
                index_time_uncoded_s=i_uncoded,
                index_time_coded_s=i_coded,
                blocks_uncoded=blocks_accessed_uncoded,
                blocks_coded=blocks_accessed_coded,
                total_uncoded_s=c2,
                total_coded_s=c1,
                improvement_pct=improvement_percent(c1, c2),
            )
        )
    return rows
