"""Replay-based response-time simulation — the analytic model, checked.

Section 5.3 *computes* C1 and C2 from the decomposition
``I + N (t1 + t_cpu)``.  This module closes the loop: it replays an
actual query workload against real stored tables (blocks genuinely read
from the simulated disk, index probes genuinely executed) and prices
each component as it happens:

* every data-block read costs one ``t1`` from the disk model;
* every read block of a *coded* table costs one ``t2`` (the machine
  profile's decode time), of an uncoded table one ``t3``;
* index I/O is priced as the paper does — 5% of the file's data blocks
  per probe — unless the caller overrides the fraction.

The result is a per-workload simulated wall time that can be compared
against the Equation 5.7/5.8 prediction; agreement (tested) shows the
paper's analytic shortcut is faithful to the execution it abstracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.db.query import RangeQuery
from repro.db.table import Table
from repro.errors import QueryError
from repro.perf.costmodel import INDEX_BLOCK_FRACTION, PAPER_T1_MS
from repro.perf.machines import MachineProfile

__all__ = ["WorkloadCost", "simulate_workload", "predicted_workload_cost"]


@dataclass(frozen=True)
class WorkloadCost:
    """Priced outcome of replaying one workload on one table."""

    machine: str
    queries: int
    blocks_read: int
    tuples_returned: int
    io_ms: float
    cpu_ms: float
    index_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end simulated time."""
        return self.io_ms + self.cpu_ms + self.index_ms

    @property
    def total_s(self) -> float:
        """End-to-end simulated time in seconds."""
        return self.total_ms / 1000.0

    @property
    def mean_query_ms(self) -> float:
        """Average simulated time per query."""
        if self.queries == 0:
            return 0.0
        return self.total_ms / self.queries


def simulate_workload(
    table: Table,
    queries: Sequence[RangeQuery],
    machine: MachineProfile,
    *,
    t1_ms: float = PAPER_T1_MS,
    index_fraction: float = INDEX_BLOCK_FRACTION,
) -> WorkloadCost:
    """Replay ``queries`` against ``table`` and price every access.

    The per-block CPU charge is ``t2`` (decode) for compressed tables
    and ``t3`` (extract) for heap tables, from the given machine profile
    — exactly the paper's cost split.
    """
    if not isinstance(table, Table):
        raise QueryError("simulate_workload expects a Table")
    cpu_per_block = (
        machine.decoding_ms if table.compressed else machine.extract_ms
    )
    index_ms_per_query = table.num_blocks * index_fraction * t1_ms

    blocks = 0
    tuples = 0
    for q in queries:
        result = table.select(q)
        blocks += result.blocks_read
        tuples += result.cardinality
    return WorkloadCost(
        machine=machine.name,
        queries=len(queries),
        blocks_read=blocks,
        tuples_returned=tuples,
        io_ms=blocks * t1_ms,
        cpu_ms=blocks * cpu_per_block,
        index_ms=index_ms_per_query * len(queries),
    )


def predicted_workload_cost(
    table: Table,
    avg_blocks_per_query: float,
    num_queries: int,
    machine: MachineProfile,
    *,
    t1_ms: float = PAPER_T1_MS,
    index_fraction: float = INDEX_BLOCK_FRACTION,
) -> float:
    """Equation 5.7/5.8 prediction for the same workload, in ms.

    ``num_queries x (I + N_avg (t1 + t_cpu))`` — the quantity
    :func:`simulate_workload` must reproduce when fed the workload whose
    average N is ``avg_blocks_per_query``.
    """
    cpu_per_block = (
        machine.decoding_ms if table.compressed else machine.extract_ms
    )
    index_ms = table.num_blocks * index_fraction * t1_ms
    per_query = index_ms + avg_blocks_per_query * (t1_ms + cpu_per_block)
    return per_query * num_queries
