"""Wall-clock timing helpers matching the paper's Section 5.2 method.

"For each of them, we perform the coding 100 times, and then the
decoding 100 times.  The average times for each operation are then
computed."  :func:`mean_time_ms` is exactly that; :class:`Stopwatch` is
the accumulating variant the experiment drivers use.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.errors import ReproError

__all__ = ["mean_time_ms", "StageTimer", "Stopwatch"]


def mean_time_ms(fn: Callable[[], object], repeats: int = 100) -> float:
    """Mean wall-clock milliseconds of ``fn()`` over ``repeats`` runs."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = time.perf_counter() - start
    return elapsed * 1000.0 / repeats


class Stopwatch:
    """Accumulate wall time across explicitly bracketed sections."""

    def __init__(self):
        self._total = 0.0
        self._started = None
        self._laps = 0

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._total += time.perf_counter() - self._started
        self._started = None
        self._laps += 1

    @property
    def total_ms(self) -> float:
        """Accumulated milliseconds."""
        return self._total * 1000.0

    @property
    def laps(self) -> int:
        """Number of completed sections."""
        return self._laps

    @property
    def mean_ms(self) -> float:
        """Mean milliseconds per section."""
        if self._laps == 0:
            return 0.0
        return self.total_ms / self._laps


class StageTimer:
    """Named per-stage wall-clock accumulation for multi-phase pipelines.

    The parallel codec and the bulk-load path run in distinguishable
    stages (pack, encode, write, decode, ...); a ``StageTimer`` keeps one
    :class:`Stopwatch` per stage name so drivers and benchmarks can
    report where the time went::

        timer = StageTimer()
        with timer.stage("encode"):
            payloads = pcodec.encode_blocks(runs)
        with timer.stage("write"):
            ...
        timer.report()   # {"encode": 12.3, "write": 4.5}
    """

    def __init__(self) -> None:
        self._stages: Dict[str, Stopwatch] = {}

    def stage(self, name: str) -> Stopwatch:
        """The stopwatch for ``name``, created on first use.

        Use as a context manager to bracket one occurrence of the stage;
        repeated uses accumulate.
        """
        if not name:
            raise ReproError("stage name must be non-empty")
        watch = self._stages.get(name)
        if watch is None:
            watch = Stopwatch()
            self._stages[name] = watch
        return watch

    def total_ms(self, name: str) -> float:
        """Accumulated milliseconds of one stage (0.0 if never entered)."""
        watch = self._stages.get(name)
        return 0.0 if watch is None else watch.total_ms

    @property
    def stages(self) -> Dict[str, Stopwatch]:
        """Live stage map, keyed by name (insertion-ordered)."""
        return dict(self._stages)

    def report(self) -> Dict[str, float]:
        """``{stage: total_ms}`` for every stage entered so far."""
        return {name: w.total_ms for name, w in self._stages.items()}
