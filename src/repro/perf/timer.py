"""Wall-clock timing helpers matching the paper's Section 5.2 method.

"For each of them, we perform the coding 100 times, and then the
decoding 100 times.  The average times for each operation are then
computed."  :func:`mean_time_ms` is exactly that; :class:`Stopwatch` is
the accumulating variant the experiment drivers use.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ReproError

__all__ = ["mean_time_ms", "Stopwatch"]


def mean_time_ms(fn: Callable[[], object], repeats: int = 100) -> float:
    """Mean wall-clock milliseconds of ``fn()`` over ``repeats`` runs."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = time.perf_counter() - start
    return elapsed * 1000.0 / repeats


class Stopwatch:
    """Accumulate wall time across explicitly bracketed sections."""

    def __init__(self):
        self._total = 0.0
        self._started = None
        self._laps = 0

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._total += time.perf_counter() - self._started
        self._started = None
        self._laps += 1

    @property
    def total_ms(self) -> float:
        """Accumulated milliseconds."""
        return self._total * 1000.0

    @property
    def laps(self) -> int:
        """Number of completed sections."""
        return self._laps

    @property
    def mean_ms(self) -> float:
        """Mean milliseconds per section."""
        if self._laps == 0:
            return 0.0
        return self.total_ms / self._laps
