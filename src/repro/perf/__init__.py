"""Performance substrate: machine profiles, timing, and the cost model.

Implements Section 5.3's analytic response-time arithmetic and carries
the paper's measured per-machine constants (Figure 5.9 rows 1-4) so the
response-time table can be regenerated exactly.
"""

from repro.perf.costmodel import (
    INDEX_BLOCK_FRACTION,
    PAPER_T1_MS,
    ResponseTimeRow,
    improvement_percent,
    index_search_time_s,
    response_time_s,
    response_time_table,
)
from repro.perf.machines import (
    DEC_5000_120,
    HP_9000_735,
    PAPER_MACHINES,
    SUN_4_50,
    MachineProfile,
    calibrated_profile,
)
from repro.perf.simulation import (
    WorkloadCost,
    predicted_workload_cost,
    simulate_workload,
)
from repro.perf.timer import StageTimer, Stopwatch, mean_time_ms

__all__ = [
    "PAPER_T1_MS",
    "INDEX_BLOCK_FRACTION",
    "index_search_time_s",
    "response_time_s",
    "improvement_percent",
    "ResponseTimeRow",
    "response_time_table",
    "MachineProfile",
    "HP_9000_735",
    "SUN_4_50",
    "DEC_5000_120",
    "PAPER_MACHINES",
    "calibrated_profile",
    "mean_time_ms",
    "StageTimer",
    "Stopwatch",
    "WorkloadCost",
    "simulate_workload",
    "predicted_workload_cost",
]
