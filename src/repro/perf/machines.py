"""Machine profiles for the Figure 5.9 response-time table.

The paper measured AVQ block coding/decoding and tuple extraction on
three 1990s workstations.  We obviously cannot rerun those machines
(DESIGN.md substitution note); instead each
:class:`MachineProfile` carries the paper's measured per-block constants,
and :func:`calibrated_profile` builds an equivalent profile for *this*
host by actually timing the Python codec.

The response-time model only combines these constants linearly
(``C = I + N (t1 + t_cpu)``), so carrying the constants reproduces the
paper's table exactly, and the calibrated profile extends it with a
present-day data point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

__all__ = [
    "MachineProfile",
    "HP_9000_735",
    "SUN_4_50",
    "DEC_5000_120",
    "PAPER_MACHINES",
    "calibrated_profile",
]


@dataclass(frozen=True)
class MachineProfile:
    """Per-block CPU costs of one machine (Figure 5.9 rows 1, 2, 4).

    Attributes
    ----------
    name:
        Display name.
    coding_ms:
        Time to AVQ-code one 8192-byte block (row 1).
    decoding_ms:
        ``t2`` — time to decode one block back to tuples (row 2).
    extract_ms:
        ``t3`` — time to parse an *uncoded* block into tuples (row 4).
    """

    name: str
    coding_ms: float
    decoding_ms: float
    extract_ms: float

    @property
    def t2_ms(self) -> float:
        """Alias: the paper's ``t2`` symbol."""
        return self.decoding_ms

    @property
    def t3_ms(self) -> float:
        """Alias: the paper's ``t3`` symbol."""
        return self.extract_ms

    @property
    def cpu_overhead_ratio(self) -> float:
        """Decode cost relative to plain extraction (t2 / t3).

        The paper's thesis is that this CPU premium is worth paying
        because it buys a large reduction in ``N``.
        """
        return self.decoding_ms / self.extract_ms


# Figure 5.9 rows 1, 2, 4 — the paper's measured constants.
HP_9000_735 = MachineProfile("HP 9000/735", 13.91, 13.85, 1.34)
SUN_4_50 = MachineProfile("Sun 4/50", 40.29, 40.45, 3.70)
DEC_5000_120 = MachineProfile("Dec 5000/120", 69.92, 61.33, 9.77)

PAPER_MACHINES: Tuple[MachineProfile, ...] = (
    HP_9000_735,
    SUN_4_50,
    DEC_5000_120,
)


def calibrated_profile(
    code_block: Callable[[], object],
    decode_block: Callable[[], object],
    extract_block: Callable[[], object],
    *,
    name: str = "local-python",
    repeats: int = 100,
) -> MachineProfile:
    """Measure this host the way Section 5.2 measured its machines.

    Each callable performs the operation on one representative block;
    it is run ``repeats`` times (the paper used 100) and the mean wall
    time becomes the profile constant.
    """
    from repro.perf.timer import mean_time_ms

    return MachineProfile(
        name=name,
        coding_ms=mean_time_ms(code_block, repeats),
        decoding_ms=mean_time_ms(decode_block, repeats),
        extract_ms=mean_time_ms(extract_block, repeats),
    )
