"""Synthetic workloads: the Section 5 relations and query sweeps."""

from repro.workload.distributions import (
    SAMPLERS,
    get_sampler,
    skewed_values,
    uniform_values,
    zipf_values,
)
from repro.workload.generator import (
    RelationSpec,
    generate_domain_sizes,
    generate_relation,
    paper_test_spec,
    paper_timing_spec,
)
from repro.workload.queries import (
    paper_query_sweep,
    random_range_queries,
    range_query_for_attribute,
)

__all__ = [
    "SAMPLERS",
    "get_sampler",
    "uniform_values",
    "skewed_values",
    "zipf_values",
    "RelationSpec",
    "generate_domain_sizes",
    "generate_relation",
    "paper_test_spec",
    "paper_timing_spec",
    "paper_query_sweep",
    "range_query_for_attribute",
    "random_range_queries",
]
