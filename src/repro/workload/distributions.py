"""Attribute-value distributions for the Section 5.1 workloads.

The paper evaluates two distributions:

* **uniform** — values drawn uniformly from the domain;
* **skewed** — "60% of the values were drawn from 40% of the domain".

Both are implemented as vectorised samplers over ``[0, domain_size)``.
A Zipf sampler is included as an extension (real attribute-value skews
are often heavier-tailed than the paper's 60/40 rule).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "uniform_values",
    "skewed_values",
    "zipf_values",
    "SAMPLERS",
    "get_sampler",
]

Sampler = Callable[[np.random.Generator, int, int], np.ndarray]


def uniform_values(
    rng: np.random.Generator, domain_size: int, count: int
) -> np.ndarray:
    """``count`` values uniform over ``[0, domain_size)``."""
    _check(domain_size, count)
    return rng.integers(0, domain_size, size=count, dtype=np.int64)


def skewed_values(
    rng: np.random.Generator,
    domain_size: int,
    count: int,
    *,
    hot_fraction: float = 0.4,
    hot_probability: float = 0.6,
) -> np.ndarray:
    """The paper's 60/40 skew: 60% of draws land in 40% of the domain.

    The "hot" region is the low end of the domain (which end is hot does
    not affect any measured quantity; compression depends only on value
    multiplicity, and the paper does not specify a placement).
    """
    _check(domain_size, count)
    if not 0 < hot_fraction <= 1 or not 0 <= hot_probability <= 1:
        raise WorkloadError(
            f"bad skew parameters: fraction={hot_fraction}, "
            f"probability={hot_probability}"
        )
    hot_size = max(1, int(round(domain_size * hot_fraction)))
    hot = rng.random(count) < hot_probability
    values = rng.integers(0, domain_size, size=count, dtype=np.int64)
    hot_values = rng.integers(0, hot_size, size=count, dtype=np.int64)
    return np.where(hot, hot_values, values)


def zipf_values(
    rng: np.random.Generator,
    domain_size: int,
    count: int,
    *,
    s: float = 1.2,
) -> np.ndarray:
    """Zipf-distributed values over ``[0, domain_size)`` (extension).

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1)^s``.
    """
    _check(domain_size, count)
    if s <= 0:
        raise WorkloadError(f"zipf exponent must be positive, got {s}")
    weights = 1.0 / np.power(np.arange(1, domain_size + 1, dtype=np.float64), s)
    weights /= weights.sum()
    return rng.choice(domain_size, size=count, p=weights).astype(np.int64)


def _check(domain_size: int, count: int) -> None:
    if domain_size < 1:
        raise WorkloadError(f"domain size must be >= 1, got {domain_size}")
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")


SAMPLERS: Dict[str, Sampler] = {  # repro: shared-state[sampler registry; written only at import time, read-only lookup afterwards]
    "uniform": uniform_values,
    "skewed": skewed_values,
    "zipf": zipf_values,
}


def get_sampler(name: str) -> Sampler:
    """Look a sampler up by name ('uniform', 'skewed', 'zipf')."""
    try:
        return SAMPLERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown distribution {name!r}; known: {sorted(SAMPLERS)}"
        )
