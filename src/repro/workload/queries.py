"""Query workloads for the Section 5.3 response-time experiments.

The paper's query family is ``sigma_{a <= A_k <= b}(R)`` with
``a = 0.5 * |A_k|``; sweeping ``k`` over every attribute produces the
Figure 5.8 table.  :func:`paper_query_sweep` generates exactly that
sweep; :func:`random_range_queries` produces a mixed workload for the
examples and stress tests.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.db.query import RangeQuery
from repro.errors import WorkloadError
from repro.relational.schema import Schema

__all__ = ["paper_query_sweep", "range_query_for_attribute", "random_range_queries"]


def range_query_for_attribute(
    schema: Schema,
    attribute: str,
    *,
    start_fraction: float = 0.5,
    selectivity: float = 0.5,
) -> RangeQuery:
    """One Section 5.3 query: ``a = start_fraction * |A_k|``, width
    ``selectivity * |A_k|`` (clamped to the domain)."""
    if not 0 <= start_fraction <= 1:
        raise WorkloadError(f"start_fraction must be in [0, 1], got {start_fraction}")
    if not 0 < selectivity <= 1:
        raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")
    size = schema.attribute(attribute).domain.size
    lo = min(size - 1, int(size * start_fraction))
    hi = min(size - 1, lo + max(0, int(size * selectivity) - 1))
    return RangeQuery.between(attribute, lo, hi)


def paper_query_sweep(
    schema: Schema,
    *,
    start_fraction: float = 0.5,
    selectivity: float = 0.5,
) -> Iterator[RangeQuery]:
    """The Figure 5.8 sweep: one range query per attribute, in order."""
    for name in schema.names:
        yield range_query_for_attribute(
            schema,
            name,
            start_fraction=start_fraction,
            selectivity=selectivity,
        )


def random_range_queries(
    schema: Schema,
    count: int,
    *,
    seed: int = 0,
    min_selectivity: float = 0.01,
    max_selectivity: float = 0.5,
) -> List[RangeQuery]:
    """A mixed single-attribute range-query workload."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if not 0 < min_selectivity <= max_selectivity <= 1:
        raise WorkloadError(
            f"bad selectivity window [{min_selectivity}, {max_selectivity}]"
        )
    rng = np.random.default_rng(seed)
    out: List[RangeQuery] = []
    for _ in range(count):
        name = schema.names[int(rng.integers(0, schema.arity))]
        size = schema.attribute(name).domain.size
        width = max(1, int(size * rng.uniform(min_selectivity, max_selectivity)))
        lo = int(rng.integers(0, max(1, size - width + 1)))
        out.append(RangeQuery.between(name, lo, min(size - 1, lo + width - 1)))
    return out
