"""Synthetic relation generation — the Section 5.1 experimental workloads.

The paper varies three things: relation size (tuple count), variance in
attribute domain size, and attribute-value skew.  Its two variance levels
are defined by the spread of domain sizes around their average:

* **small** — "differences in domain sizes no more than 10% of the
  average domain size";
* **large** — "differences more than 100%".

:class:`RelationSpec` captures one configuration; :func:`generate_relation`
produces the encoded :class:`~repro.relational.relation.Relation`.  Two
presets mirror the paper's fixed relations:

* :func:`paper_test_spec` — the Figure 5.7 relations (15 attributes);
* :func:`paper_timing_spec` — the Section 5.2 relation (16 attributes,
  38-byte tuples after domain mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.relational.domain import IntegerRangeDomain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.workload.distributions import get_sampler

__all__ = [
    "RelationSpec",
    "generate_domain_sizes",
    "generate_relation",
    "paper_test_spec",
    "paper_timing_spec",
]


@dataclass(frozen=True)
class RelationSpec:
    """One synthetic relation configuration (a cell of Figure 5.7 Table (a)).

    Attributes
    ----------
    num_tuples:
        Relation cardinality.
    num_attributes:
        Arity; the paper fixes 15 for Figure 5.7 and 16 for Section 5.2.
    mean_domain_size:
        Average ``|A_i|`` the variance levels spread around.
    domain_variance:
        ``"small"`` (±10% of the mean) or ``"large"`` (>100% spread).
    skew:
        ``"uniform"``, ``"skewed"`` (the 60/40 rule), or ``"zipf"``.
    seed:
        Deterministic generation seed.
    domain_sizes:
        Explicit per-attribute sizes; overrides the variance machinery.
    """

    num_tuples: int
    num_attributes: int = 15
    mean_domain_size: int = 64
    domain_variance: str = "small"
    skew: str = "uniform"
    seed: int = 0
    domain_sizes: Optional[Sequence[int]] = None

    def __post_init__(self):
        if self.num_tuples < 0:
            raise WorkloadError(f"num_tuples must be >= 0, got {self.num_tuples}")
        if self.num_attributes < 1:
            raise WorkloadError(
                f"num_attributes must be >= 1, got {self.num_attributes}"
            )
        if self.mean_domain_size < 2:
            raise WorkloadError(
                f"mean_domain_size must be >= 2, got {self.mean_domain_size}"
            )
        if self.domain_variance not in ("small", "large"):
            raise WorkloadError(
                f"domain_variance must be 'small' or 'large', "
                f"got {self.domain_variance!r}"
            )
        get_sampler(self.skew)  # validates the name
        if self.domain_sizes is not None:
            object.__setattr__(self, "domain_sizes", tuple(self.domain_sizes))
            if len(self.domain_sizes) != self.num_attributes:
                raise WorkloadError(
                    f"{len(self.domain_sizes)} explicit domain sizes for "
                    f"{self.num_attributes} attributes"
                )


def generate_domain_sizes(spec: RelationSpec) -> List[int]:
    """Per-attribute domain sizes realising the spec's variance level.

    * small: sizes uniform in ``[0.95, 1.05] * mean`` — pairwise
      differences stay within 10% of the mean;
    * large: sizes log-uniform over ``[mean/8, 8*mean]`` — the spread far
      exceeds the mean, matching the paper's ">100%" regime.
    """
    if spec.domain_sizes is not None:
        return list(spec.domain_sizes)
    rng = np.random.default_rng(spec.seed ^ 0x5EED)
    mean = spec.mean_domain_size
    if spec.domain_variance == "small":
        lo, hi = max(2, int(mean * 0.95)), max(3, int(mean * 1.05))
        sizes = rng.integers(lo, hi + 1, size=spec.num_attributes)
    else:
        log_lo, log_hi = np.log(max(2, mean / 8)), np.log(mean * 8)
        sizes = np.exp(
            rng.uniform(log_lo, log_hi, size=spec.num_attributes)
        ).astype(np.int64)
        sizes = np.maximum(sizes, 2)
    return [int(s) for s in sizes]


def generate_relation(spec: RelationSpec) -> Relation:
    """Generate the encoded relation described by ``spec``."""
    sizes = generate_domain_sizes(spec)
    schema = Schema(
        [
            Attribute(f"A{i + 1}", IntegerRangeDomain(0, s - 1))
            for i, s in enumerate(sizes)
        ]
    )
    rng = np.random.default_rng(spec.seed)
    sampler = get_sampler(spec.skew)
    columns = [
        sampler(rng, s, spec.num_tuples) for s in sizes
    ]
    if spec.num_tuples == 0:
        return Relation(schema)
    array = np.stack(columns, axis=1)
    return Relation.from_array(schema, array)


def paper_test_spec(
    num_tuples: int,
    *,
    skew: bool,
    variance: str,
    seed: int = 0,
) -> RelationSpec:
    """A Figure 5.7 test cell: 15 attributes, chosen skew and variance."""
    return RelationSpec(
        num_tuples=num_tuples,
        num_attributes=15,
        mean_domain_size=64,
        domain_variance=variance,
        skew="skewed" if skew else "uniform",
        seed=seed,
    )


#: Section 5.2 relation: 16 attributes whose fixed-width fields total 38
#: bytes (ten 2-byte domains and six 3-byte domains), 10^5 tuples.
_TIMING_DOMAIN_SIZES = tuple([1 << 12] * 10 + [1 << 18] * 6)


def paper_timing_spec(num_tuples: int = 100_000, *, seed: int = 0) -> RelationSpec:
    """The Section 5.2 relation used for coding-time and response-time tests.

    16 attributes of "varying domain sizes" with a 38-byte mapped tuple;
    we use ten 12-bit and six 18-bit domains (10*2 + 6*3 = 38 bytes).
    """
    return RelationSpec(
        num_tuples=num_tuples,
        num_attributes=16,
        domain_variance="large",
        skew="uniform",
        seed=seed,
        domain_sizes=_TIMING_DOMAIN_SIZES,
    )
