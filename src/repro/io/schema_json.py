"""JSON (de)serialisation of schemas — the metadata half of the file format.

A stored AVQ relation is useless without its schema: the domain sizes
define the phi radix, and the domain dictionaries map ordinals back to
application values.  This module round-trips every
:mod:`repro.relational.domain` type through a plain-JSON structure:

.. code-block:: json

    {"attributes": [
        {"name": "department", "domain":
            {"kind": "categorical", "values": ["mgmt", "sales"]}},
        {"name": "years", "domain":
            {"kind": "integer", "lo": 0, "hi": 63}},
        {"name": "customer", "domain":
            {"kind": "string", "capacity": 1000, "table": ["acme"]}}
    ]}
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import EncodingError
from repro.relational.domain import (
    CategoricalDomain,
    Domain,
    IntegerRangeDomain,
    StringDomain,
)
from repro.relational.schema import Attribute, Schema

__all__ = ["schema_to_dict", "schema_from_dict"]


def _domain_to_dict(domain: Domain) -> Dict[str, Any]:
    if isinstance(domain, IntegerRangeDomain):
        return {"kind": "integer", "lo": domain.lo, "hi": domain.hi}
    if isinstance(domain, CategoricalDomain):
        values = domain.values
        for v in values:
            if not isinstance(v, (str, int, float, bool)) and v is not None:
                raise EncodingError(
                    f"categorical value {v!r} is not JSON-serialisable"
                )
        return {"kind": "categorical", "values": values}
    if isinstance(domain, StringDomain):
        return {
            "kind": "string",
            "capacity": domain.size,
            "table": [domain.decode(i) for i in range(domain.population)],
        }
    raise EncodingError(
        f"cannot serialise domain type {type(domain).__name__}"
    )


def _domain_from_dict(data: Dict[str, Any]) -> Domain:
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise EncodingError(f"malformed domain descriptor: {data!r}")
    if kind == "integer":
        return IntegerRangeDomain(int(data["lo"]), int(data["hi"]))
    if kind == "categorical":
        return CategoricalDomain(data["values"])
    if kind == "string":
        return StringDomain(
            capacity=int(data["capacity"]), values=data.get("table", ())
        )
    raise EncodingError(f"unknown domain kind {kind!r}")


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialise a schema to a JSON-compatible dictionary."""
    return {
        "attributes": [
            {"name": a.name, "domain": _domain_to_dict(a.domain)}
            for a in schema.attributes
        ]
    }


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    try:
        attrs = data["attributes"]
    except (KeyError, TypeError):
        raise EncodingError(f"malformed schema descriptor: {data!r}")
    if not isinstance(attrs, list) or not attrs:
        raise EncodingError("schema descriptor has no attributes")
    out = []
    for entry in attrs:
        try:
            out.append(
                Attribute(entry["name"], _domain_from_dict(entry["domain"]))
            )
        except (KeyError, TypeError):
            raise EncodingError(f"malformed attribute descriptor: {entry!r}")
    return Schema(out)
