"""The on-disk AVQ container format.

Everything else in :mod:`repro.storage` targets the *simulated* disk the
experiments need; this module is the practical counterpart — a real file
format so a compressed relation survives a process restart:

.. code-block:: text

    +--------+---------+------------------+----------------------------+
    | magic  | version | header JSON      | block payloads, contiguous |
    | "AVQ1" | u16     | u32 len ‖ bytes  | (lengths in the header)    |
    +--------+---------+------------------+----------------------------+

The JSON header carries the schema (via :mod:`repro.io.schema_json`),
the codec configuration, the logical block size, and a per-block
directory ``[payload_length, tuple_count, first_ordinal, crc32]``
(ordinals as decimal strings — they can exceed 64 bits for wide
schemas).  Payloads are the exact
:class:`~repro.core.codec.BlockCodec` streams, written back to back —
no slack padding, since a file has no sector alignment to respect.

Every payload is CRC32-checksummed; :meth:`AVQFileReader.read_block`
verifies before decoding, so bit rot is *detected* rather than
silently decoded into wrong tuples (differential coding would otherwise
propagate a single flipped bit into every tuple after it).  Checksum
failures raise :class:`~repro.errors.CorruptionError` with the path and
block position attached; blocks listed in the header's optional
``"quarantined"`` map (written by :mod:`repro.io.scrub`) raise
:class:`~repro.errors.QuarantinedBlockError` instead of ever returning
bytes known to be damaged (docs/INTEGRITY.md).

:class:`AVQFileReader` gives lazy, block-at-a-time access — the on-disk
analogue of the paper's localized decoding.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.codec import BlockCodec
from repro.errors import CorruptionError, QuarantinedBlockError, StorageError
from repro.io.schema_json import schema_from_dict, schema_to_dict
from repro.obs import runtime as _obs
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.packer import pack_ordinals

__all__ = ["write_avq_file", "AVQFileReader", "read_avq_file"]

_MAGIC = b"AVQ1"
_VERSION = 1


@dataclass(frozen=True)
class _BlockEntry:
    offset: int
    length: int
    tuple_count: int
    first_ordinal: int
    #: ``None`` when the directory predates checksums (len-3 entries).
    crc32: Optional[int]


def write_avq_file(
    path: str,
    relation: Relation,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    codec: Optional[BlockCodec] = None,
    workers: Optional[int] = None,
) -> Dict[str, int]:
    """Compress a relation into an ``.avq`` container at ``path``.

    Returns a summary dict (blocks, payload bytes, file bytes) so callers
    can report the compression achieved.

    ``workers`` fans block coding out to a process pool
    (:mod:`repro.core.parallel`): ``None`` encodes in-process, ``0``
    uses every core, ``n`` uses exactly ``n``.  The container is
    byte-identical in all modes.
    """
    codec = codec or BlockCodec(relation.schema.domain_sizes)
    if codec.mapper.domain_sizes != relation.schema.domain_sizes:
        raise StorageError("codec domain sizes do not match the schema")
    with _obs.span(
        "io.write_avq", path=path, tuples=len(relation), workers=workers
    ):
        summary = _write_avq_file(
            path, relation, codec, block_size=block_size, workers=workers
        )
    reg = _obs.REGISTRY
    if reg is not None:
        reg.inc("io.containers_written")
        reg.inc("io.blocks_written", summary["blocks"])
        reg.inc("io.payload_bytes_written", summary["payload_bytes"])
    return summary


def _write_avq_file(
    path: str,
    relation: Relation,
    codec: BlockCodec,
    *,
    block_size: int,
    workers: Optional[int],
) -> Dict[str, int]:
    """The :func:`write_avq_file` body, minus validation and telemetry."""
    ordinals = relation.phi_ordinals()

    payloads: List[bytes] = []
    directory: List[List[Union[int, str]]] = []
    vec = codec.vector_codec if ordinals else None
    runs: List[List[int]] = []
    if vec is not None:
        import numpy as np

        from repro.core.fastpack import fast_pack_boundaries

        arr = np.asarray(ordinals, dtype=np.int64)
        sizes = relation.schema.domain_sizes
        boundaries = fast_pack_boundaries(arr, sizes, block_size)
        runs = [ordinals[start:end] for start, end in boundaries]
        if workers is None:
            with _obs.span(
                "codec.encode", blocks=len(runs), path="vector"
            ):
                payloads = [
                    vec.encode_run(arr[start:end])
                    for start, end in boundaries
                ]
    else:
        partition = pack_ordinals(codec, ordinals, block_size)
        runs = [list(run) for run in partition.blocks]
        if workers is None:
            with _obs.span(
                "codec.encode", blocks=len(runs), path="scalar"
            ):
                for run in runs:
                    tuples = [codec.mapper.phi_inverse(o) for o in run]
                    payloads.append(codec.encode_block(tuples))
    if workers is not None and runs:
        from repro.core.parallel import encode_blocks

        payloads = encode_blocks(codec, runs, workers=workers)
    for run, payload in zip(runs, payloads):
        directory.append(
            [len(payload), len(run), str(run[0]), zlib.crc32(payload)]
        )

    header = {
        "schema": schema_to_dict(relation.schema),
        "codec": {
            "chained": codec.chained,
            "representative": codec.representative_strategy,
        },
        "block_size": block_size,
        "num_tuples": len(relation),
        "blocks": directory,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as f:
        f.write(_MAGIC)
        f.write(_VERSION.to_bytes(2, "big"))
        f.write(len(header_bytes).to_bytes(4, "big"))
        f.write(header_bytes)
        for payload in payloads:
            f.write(payload)
    os.replace(tmp_path, path)

    payload_bytes = sum(len(p) for p in payloads)
    return {
        "blocks": len(payloads),
        "tuples": len(relation),
        "payload_bytes": payload_bytes,
        "file_bytes": os.path.getsize(path),
        "fixed_width_bytes": relation.uncompressed_bytes(),
    }


class AVQFileReader:
    """Lazy block-at-a-time reader over an ``.avq`` container.

    Usable as a context manager; blocks decode independently, so random
    access never touches more than one block's payload.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._file = open(path, "rb")
        # Header parsing must never leak the file handle, and must not
        # leak raw environmental errors either: a short read or a
        # mis-encoded header is a storage fault, so it surfaces as
        # StorageError with the path attached (lint rule R002's
        # canonical case — the original handler here was a broad
        # ``except Exception``).
        try:
            self._parse_header()
        except (OSError, UnicodeDecodeError) as exc:
            self._file.close()
            raise StorageError(
                f"{self._path}: unreadable container header"
            ) from exc
        except Exception:
            self._file.close()
            raise

    def _parse_header(self) -> None:
        magic = self._file.read(4)
        if magic != _MAGIC:
            raise StorageError(
                f"{self._path}: not an AVQ container (magic {magic!r})"
            )
        version = int.from_bytes(self._file.read(2), "big")
        if version != _VERSION:
            raise StorageError(
                f"{self._path}: unsupported container version {version}"
            )
        header_len = int.from_bytes(self._file.read(4), "big")
        raw = self._file.read(header_len)
        if len(raw) != header_len:
            raise StorageError(f"{self._path}: truncated header")
        try:
            header = json.loads(raw.decode("utf-8"))
            self._schema = schema_from_dict(header["schema"])
            codec_cfg = header["codec"]
            self._codec = BlockCodec(
                self._schema.domain_sizes,
                chained=bool(codec_cfg["chained"]),
                representative=str(codec_cfg["representative"]),
            )
            self._block_size = int(header["block_size"])
            self._num_tuples = int(header["num_tuples"])
            directory = header["blocks"]
            # Optional fsck state: {"position": "reason"} for blocks a
            # repair could not restore (repro.io.scrub).  Absent in every
            # healthy container, ignored by pre-integrity readers.
            self._quarantined: Dict[int, str] = {
                int(pos): str(reason)
                for pos, reason in header.get("quarantined", {}).items()
            }
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise StorageError(f"{self._path}: malformed header") from exc

        self._entries: List[_BlockEntry] = []
        offset = 4 + 2 + 4 + header_len
        try:
            for entry in directory:
                length, count, first = (
                    int(entry[0]), int(entry[1]), int(entry[2])
                )
                crc = int(entry[3]) if len(entry) > 3 else None
                if length < 0 or count < 0 or first < 0:
                    raise StorageError(
                        f"{self._path}: negative directory entry"
                    )
                self._entries.append(
                    _BlockEntry(
                        offset=offset,
                        length=length,
                        tuple_count=count,
                        first_ordinal=first,
                        crc32=crc,
                    )
                )
                offset += length
        except (TypeError, ValueError, IndexError) as exc:
            raise StorageError(
                f"{self._path}: malformed block directory"
            ) from exc
        self._data_end = offset

        size = os.path.getsize(self._path)
        if size < self._data_end:
            raise StorageError(
                f"{self._path}: truncated payload area "
                f"(expected {self._data_end} bytes, file has {size})"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The stored relation's schema."""
        return self._schema

    @property
    def codec(self) -> BlockCodec:
        """The codec configuration the file was written with."""
        return self._codec

    @property
    def num_blocks(self) -> int:
        """Blocks in the container."""
        return len(self._entries)

    @property
    def num_tuples(self) -> int:
        """Total tuples stored."""
        return self._num_tuples

    @property
    def block_size(self) -> int:
        """The logical block size used at write time."""
        return self._block_size

    def block_info(self, position: int) -> Tuple[int, int]:
        """(tuple_count, first_ordinal) of a block without decoding it."""
        entry = self._entry(position)
        return entry.tuple_count, entry.first_ordinal

    def block_crc(self, position: int) -> Optional[int]:
        """Recorded CRC32 of a block's payload (``None`` pre-checksum)."""
        return self._entry(position).crc32

    @property
    def quarantined(self) -> Dict[int, str]:
        """Quarantined block positions mapped to the recorded reason."""
        return dict(self._quarantined)

    def header_dict(self) -> Dict[str, Any]:
        """The canonical header JSON object, reconstructed.

        The feed for :mod:`repro.io.scrub`'s header rewrites (checksum
        backfill, quarantine marks): mutate the returned dict and hand it
        back to the writer.  Round-trips exactly what was parsed.
        """
        header: Dict[str, Any] = {
            "schema": schema_to_dict(self._schema),
            "codec": {
                "chained": self._codec.chained,
                "representative": self._codec.representative_strategy,
            },
            "block_size": self._block_size,
            "num_tuples": self._num_tuples,
            "blocks": [
                [e.length, e.tuple_count, str(e.first_ordinal)]
                + ([] if e.crc32 is None else [e.crc32])
                for e in self._entries
            ],
        }
        if self._quarantined:
            header["quarantined"] = {
                str(pos): reason
                for pos, reason in sorted(self._quarantined.items())
            }
        return header

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def raw_payload(self, position: int) -> bytes:
        """One block's stored bytes, *unverified* and quarantine-blind.

        Strictly for integrity tooling (:mod:`repro.io.scrub`), which
        must be able to look at damaged bytes to report on them.  Every
        data path goes through :meth:`read_payload` instead.
        """
        entry = self._entry(position)
        self._file.seek(entry.offset)
        payload = self._file.read(entry.length)
        if len(payload) != entry.length:
            raise StorageError(f"{self._path}: truncated block {position}")
        return payload

    def read_payload(self, position: int) -> bytes:
        """Raw CRC-verified payload of one block, without decoding.

        The feed for out-of-process decoding: hand payloads to
        :func:`repro.core.parallel.decode_blocks` and only the cheap
        byte reads happen under the reader's file handle.
        """
        entry = self._entry(position)
        reason = self._quarantined.get(position)
        if reason is not None:
            raise QuarantinedBlockError(
                f"block {position} is quarantined ({reason}); "
                "run fsck --repair",
                path=self._path,
                position=position,
                detected_by="quarantine",
            )
        payload = self.raw_payload(position)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("io.payloads_read")
            reg.inc("io.payload_bytes_read", len(payload))
        if entry.crc32 is not None and zlib.crc32(payload) != entry.crc32:
            raise CorruptionError(
                f"block {position} failed its checksum (corrupt payload)",
                path=self._path,
                position=position,
                detected_by="crc32",
            )
        return payload

    def read_block(self, position: int) -> List[Tuple[int, ...]]:
        """Decode one block to ordinal tuples (localized, per the paper)."""
        entry = self._entry(position)
        tuples = self._codec.decode_block(self.read_payload(position))
        if len(tuples) != entry.tuple_count:
            raise CorruptionError(
                f"block {position} decoded to {len(tuples)} tuples, "
                f"directory says {entry.tuple_count}",
                path=self._path,
                position=position,
                detected_by="directory",
            )
        return tuples

    def scan(self) -> Iterator[Tuple[int, ...]]:
        """All tuples in phi order."""
        for position in range(self.num_blocks):
            yield from self.read_block(position)

    def scan_values(self) -> Iterator[Tuple[object, ...]]:
        """All tuples decoded back to application values."""
        for t in self.scan():
            yield self._schema.decode_tuple(t)

    def blocks_overlapping(self, lo: int, hi: int) -> List[int]:
        """Block positions whose ordinal range may intersect [lo, hi]."""
        if lo > hi or not self._entries:
            return []
        out = []
        for pos, entry in enumerate(self._entries):
            next_first = (
                self._entries[pos + 1].first_ordinal
                if pos + 1 < len(self._entries)
                else None
            )
            if entry.first_ordinal > hi:
                break
            if next_first is None or next_first > lo:
                out.append(pos)
        return out

    def _entry(self, position: int) -> _BlockEntry:
        if not 0 <= position < len(self._entries):
            raise StorageError(
                f"{self._path}: no block {position} "
                f"(container has {len(self._entries)})"
            )
        return self._entries[position]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "AVQFileReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_avq_file(path: str) -> Relation:
    """Decompress a whole container back into an in-memory relation."""
    with AVQFileReader(path) as reader:
        with _obs.span(
            "codec.decode",
            blocks=reader.num_blocks,
            path="vector" if reader.codec.vectorized else "scalar",
        ):
            return Relation(reader.schema, reader.scan())
