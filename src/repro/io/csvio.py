"""CSV loading and writing for the command-line tools.

Values are type-inferred column-wise: a column whose every value parses
as an integer becomes integers; everything else stays strings.  This is
the entry path a user takes before the Section 3.1 domain mapping.
"""

from __future__ import annotations

import csv
from typing import List, Optional, Sequence, Tuple, Union

#: One typed CSV row: integer columns decoded, everything else verbatim.
Row = Tuple[Union[int, str], ...]

from repro.errors import EncodingError

__all__ = ["Row", "read_csv_rows", "write_csv_rows"]


def _try_int(value: str) -> Optional[int]:
    try:
        return int(value)
    except ValueError:
        return None


def read_csv_rows(
    path: str, *, has_header: bool = True
) -> Tuple[List[str], List[Row]]:
    """Load a CSV as (column names, typed rows).

    Integer columns are detected and converted; ragged rows are rejected
    (a silent short row would shift attribute values across columns).
    """
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        rows = [tuple(r) for r in reader if r]
    if not rows:
        raise EncodingError(f"{path}: no rows")
    if has_header:
        names = list(rows[0])
        rows = rows[1:]
        if not rows:
            raise EncodingError(f"{path}: header only, no data rows")
    else:
        names = [f"A{i + 1}" for i in range(len(rows[0]))]
    arity = len(names)
    for i, r in enumerate(rows):
        if len(r) != arity:
            raise EncodingError(
                f"{path}: row {i + 1} has {len(r)} fields, expected {arity}"
            )

    int_column = [
        all(_try_int(r[c]) is not None for r in rows) for c in range(arity)
    ]
    typed = [
        tuple(
            int(v) if int_column[c] else v
            for c, v in enumerate(row)
        )
        for row in rows
    ]
    return names, typed


def write_csv_rows(
    path: str, names: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Write rows (with a header) to ``path``."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(list(names))
        for row in rows:
            writer.writerow(list(row))
