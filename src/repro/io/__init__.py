"""Persistence: the on-disk AVQ container format and CSV tooling.

The experiments use the simulated disk; this package is the practical
path — compress a relation into a real ``.avq`` file, read it back block
by block, move data in and out of CSV, and keep containers honest with
offline scrub/fsck tooling (:mod:`repro.io.scrub`, docs/INTEGRITY.md).
"""

from repro.io.csvio import read_csv_rows, write_csv_rows
from repro.io.format import AVQFileReader, read_avq_file, write_avq_file
from repro.io.schema_json import schema_from_dict, schema_to_dict
from repro.io.scrub import (
    ContainerFinding,
    ContainerReport,
    backfill_checksums,
    fsck_container,
    scrub_container,
)

__all__ = [
    "write_avq_file",
    "read_avq_file",
    "AVQFileReader",
    "read_csv_rows",
    "write_csv_rows",
    "schema_to_dict",
    "schema_from_dict",
    "ContainerFinding",
    "ContainerReport",
    "backfill_checksums",
    "fsck_container",
    "scrub_container",
]
