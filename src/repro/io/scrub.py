"""Offline integrity tooling for ``.avq`` containers.

The on-line integrity subsystem (:mod:`repro.storage.integrity`) guards
the simulated disk; this module is its counterpart for real container
files — the engine behind ``repro scrub`` and ``repro fsck``:

* :func:`scrub_container` — verify every block (checksum, decode,
  directory agreement) without modifying the file.
* :func:`fsck_container` — scrub, then optionally *repair* damaged
  blocks from a write-ahead log's committed image and *backfill*
  checksums onto legacy CRC-less directory entries.  Unrepairable
  blocks are recorded in the header's ``"quarantined"`` map so
  subsequent reads raise :class:`~repro.errors.QuarantinedBlockError`
  instead of ever returning damaged bytes.
* :func:`backfill_checksums` — the standalone legacy-container upgrade.

Repair is held to the same standard as the on-line engine
(:class:`~repro.storage.integrity.RepairEngine`): a reconstructed
payload is accepted only when it is the same length as the stored one
and its CRC32 matches the directory's recorded checksum — byte
identity, proven, or no repair.  Blocks written before checksums
existed therefore cannot be repaired (there is nothing to prove
identity against); they can only be quarantined, or blessed via
backfill while they still decode cleanly.

All rewrites go through a temp file + ``os.replace``, the same
atomicity discipline as :func:`repro.io.format.write_avq_file`.
"""

from __future__ import annotations

import json
import os
import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CodecError, StorageError
from repro.io.format import AVQFileReader

__all__ = [
    "ContainerFinding",
    "ContainerReport",
    "backfill_checksums",
    "fsck_container",
    "scrub_container",
]

_MAGIC = b"AVQ1"
_VERSION = 1


@dataclass(frozen=True)
class ContainerFinding:
    """One damaged (or quarantined) block found by a container scan."""

    position: int
    #: ``"crc32"``, ``"decode"``, ``"directory"``, or ``"quarantine"``.
    detected_by: str
    message: str

    def fsck_line(self, path: str) -> str:
        """One report line, matching the exception format in errors.py."""
        return (
            f"{path}: block {self.position}: {self.message} "
            f"[{self.detected_by}]"
        )


@dataclass
class ContainerReport:
    """Outcome of a container scrub or fsck run."""

    path: str
    blocks_checked: int = 0
    findings: List[ContainerFinding] = field(default_factory=list)
    #: Positions restored byte-identically (fsck with a WAL source).
    repaired: List[int] = field(default_factory=list)
    #: Positions newly quarantined because no repair could be proven.
    quarantined: List[int] = field(default_factory=list)
    #: Legacy CRC-less entries that received a checksum this run.
    backfilled: int = 0
    #: CRC-less entries that still decode cleanly but were left
    #: unblessed (scrub, or fsck without ``--backfill-checksums``).
    backfill_candidates: int = 0

    @property
    def clean(self) -> bool:
        """No damage found by the scan (before any repairs)."""
        return not self.findings

    @property
    def healthy(self) -> bool:
        """Nothing is left damaged: every finding was repaired."""
        if self.quarantined:
            return False
        return all(f.position in self.repaired for f in self.findings)

    def fsck_lines(self) -> List[str]:
        """The report as ``fsck``-style lines."""
        out = [f.fsck_line(self.path) for f in self.findings]
        for pos in self.repaired:
            out.append(f"{self.path}: block {pos}: repaired (crc32 proven)")
        for pos in self.quarantined:
            out.append(
                f"{self.path}: block {pos}: quarantined (unrepairable)"
            )
        if self.backfilled:
            out.append(
                f"{self.path}: {self.backfilled} legacy block(s) received "
                "checksums"
            )
        return out


def _check_block(
    reader: AVQFileReader, position: int
) -> Optional[ContainerFinding]:
    """Verify one block's stored bytes; ``None`` when it is intact."""
    payload = reader.raw_payload(position)
    crc = reader.block_crc(position)
    if crc is not None and zlib.crc32(payload) != crc:
        return ContainerFinding(
            position, "crc32", "payload fails its recorded checksum"
        )
    try:
        tuples = reader.codec.decode_block(payload)
    except CodecError as exc:
        return ContainerFinding(
            position, "decode", f"payload is undecodable: {exc}"
        )
    count, first = reader.block_info(position)
    if len(tuples) != count:
        return ContainerFinding(
            position,
            "directory",
            f"decoded to {len(tuples)} tuples, directory says {count}",
        )
    if tuples and reader.codec.mapper.phi(tuples[0]) != first:
        return ContainerFinding(
            position,
            "directory",
            "first tuple does not match the directory's first ordinal",
        )
    return None


def scrub_container(path: str) -> ContainerReport:
    """Verify every block of a container; never modifies the file.

    Already-quarantined blocks are re-reported (detected_by
    ``"quarantine"``) so the operator sees outstanding damage on every
    run, not only the run that found it.
    """
    report = ContainerReport(path=path)
    with AVQFileReader(path) as reader:
        quarantined = reader.quarantined
        for position in range(reader.num_blocks):
            report.blocks_checked += 1
            reason = quarantined.get(position)
            if reason is not None:
                report.findings.append(
                    ContainerFinding(
                        position,
                        "quarantine",
                        f"already quarantined ({reason})",
                    )
                )
                continue
            finding = _check_block(reader, position)
            if finding is not None:
                report.findings.append(finding)
            elif reader.block_crc(position) is None:
                report.backfill_candidates += 1
    return report


def _rewrite_container(
    path: str, header: Dict[str, object], payloads: List[bytes]
) -> None:
    """Atomically replace a container with new header + payloads."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as f:
        f.write(_MAGIC)
        f.write(_VERSION.to_bytes(2, "big"))
        f.write(len(header_bytes).to_bytes(4, "big"))
        f.write(header_bytes)
        for payload in payloads:
            f.write(payload)
    os.replace(tmp_path, path)


def _wal_image(wal_path: str) -> List[int]:
    """The committed ordinal image of a write-ahead log, ascending."""
    # Imported lazily: repro.storage.wal itself imports repro.io
    # modules, so a top-level import here would be a cycle.
    from repro.storage.wal import read_log, replay_records

    _, records, _, _ = read_log(wal_path)
    return list(replay_records(records).ordinals)


def _repair_from_wal(
    reader: AVQFileReader,
    position: int,
    image: List[int],
) -> Optional[bytes]:
    """Reconstruct one block from the WAL image; CRC-proven or ``None``.

    The block's ordinal range is ``[first, next_first)`` from the
    directory; the committed image's slice over that range must have
    exactly the directory's tuple count, re-encode deterministically to
    the stored length, and hash to the *recorded* CRC32 — the same
    byte-identity gate as the on-line repair engine.
    """
    crc = reader.block_crc(position)
    if crc is None:
        return None  # nothing to prove byte-identity against
    count, first = reader.block_info(position)
    lo = bisect_left(image, first)
    if position + 1 < reader.num_blocks:
        _, next_first = reader.block_info(position + 1)
        hi = bisect_left(image, next_first)
    else:
        hi = len(image)
    ordinals = image[lo:hi]
    if len(ordinals) != count:
        return None  # the log has diverged from this container
    mapper = reader.codec.mapper
    payload = reader.codec.encode_block(
        [mapper.phi_inverse(o) for o in ordinals]
    )
    stored_length = len(reader.raw_payload(position))
    if len(payload) != stored_length or zlib.crc32(payload) != crc:
        return None
    return payload


def fsck_container(
    path: str,
    *,
    repair: bool = False,
    backfill: bool = False,
    wal_path: Optional[str] = None,
) -> ContainerReport:
    """Scrub a container and optionally repair / backfill / quarantine.

    With ``repair``, damaged blocks (including previously quarantined
    ones) are rebuilt from ``wal_path``'s committed image where byte
    identity can be proven; blocks that cannot be proven are recorded
    in the header's ``"quarantined"`` map, after which reads raise
    rather than return garbage.  With ``backfill``, intact legacy
    blocks (no recorded CRC) receive one.  The file is rewritten only
    when something actually changed.
    """
    report = scrub_container(path)
    wants_backfill = backfill and report.backfill_candidates > 0
    if (not repair or not report.findings) and not wants_backfill:
        return report

    image: List[int] = []
    if repair and report.findings and wal_path is not None:
        image = _wal_image(wal_path)

    with AVQFileReader(path) as reader:
        header = reader.header_dict()
        rows: List[List[object]] = header["blocks"]
        quarantine: Dict[str, str] = dict(header.get("quarantined", {}))
        payloads = [reader.raw_payload(p) for p in range(reader.num_blocks)]
        damaged_positions = {f.position for f in report.findings}
        changed = False

        if repair:
            for finding in report.findings:
                pos = finding.position
                fixed = (
                    _repair_from_wal(reader, pos, image) if image else None
                )
                if fixed is not None:
                    payloads[pos] = fixed
                    if quarantine.pop(str(pos), None) is not None:
                        changed = True
                    report.repaired.append(pos)
                    changed = True
                elif str(pos) not in quarantine:
                    quarantine[str(pos)] = finding.detected_by
                    report.quarantined.append(pos)
                    changed = True

        if wants_backfill:
            still_quarantined = {int(k) for k in quarantine}
            for pos in range(reader.num_blocks):
                if len(rows[pos]) > 3 or pos in still_quarantined:
                    continue
                if pos in damaged_positions and pos not in report.repaired:
                    continue
                rows[pos].append(zlib.crc32(payloads[pos]))
                report.backfilled += 1
                changed = True

        if changed:
            if quarantine:
                header["quarantined"] = {
                    k: quarantine[k] for k in sorted(quarantine, key=int)
                }
            else:
                header.pop("quarantined", None)
            _rewrite_container(path, header, payloads)

    if report.repaired:
        _verify_repairs(path, report.repaired)
    return report


def _verify_repairs(path: str, positions: List[int]) -> None:
    """Re-read repaired blocks from the rewritten file (trust nothing)."""
    with AVQFileReader(path) as reader:
        for pos in positions:
            finding = _check_block(reader, pos)
            if finding is not None:
                raise StorageError(
                    f"{path}: block {pos} still damaged after repair "
                    f"({finding.message})"
                )


def backfill_checksums(path: str) -> int:
    """Add CRC32s to legacy directory entries that still decode cleanly.

    Returns the number of blocks blessed.  Damaged blocks are left
    untouched (run :func:`fsck_container` with ``repair=True`` for
    those); blessing happens only after a full decode round-trip, so a
    backfilled checksum never launders existing rot into "verified".
    """
    report = fsck_container(path, repair=False, backfill=True)
    return report.backfilled
