"""A B+ tree with configurable order (Section 4.1's access mechanism).

The paper builds order-3 B+ trees over the coded blocks (Figure 4.4) and
over individual attributes (Figure 4.5).  This implementation supports:

* unique keys mapped to a single value each (multiplicity is handled one
  level up, by the secondary index's buckets — exactly the indirection of
  Figure 4.5);
* point lookup, floor lookup (largest key <= target, what a clustered
  primary index needs to find the covering block), and inclusive range
  scans over linked leaves;
* insertion with node splits and deletion with borrow/merge rebalancing.

``order`` is the maximum number of children of an internal node; a leaf
holds at most ``order - 1`` keys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import IndexError_

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys",)

    def __init__(self):
        self.keys: List = []


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__()
        self.children: List[_Node] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self):
        super().__init__()
        self.values: List = []
        self.next: Optional["_Leaf"] = None


def _bisect_right(keys: List, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: List, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """An order-``order`` B+ tree mapping unique keys to values."""

    def __init__(self, order: int = 3):
        if order < 3:
            raise IndexError_(f"B+ tree order must be >= 3, got {order}")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Maximum children per internal node."""
        return self._order

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf (a lone leaf has height 1)."""
        h, node = 1, self._root
        while isinstance(node, _Internal):
            h += 1
            node = node.children[0]
        return h

    @property
    def num_nodes(self) -> int:
        """Total nodes — proxy for the index's block footprint."""

        def count(node: _Node) -> int:
            if isinstance(node, _Leaf):
                return 1
            return 1 + sum(count(c) for c in node.children)

        return count(self._root)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[_bisect_right(node.keys, key)]
        return node

    def get(self, key, default=None):
        """Value stored under ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        i = _bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def __contains__(self, key) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def floor_item(self, key) -> Optional[Tuple[object, object]]:
        """The (key, value) pair with the largest key <= ``key``.

        This is the clustered-index probe: the block whose first tuple is
        the greatest one not after the search tuple is the block that can
        contain it.
        """
        node = self._root
        candidate: Optional[_Node] = None  # deepest subtree entirely <= key
        while isinstance(node, _Internal):
            i = _bisect_right(node.keys, key)
            if i > 0:
                candidate = node.children[i - 1]
            node = node.children[i]
        i = _bisect_right(node.keys, key) - 1
        if i >= 0:
            return node.keys[i], node.values[i]
        if candidate is None:
            return None
        # The found leaf holds only keys > target; the floor is the maximum
        # of the nearest left-sibling subtree recorded during descent.
        while isinstance(candidate, _Internal):
            candidate = candidate.children[-1]
        if not candidate.keys:
            return None
        return candidate.keys[-1], candidate.values[-1]

    def range_items(self, lo, hi) -> Iterator[Tuple[object, object]]:
        """All (key, value) pairs with ``lo <= key <= hi``, ascending."""
        if lo > hi:
            return
        leaf = self._find_leaf(lo)
        i = _bisect_left(leaf.keys, lo)
        while leaf is not None:
            while i < len(leaf.keys):
                if leaf.keys[i] > hi:
                    return
                yield leaf.keys[i], leaf.values[i]
                i += 1
            leaf = leaf.next
            i = 0

    def items(self) -> Iterator[Tuple[object, object]]:
        """All pairs in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator:
        """All keys in order."""
        for k, _ in self.items():
            yield k

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key, value, *, replace: bool = True) -> None:
        """Insert or (by default) replace ``key``.

        With ``replace=False`` a duplicate key raises
        :class:`~repro.errors.IndexError_` — the secondary index relies on
        that to keep bucket identity unambiguous.
        """
        result = self._insert(self._root, key, value, replace)
        if result is not None:
            sep, right = result
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, value, replace):
        if isinstance(node, _Leaf):
            i = _bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                if not replace:
                    raise IndexError_(f"duplicate key {key!r}")
                node.values[i] = value
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._size += 1
            if len(node.keys) > self._order - 1:
                return self._split_leaf(node)
            return None

        i = _bisect_right(node.keys, key)
        result = self._insert(node.children[i], key, value, replace)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.children) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key) -> bool:
        """Remove ``key``; returns whether it was present."""
        found = self._delete(self._root, key)
        if (
            isinstance(self._root, _Internal)
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
        return found

    def _min_leaf_keys(self) -> int:
        return (self._order - 1) // 2

    def _min_children(self) -> int:
        return (self._order + 1) // 2

    def _delete(self, node: _Node, key) -> bool:
        if isinstance(node, _Leaf):
            i = _bisect_left(node.keys, key)
            if i >= len(node.keys) or node.keys[i] != key:
                return False
            node.keys.pop(i)
            node.values.pop(i)
            self._size -= 1
            return True

        i = _bisect_right(node.keys, key)
        child = node.children[i]
        found = self._delete(child, key)
        if not found:
            return False
        self._rebalance(node, i)
        return True

    def _rebalance(self, parent: _Internal, i: int) -> None:
        child = parent.children[i]
        if isinstance(child, _Leaf):
            if len(child.keys) >= self._min_leaf_keys():
                return
        else:
            if len(child.children) >= self._min_children():
                return

        left = parent.children[i - 1] if i > 0 else None
        right = parent.children[i + 1] if i + 1 < len(parent.children) else None

        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self._min_leaf_keys():
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[i - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._min_leaf_keys():
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[i] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                parent.keys.pop(i - 1)
                parent.children.pop(i)
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                parent.keys.pop(i)
                parent.children.pop(i + 1)
        else:
            if left is not None and len(left.children) > self._min_children():
                child.keys.insert(0, parent.keys[i - 1])
                parent.keys[i - 1] = left.keys.pop()
                child.children.insert(0, left.children.pop())
            elif right is not None and len(right.children) > self._min_children():
                child.keys.append(parent.keys[i])
                parent.keys[i] = right.keys.pop(0)
                child.children.append(right.children.pop(0))
            elif left is not None:
                left.keys.append(parent.keys.pop(i - 1))
                left.keys.extend(child.keys)
                left.children.extend(child.children)
                parent.children.pop(i)
            elif right is not None:
                child.keys.append(parent.keys.pop(i))
                child.keys.extend(right.keys)
                child.children.extend(right.children)
                parent.children.pop(i + 1)

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` if any structural invariant fails."""
        leaf_depths = set()

        def walk(node: _Node, lo, hi, depth: int):
            for a, b in zip(node.keys, node.keys[1:]):
                if not a < b:
                    raise IndexError_(f"keys out of order: {a!r} >= {b!r}")
            for k in node.keys:
                if lo is not None and k < lo:
                    raise IndexError_(f"key {k!r} below subtree bound {lo!r}")
                if hi is not None and k >= hi:
                    raise IndexError_(f"key {k!r} above subtree bound {hi!r}")
            if isinstance(node, _Internal):
                if len(node.children) != len(node.keys) + 1:
                    raise IndexError_("internal fanout mismatch")
                if len(node.children) > self._order:
                    raise IndexError_("internal node over order")
                bounds = [lo] + list(node.keys) + [hi]
                for idx, c in enumerate(node.children):
                    walk(c, bounds[idx], bounds[idx + 1], depth + 1)
            else:
                if len(node.keys) != len(node.values):
                    raise IndexError_("leaf key/value mismatch")
                if len(node.keys) > self._order - 1:
                    raise IndexError_("leaf over order")
                leaf_depths.add(depth)

        walk(self._root, None, None, 0)
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {leaf_depths}")
        if sum(1 for _ in self.items()) != self._size:
            raise IndexError_("leaf chain disagrees with size counter")


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
