"""Index substrate: B+ trees, the primary index, and secondary indices.

* :mod:`repro.index.bptree` — generic order-configurable B+ tree
* :mod:`repro.index.primary` — whole-tuple primary index (Figure 4.4)
* :mod:`repro.index.secondary` — bucket-indirected secondary (Figure 4.5)
"""

from repro.index.bptree import BPlusTree
from repro.index.buckets import Bucket
from repro.index.hashindex import ExtendibleHashIndex
from repro.index.primary import PrimaryIndex
from repro.index.secondary import SecondaryIndex

__all__ = [
    "BPlusTree",
    "Bucket",
    "PrimaryIndex",
    "SecondaryIndex",
    "ExtendibleHashIndex",
]
