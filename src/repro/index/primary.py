"""The primary index of Figure 4.4: whole-tuple search keys over blocks.

The paper's primary B+ tree indexes the coded relation by *entire tuples*
(equivalently, by their phi ordinals — phi is order-preserving, so the
two are the same tree).  Each leaf entry maps the first tuple of a data
block to that block; locating a tuple is a floor search: the covering
block is the one whose first tuple is the largest not exceeding the
target.

Because the coded relation is phi-clustered, this one index answers both
point probes and range queries over the *leading* attribute prefix; every
other attribute needs the secondary index of Figure 4.5.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.phi import OrdinalMapper
from repro.errors import IndexError_
from repro.index.bptree import BPlusTree

__all__ = ["PrimaryIndex"]


class PrimaryIndex:
    """B+ tree from block-first phi ordinals to stable disk block ids."""

    def __init__(self, mapper: OrdinalMapper, *, order: int = 32):
        self._mapper = mapper
        self._tree = BPlusTree(order)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mapper: OrdinalMapper,
        directory: Iterable[Tuple[int, int]],
        *,
        order: int = 32,
    ) -> "PrimaryIndex":
        """Build from ``(first_ordinal, block_id)`` pairs.

        Both :class:`~repro.storage.avqfile.AVQFile` and sorted
        :class:`~repro.storage.heapfile.HeapFile` provide such pairs via
        their ``directory()`` methods.
        """
        idx = cls(mapper, order=order)
        for first_ordinal, block_id in directory:
            idx.add_block(first_ordinal, block_id)
        return idx

    def add_block(self, first_ordinal: int, block_id: int) -> None:
        """Register a data block by its first tuple's ordinal."""
        self._tree.insert(first_ordinal, block_id, replace=False)

    def move_block(self, old_first: int, new_first: int, block_id: int) -> None:
        """Re-key a block whose first tuple changed (front insert/delete)."""
        if old_first == new_first:
            self._tree.insert(new_first, block_id, replace=True)
            return
        if not self._tree.delete(old_first):
            raise IndexError_(f"no block keyed by ordinal {old_first}")
        self._tree.insert(new_first, block_id, replace=False)

    def remove_block(self, first_ordinal: int) -> None:
        """Deregister a (now empty) data block."""
        if not self._tree.delete(first_ordinal):
            raise IndexError_(f"no block keyed by ordinal {first_ordinal}")

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def locate_ordinal(self, ordinal: int) -> Optional[int]:
        """Disk id of the block that can contain a tuple with this ordinal."""
        item = self._tree.floor_item(ordinal)
        if item is None:
            # The target precedes every block; only the first block can
            # receive it (relevant for inserts at the extreme low end).
            first = next(self._tree.items(), None)
            return None if first is None else first[1]
        return item[1]

    def locate(self, values: Sequence[int]) -> Optional[int]:
        """Disk id of the block that can contain this tuple (Figure 4.4)."""
        return self.locate_ordinal(self._mapper.phi(values))

    def range_blocks(self, lo: int, hi: int) -> List[int]:
        """Disk ids of all blocks whose ordinal range may intersect [lo, hi].

        The cover is the floor block of ``lo`` plus every block whose first
        ordinal lies in ``(lo, hi]`` — exactly the contiguous run a
        clustered range scan reads.
        """
        if lo > hi:
            return []
        out: List[int] = []
        floor = self._tree.floor_item(lo)
        if floor is not None:
            out.append(floor[1])
            start = floor[0]
        else:
            start = None
        for key, block_id in self._tree.range_items(
            lo if start is None else start, hi
        ):
            if start is not None and key == start:
                continue  # floor block already included
            out.append(block_id)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Data blocks currently indexed."""
        return len(self._tree)

    @property
    def height(self) -> int:
        """Tree height — the paper's index-search I/O is one read per level."""
        return self._tree.height

    @property
    def tree(self) -> BPlusTree:
        """The underlying B+ tree (exposed for inspection and tests)."""
        return self._tree
