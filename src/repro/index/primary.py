"""The primary index of Figure 4.4: whole-tuple search keys over blocks.

The paper's primary B+ tree indexes the coded relation by *entire tuples*
(equivalently, by their phi ordinals — phi is order-preserving, so the
two are the same tree).  Each leaf entry maps the first tuple of a data
block to that block; locating a tuple is a floor search: the covering
block is the one whose first tuple is the largest not exceeding the
target.

Because the coded relation is phi-clustered, this one index answers both
point probes and range queries over the *leading* attribute prefix; every
other attribute needs the secondary index of Figure 4.5.

:class:`TupleOrdinalIndex` is the finer-grained sibling the integrity
layer leans on: one entry per *distinct stored tuple* (with
multiplicity), so a corrupted block's exact contents can be
reconstructed from the index alone (docs/INTEGRITY.md).  Tables opt in
— the block-level index stays the default, matching the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.phi import OrdinalMapper
from repro.errors import IndexError_
from repro.index.bptree import BPlusTree

__all__ = ["PrimaryIndex", "TupleOrdinalIndex"]


class PrimaryIndex:
    """B+ tree from block-first phi ordinals to stable disk block ids."""

    def __init__(self, mapper: OrdinalMapper, *, order: int = 32):
        self._mapper = mapper
        self._tree = BPlusTree(order)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mapper: OrdinalMapper,
        directory: Iterable[Tuple[int, int]],
        *,
        order: int = 32,
    ) -> "PrimaryIndex":
        """Build from ``(first_ordinal, block_id)`` pairs.

        Both :class:`~repro.storage.avqfile.AVQFile` and sorted
        :class:`~repro.storage.heapfile.HeapFile` provide such pairs via
        their ``directory()`` methods.
        """
        idx = cls(mapper, order=order)
        for first_ordinal, block_id in directory:
            idx.add_block(first_ordinal, block_id)
        return idx

    def add_block(self, first_ordinal: int, block_id: int) -> None:
        """Register a data block by its first tuple's ordinal."""
        self._tree.insert(first_ordinal, block_id, replace=False)

    def move_block(self, old_first: int, new_first: int, block_id: int) -> None:
        """Re-key a block whose first tuple changed (front insert/delete)."""
        if old_first == new_first:
            self._tree.insert(new_first, block_id, replace=True)
            return
        if not self._tree.delete(old_first):
            raise IndexError_(f"no block keyed by ordinal {old_first}")
        self._tree.insert(new_first, block_id, replace=False)

    def remove_block(self, first_ordinal: int) -> None:
        """Deregister a (now empty) data block."""
        if not self._tree.delete(first_ordinal):
            raise IndexError_(f"no block keyed by ordinal {first_ordinal}")

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def locate_ordinal(self, ordinal: int) -> Optional[int]:
        """Disk id of the block that can contain a tuple with this ordinal."""
        item = self._tree.floor_item(ordinal)
        if item is None:
            # The target precedes every block; only the first block can
            # receive it (relevant for inserts at the extreme low end).
            first = next(self._tree.items(), None)
            return None if first is None else first[1]
        return item[1]

    def locate(self, values: Sequence[int]) -> Optional[int]:
        """Disk id of the block that can contain this tuple (Figure 4.4)."""
        return self.locate_ordinal(self._mapper.phi(values))

    def range_blocks(self, lo: int, hi: int) -> List[int]:
        """Disk ids of all blocks whose ordinal range may intersect [lo, hi].

        The cover is the floor block of ``lo`` plus every block whose first
        ordinal lies in ``(lo, hi]`` — exactly the contiguous run a
        clustered range scan reads.
        """
        if lo > hi:
            return []
        out: List[int] = []
        floor = self._tree.floor_item(lo)
        if floor is not None:
            out.append(floor[1])
            start = floor[0]
        else:
            start = None
        for key, block_id in self._tree.range_items(
            lo if start is None else start, hi
        ):
            if start is not None and key == start:
                continue  # floor block already included
            out.append(block_id)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Data blocks currently indexed."""
        return len(self._tree)

    @property
    def height(self) -> int:
        """Tree height — the paper's index-search I/O is one read per level."""
        return self._tree.height

    @property
    def tree(self) -> BPlusTree:
        """The underlying B+ tree (exposed for inspection and tests)."""
        return self._tree


class TupleOrdinalIndex:
    """B+ tree from each stored tuple's phi ordinal to its block.

    Every key is an ordinal actually stored in the file; the value is a
    list of ``[block_id, multiplicity]`` pairs — duplicates of one
    ordinal usually share a block, but a split can land copies either
    side of the cut, hence the list.  This is deliberately redundant
    with the data blocks: redundancy is the point.  When a block rots,
    :meth:`ordinals_for_block` recovers its exact logical contents, and
    the repair engine re-encodes them (docs/INTEGRITY.md).
    """

    def __init__(self, *, order: int = 32):
        self._tree = BPlusTree(order)
        self._num_entries = 0

    @classmethod
    def build(
        cls,
        blocks: Iterable[Tuple[int, Sequence[int]]],
        *,
        order: int = 32,
    ) -> "TupleOrdinalIndex":
        """Build from ``(block_id, sorted_ordinals)`` pairs.

        :meth:`~repro.storage.avqfile.AVQFile.iter_blocks` shape, but
        with ordinals — tables feed it one decoded block at a time.
        """
        idx = cls(order=order)
        for block_id, ordinals in blocks:
            for ordinal in ordinals:
                idx.add(ordinal, block_id)
        return idx

    def __len__(self) -> int:
        """Stored tuple entries, counting multiplicity."""
        return self._num_entries

    @property
    def num_ordinals(self) -> int:
        """Distinct ordinals indexed."""
        return len(self._tree)

    def add(self, ordinal: int, block_id: int) -> None:
        """Record one stored occurrence of ``ordinal`` in ``block_id``."""
        pairs: Optional[List[List[int]]] = self._tree.get(ordinal)
        if pairs is None:
            self._tree.insert(ordinal, [[block_id, 1]], replace=False)
        else:
            for pair in pairs:
                if pair[0] == block_id:
                    pair[1] += 1
                    break
            else:
                pairs.append([block_id, 1])
        self._num_entries += 1

    def remove(self, ordinal: int, block_id: int) -> None:
        """Forget one stored occurrence (the tuple was deleted)."""
        pairs: Optional[List[List[int]]] = self._tree.get(ordinal)
        if pairs is not None:
            for i, pair in enumerate(pairs):
                if pair[0] == block_id:
                    pair[1] -= 1
                    if pair[1] == 0:
                        pairs.pop(i)
                    if not pairs:
                        self._tree.delete(ordinal)
                    self._num_entries -= 1
                    return
        raise IndexError_(
            f"no indexed occurrence of ordinal {ordinal} in block "
            f"{block_id}"
        )

    def reassign(
        self, ordinal: int, old_block: int, new_block: int
    ) -> None:
        """Move one occurrence between blocks (a split relocated it)."""
        self.remove(ordinal, old_block)
        self.add(ordinal, new_block)

    def blocks_of(self, ordinal: int) -> List[Tuple[int, int]]:
        """``(block_id, multiplicity)`` pairs holding this ordinal."""
        pairs: Optional[List[List[int]]] = self._tree.get(ordinal)
        if pairs is None:
            return []
        return [(pair[0], pair[1]) for pair in pairs]

    def ordinals_for_block(self, block_id: int) -> List[int]:
        """A block's exact logical contents, multiplicity expanded.

        The repair feed: a sorted ordinal list identical to what the
        healthy block decoded to.  A full index scan — repair is rare
        and correctness beats speed here.
        """
        out: List[int] = []
        for ordinal, pairs in self._tree.items():
            for pair in pairs:
                if pair[0] == block_id:
                    out.extend([ordinal] * pair[1])
        return out

    def block_histogram(self) -> Dict[int, int]:
        """Tuple count per block id — a cheap index/directory cross-check."""
        hist: Dict[int, int] = {}
        for _ordinal, pairs in self._tree.items():
            for pair in pairs:
                hist[pair[0]] = hist.get(pair[0], 0) + pair[1]
        return hist

    @property
    def tree(self) -> BPlusTree:
        """The underlying B+ tree (exposed for inspection and tests)."""
        return self._tree
