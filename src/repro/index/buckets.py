"""Buckets: the Figure 4.5 indirection between attribute values and blocks.

A secondary index over a phi-clustered relation is non-clustering, so one
attribute value maps to many data blocks.  The paper interposes buckets of
``(a : b)`` pairs — attribute value ``a``, data block ``b`` — between the
B+ tree and the relation.  A :class:`Bucket` is the per-value set of block
positions; it stays sorted and deduplicated so that the query engine's
block count ``N`` is exact.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List

from repro.errors import IndexError_

__all__ = ["Bucket"]


class Bucket:
    """Sorted, deduplicated set of data-block positions for one value."""

    __slots__ = ("_blocks",)

    def __init__(self, blocks: Iterable[int] = ()):
        self._blocks: List[int] = []
        for b in blocks:
            self.add(b)

    def add(self, block: int) -> None:
        """Record that some tuple with this value lives in ``block``."""
        if block < 0:
            raise IndexError_(f"block position must be non-negative, got {block}")
        i = bisect.bisect_left(self._blocks, block)
        if i == len(self._blocks) or self._blocks[i] != block:
            self._blocks.insert(i, block)

    def discard(self, block: int) -> bool:
        """Forget ``block``; returns whether it was present."""
        i = bisect.bisect_left(self._blocks, block)
        if i < len(self._blocks) and self._blocks[i] == block:
            self._blocks.pop(i)
            return True
        return False

    @property
    def blocks(self) -> List[int]:
        """Block positions, ascending."""
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._blocks)

    def __contains__(self, block: int) -> bool:
        i = bisect.bisect_left(self._blocks, block)
        return i < len(self._blocks) and self._blocks[i] == block

    def __repr__(self) -> str:
        return f"Bucket({self._blocks})"
