"""Secondary indices with bucket indirection (Figure 4.5).

For every non-clustering attribute ``A_k``, a B+ tree maps each attribute
value to a :class:`~repro.index.buckets.Bucket` of data-block positions —
the paper's ``(a : b)`` pairs.  Executing ``sigma_{a <= A_k <= b}(R)``
walks the tree over ``[a, b]``, unions the buckets, and reads each
distinct block once; the size of that union is the ``N`` measured in
Figure 5.8.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import IndexError_
from repro.index.bptree import BPlusTree
from repro.index.buckets import Bucket

__all__ = ["SecondaryIndex"]


class SecondaryIndex:
    """Non-clustering index over one attribute position."""

    def __init__(self, attribute: str, position: int, *, order: int = 32):
        if position < 0:
            raise IndexError_(f"attribute position must be >= 0, got {position}")
        self._attribute = attribute
        self._position = position
        self._tree = BPlusTree(order)

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        attribute: str,
        position: int,
        blocks: Iterable[Tuple[int, Iterable[Tuple[int, ...]]]],
        *,
        order: int = 32,
    ) -> "SecondaryIndex":
        """Build from ``(block_id, tuples)`` pairs (a full file scan)."""
        idx = cls(attribute, position, order=order)
        for block_id, tuples in blocks:
            for t in tuples:
                idx.add(t[position], block_id)
        return idx

    def add(self, value: int, block_id: int) -> None:
        """Record that a tuple with ``A_k = value`` lives in ``block_id``."""
        bucket = self._tree.get(value)
        if bucket is None:
            bucket = Bucket()
            self._tree.insert(value, bucket, replace=False)
        bucket.add(block_id)

    def discard(self, value: int, block_id: int) -> bool:
        """Drop one (value, block) association; prunes empty buckets."""
        bucket = self._tree.get(value)
        if bucket is None:
            return False
        removed = bucket.discard(block_id)
        if removed and len(bucket) == 0:
            self._tree.delete(value)
        return removed

    def reindex_block(
        self,
        block_id: int,
        old_tuples: Iterable[Tuple[int, ...]],
        new_tuples: Iterable[Tuple[int, ...]],
    ) -> None:
        """Replace a block's contribution after it was re-coded.

        Section 4.2 mutations rewrite one block; only that block's
        associations change.
        """
        old_values = {t[self._position] for t in old_tuples}
        new_values = {t[self._position] for t in new_tuples}
        for v in old_values - new_values:
            self.discard(v, block_id)
        for v in new_values - old_values:
            self.add(v, block_id)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def lookup(self, value: int) -> List[int]:
        """Bucket for one value: block ids holding tuples with ``A_k = value``."""
        bucket = self._tree.get(value)
        return [] if bucket is None else bucket.blocks

    def range_lookup(self, lo: int, hi: int) -> List[int]:
        """Distinct block ids holding any tuple with ``lo <= A_k <= hi``.

        The length of the result is exactly the ``N`` of the paper's
        Section 5.3.3 block-count simulation.
        """
        seen = set()
        for _, bucket in self._tree.range_items(lo, hi):
            seen.update(bucket)
        return sorted(seen)

    def values_for_block(self, block_id: int) -> List[int]:
        """Attribute values known to occur in ``block_id``, ascending.

        The inverse probe the repair engine needs: the per-attribute
        candidate set for reconstructing a corrupt block's tuples
        (:mod:`repro.storage.integrity`).  A full tree walk — repair is
        rare and correctness beats speed here.
        """
        return [
            value
            for value, bucket in self._tree.items()
            if block_id in bucket
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attribute(self) -> str:
        """Name of the indexed attribute."""
        return self._attribute

    @property
    def position(self) -> int:
        """Tuple position of the indexed attribute."""
        return self._position

    @property
    def num_values(self) -> int:
        """Distinct attribute values currently indexed."""
        return len(self._tree)

    @property
    def tree(self) -> BPlusTree:
        """The underlying B+ tree (exposed for inspection and tests)."""
        return self._tree
