"""An extendible hash index — the paper's alternative access method.

Section 4 closes with: "Although we have illustrated the use of tree
indices as the access mechanisms, we do not preclude the use of other
methods, such as hashing."  This module supplies that other method: a
classic extendible hash table (directory doubling, bucket splitting on
overflow) from attribute values to the same block buckets the secondary
B+ tree uses.

Hash indices answer equality probes in O(1) block-bucket lookups but —
unlike the B+ tree — cannot serve range predicates; the query engine
therefore only considers them for ``lo == hi`` selections.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import IndexError_
from repro.index.buckets import Bucket

__all__ = ["ExtendibleHashIndex"]


class _HashBucket:
    """One directory-addressed page of (key, Bucket) entries."""

    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        self.entries: dict = {}


class ExtendibleHashIndex:
    """Equality-only secondary index with extendible hashing.

    Parameters
    ----------
    attribute, position:
        Name and tuple position of the indexed attribute.
    bucket_capacity:
        Distinct keys per hash bucket before it splits.
    """

    def __init__(
        self,
        attribute: str,
        position: int,
        *,
        bucket_capacity: int = 8,
    ):
        if position < 0:
            raise IndexError_(f"attribute position must be >= 0, got {position}")
        if bucket_capacity < 1:
            raise IndexError_(
                f"bucket capacity must be >= 1, got {bucket_capacity}"
            )
        self._attribute = attribute
        self._position = position
        self._capacity = bucket_capacity
        self._global_depth = 1
        first, second = _HashBucket(1), _HashBucket(1)
        self._directory: List[_HashBucket] = [first, second]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        attribute: str,
        position: int,
        blocks: Iterable[Tuple[int, Iterable[Tuple[int, ...]]]],
        *,
        bucket_capacity: int = 8,
    ) -> "ExtendibleHashIndex":
        """Build from ``(block_id, tuples)`` pairs (a full file scan)."""
        idx = cls(attribute, position, bucket_capacity=bucket_capacity)
        for block_id, tuples in blocks:
            for t in tuples:
                idx.add(t[position], block_id)
        return idx

    # ------------------------------------------------------------------
    # Hashing machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _hash(key) -> int:
        # hash() of small ints is the int itself, which would make the
        # directory index degenerate to the low bits of the value; mix it.
        h = hash(key)
        h ^= (h >> 16)
        h *= 0x45D9F3B
        h &= 0xFFFFFFFF
        h ^= (h >> 16)
        return h

    def _slot(self, key) -> int:
        return self._hash(key) & ((1 << self._global_depth) - 1)

    def _bucket_for(self, key) -> _HashBucket:
        return self._directory[self._slot(key)]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add(self, value, block_id: int) -> None:
        """Record that a tuple with this value lives in ``block_id``."""
        bucket = self._bucket_for(value)
        existing = bucket.entries.get(value)
        if existing is not None:
            existing.add(block_id)
            return
        while len(bucket.entries) >= self._capacity:
            self._split(bucket)
            bucket = self._bucket_for(value)
        blocks = Bucket()
        blocks.add(block_id)
        bucket.entries[value] = blocks

    def _split(self, bucket: _HashBucket) -> None:
        if bucket.local_depth == self._global_depth:
            # double the directory
            self._directory = self._directory + self._directory
            self._global_depth += 1
        new_depth = bucket.local_depth + 1
        sibling = _HashBucket(new_depth)
        bucket.local_depth = new_depth
        distinguishing_bit = 1 << (new_depth - 1)

        moved = {}
        for key, blocks in bucket.entries.items():
            if self._hash(key) & distinguishing_bit:
                moved[key] = blocks
        for key in moved:
            del bucket.entries[key]
        sibling.entries = moved

        # repoint directory slots whose distinguishing bit is set
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket and slot & distinguishing_bit:
                self._directory[slot] = sibling

    def discard(self, value, block_id: int) -> bool:
        """Drop one (value, block) association; prunes empty entries."""
        bucket = self._bucket_for(value)
        blocks = bucket.entries.get(value)
        if blocks is None:
            return False
        removed = blocks.discard(block_id)
        if removed and len(blocks) == 0:
            del bucket.entries[value]
        return removed

    def reindex_block(
        self,
        block_id: int,
        old_tuples: Iterable[Tuple[int, ...]],
        new_tuples: Iterable[Tuple[int, ...]],
    ) -> None:
        """Replace a re-coded block's contribution (Section 4.2 mutation)."""
        old_values = {t[self._position] for t in old_tuples}
        new_values = {t[self._position] for t in new_tuples}
        for v in old_values - new_values:
            self.discard(v, block_id)
        for v in new_values - old_values:
            self.add(v, block_id)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def lookup(self, value) -> List[int]:
        """Block ids holding tuples with ``A_k = value`` (O(1) probe)."""
        blocks = self._bucket_for(value).entries.get(value)
        return [] if blocks is None else blocks.blocks

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attribute(self) -> str:
        """Name of the indexed attribute."""
        return self._attribute

    @property
    def position(self) -> int:
        """Tuple position of the indexed attribute."""
        return self._position

    @property
    def global_depth(self) -> int:
        """Directory depth (directory size is ``2**global_depth``)."""
        return self._global_depth

    @property
    def num_values(self) -> int:
        """Distinct attribute values indexed."""
        return sum(
            len(b.entries) for b in self._unique_buckets()
        )

    @property
    def num_buckets(self) -> int:
        """Distinct hash buckets (directory slots may share)."""
        return len(self._unique_buckets())

    def _unique_buckets(self) -> List[_HashBucket]:
        seen: List[_HashBucket] = []
        ids = set()
        for b in self._directory:
            if id(b) not in ids:
                ids.add(id(b))
                seen.append(b)
        return seen

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` on any structural violation."""
        if len(self._directory) != 1 << self._global_depth:
            raise IndexError_("directory size is not 2**global_depth")
        for slot, bucket in enumerate(self._directory):
            if bucket.local_depth > self._global_depth:
                raise IndexError_("local depth exceeds global depth")
            # every key in the bucket must hash to a slot pointing at it
            mask = (1 << bucket.local_depth) - 1
            expected_prefix = slot & mask
            for key in bucket.entries:
                if self._hash(key) & mask != expected_prefix:
                    raise IndexError_(
                        f"key {key!r} misfiled under slot {slot}"
                    )
