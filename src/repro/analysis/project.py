"""Whole-program context for the project-mode rules (R009–R014).

Per-module rules (R001–R008) see one file at a time; the properties
that matter for the concurrent serving layer — resources closed on all
paths, shared mutable state latched, blocking calls kept off async
paths, exception contracts held at package boundaries — are *global*
properties.  :class:`ProjectContext` parses every module of a package
tree exactly once and derives the shared structures the project rules
consume:

* an **import graph** (which project modules import which, and under
  what local aliases),
* a **symbol table** (top-level defs, classes, and methods, with
  re-exports chased through ``__init__`` modules),
* a conservative **call graph** (name- and attribute-based resolution;
  unresolved dynamic calls are dropped, so reachability is an
  under-approximation while per-call-site facts stay precise),
* the set of **resource classes** (any project class defining
  ``close()`` or ``__exit__``, plus the stdlib executors), and
* the **shared-state registry**: every module-level mutable binding,
  with the reason string from its ``# repro: shared-state[reason]``
  pragma when one is present.

Two source pragmas are recognised (both greppable, like ``repro:
noqa``)::

    CACHE: Dict[str, int] = {}   # repro: shared-state[reason ...]

    # repro: async-ready
    def handle_query(...):       # R012 checks blocking reachability

Build cost is one parse per file; the context is reused by every
project rule in a scan (see :mod:`repro.analysis.rules_project`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ModuleContext
from repro.analysis.runner import collect_files, parse_module
from repro.errors import AnalysisError

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectContext",
    "SharedStateEntry",
    "build_project",
]

_SHARED_STATE_RE = re.compile(
    r"#\s*repro:\s*shared-state\[(?P<reason>[^\]]*)\]"
)
_ASYNC_READY_RE = re.compile(r"#\s*repro:\s*async-ready\b")

#: External classes treated as resources even though their source is
#: not part of the project (imported from :mod:`concurrent.futures`).
_EXTERNAL_RESOURCES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
    }
)

#: Module-level value expressions that make a binding mutable.
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }
)


@dataclass(frozen=True)
class SharedStateEntry:
    """One module-level mutable binding (the R010 inventory row)."""

    module: str
    name: str
    line: int
    #: Reason string from ``# repro: shared-state[...]``, or ``None``
    #: when the binding carries no pragma (an R010 finding).
    reason: Optional[str]
    #: ``"mutable-value"`` or ``"rebound-global"``.
    kind: str


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with its exception-guard context."""

    callee: str
    line: int
    #: Exception type names of ``except`` clauses enclosing the call
    #: site within the calling function (``None`` entries mean a bare
    #: ``except:``), flattened across nesting levels.
    guards: Tuple[Optional[str], ...]


@dataclass
class FunctionInfo:
    """One function or method known to the project."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    is_public: bool
    async_ready: bool = False
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One top-level class, with its methods and base-class names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)

    def classmethods(self) -> Set[str]:
        """Names of methods decorated ``@classmethod``."""
        out: Set[str] = set()
        for name, info in self.methods.items():
            decorators = getattr(info.node, "decorator_list", [])
            for dec in decorators:
                target = dec.func if isinstance(dec, ast.Call) else dec
                if isinstance(target, ast.Name) and target.id == "classmethod":
                    out.add(name)
        return out


@dataclass
class _ModuleInfo:
    """Per-module structures the context builder accumulates."""

    ctx: ModuleContext
    #: alias -> dotted module name, for imports that bind a module.
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: alias -> (source module, source name), for from-imports of names.
    symbol_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: top-level def/class names defined in this module.
    defs: Set[str] = field(default_factory=set)


class ProjectContext:
    """Everything the project rules need, built once per scan."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleContext] = {}
        self.import_graph: Dict[str, Set[str]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.resource_classes: Set[str] = set()
        self.shared_state: List[SharedStateEntry] = []
        self._info: Dict[str, _ModuleInfo] = {}

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleContext]:
        """The parsed module at ``path``, if it is part of the project."""
        for ctx in self.modules.values():
            if str(ctx.path) == path:
                return ctx
        return None

    def resolve_module(self, module: str, alias: str) -> Optional[str]:
        """The project module an alias refers to, if any."""
        info = self._info.get(module)
        if info is None:
            return None
        target = info.module_aliases.get(alias)
        if target is not None and target in self.modules:
            return target
        return None

    def resolve_symbol(
        self, module: str, name: str, _seen: Tuple[str, ...] = ()
    ) -> Optional[str]:
        """Dotted target of a top-level name, chasing re-exports.

        Returns ``"repro.storage.wal.WriteAheadLog"`` style qualnames
        for project symbols, the external dotted path for names
        imported from outside the project, or ``None`` for names the
        module never binds.
        """
        key = f"{module}:{name}"
        if key in _seen:  # re-export cycle
            return None
        info = self._info.get(module)
        if info is None:
            return None
        if name in info.defs:
            return f"{module}.{name}"
        if name in info.symbol_imports:
            src_module, src_name = info.symbol_imports[name]
            if src_module in self.modules:
                resolved = self.resolve_symbol(
                    src_module, src_name, _seen + (key,)
                )
                if resolved is not None:
                    return resolved
                # ``from repro.storage import wal`` style: the "symbol"
                # is really a submodule.
                if f"{src_module}.{src_name}" in self.modules:
                    return f"{src_module}.{src_name}"
                return None
            return f"{src_module}.{src_name}"
        if name in info.module_aliases:
            return info.module_aliases[name]
        return None

    def is_resource(self, qualname: Optional[str]) -> bool:
        """Whether a resolved target names a resource class."""
        if qualname is None:
            return False
        return (
            qualname in self.resource_classes
            or qualname in _EXTERNAL_RESOURCES
        )

    def shared_state_registry(self) -> List[SharedStateEntry]:
        """Annotated entries only — the audited shared-state list."""
        return [e for e in self.shared_state if e.reason is not None]

    def public_entry_points(
        self, packages: Sequence[str]
    ) -> List[FunctionInfo]:
        """Public functions/methods defined under the given packages."""
        out: List[FunctionInfo] = []
        for fn in self.functions.values():
            segments = fn.module.split(".")
            if not any(pkg in segments for pkg in packages):
                continue
            if fn.is_public:
                out.append(fn)
        return sorted(out, key=lambda f: f.qualname)


def build_project(paths: Iterable[Path]) -> ProjectContext:
    """Parse a package tree and derive every project-level structure."""
    project = ProjectContext()
    files = collect_files(paths)
    if not files:
        raise AnalysisError("project scan found no python files")
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{path}: cannot read: {exc}") from exc
        ctx = parse_module(source, path)
        project.modules[ctx.module_name] = ctx
        project._info[ctx.module_name] = _ModuleInfo(ctx=ctx)
    for name, info in project._info.items():
        _collect_imports(name, info)
        _collect_defs(project, name, info)
        _collect_shared_state(project, name, info)
    _build_import_graph(project)
    _find_resource_classes(project)
    for fn in project.functions.values():
        _collect_calls(project, fn)
    return project


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _iter_import_nodes(tree: ast.Module) -> Iterable[ast.stmt]:
    """Top-level imports, including those inside If/Try guards."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, (ast.If, ast.Try)):
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    yield inner


def _collect_imports(module: str, info: _ModuleInfo) -> None:
    for stmt in _iter_import_nodes(info.ctx.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.module_aliases[bound] = target
        elif isinstance(stmt, ast.ImportFrom):
            src = stmt.module or ""
            if stmt.level:  # relative import: resolve against this module
                base = module.split(".")
                if info.ctx.is_package_init:
                    base = base + ["_"]  # packages count from themselves
                base = base[: len(base) - stmt.level]
                src = ".".join(base + ([src] if src else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.symbol_imports[bound] = (src, alias.name)


def _collect_defs(
    project: ProjectContext, module: str, info: _ModuleInfo
) -> None:
    lines = info.ctx.lines()
    for stmt in info.ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.defs.add(stmt.name)
            fn = _function_info(module, None, stmt, lines)
            project.functions[fn.qualname] = fn
        elif isinstance(stmt, ast.ClassDef):
            info.defs.add(stmt.name)
            cls = ClassInfo(
                qualname=f"{module}.{stmt.name}",
                module=module,
                name=stmt.name,
                node=stmt,
                bases=[b for b in map(_base_name, stmt.bases) if b],
            )
            for member in stmt.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    fn = _function_info(module, stmt.name, member, lines)
                    cls.methods[member.name] = fn
                    project.functions[fn.qualname] = fn
            project.classes[cls.qualname] = cls
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            for target in _assign_names(stmt):
                info.defs.add(target)


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _assign_names(stmt: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    out: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            out.append(target.id)
    return out


def _function_info(
    module: str,
    class_name: Optional[str],
    node: ast.stmt,
    lines: List[str],
) -> FunctionInfo:
    name = getattr(node, "name", "<anon>")
    qual = (
        f"{module}.{class_name}.{name}"
        if class_name
        else f"{module}.{name}"
    )
    public = not name.startswith("_") and (
        class_name is None or not class_name.startswith("_")
    )
    return FunctionInfo(
        qualname=qual,
        module=module,
        name=name,
        class_name=class_name,
        node=node,
        lineno=getattr(node, "lineno", 1),
        is_public=public,
        async_ready=_is_async_ready(node, lines),
    )


def _is_async_ready(node: ast.stmt, lines: List[str]) -> bool:
    """True when the def (or the line above it) carries the pragma."""
    candidates: List[int] = [getattr(node, "lineno", 1)]
    decorators = getattr(node, "decorator_list", [])
    first = min(
        [getattr(d, "lineno", candidates[0]) for d in decorators],
        default=candidates[0],
    )
    candidates.append(first)
    candidates.append(first - 1)
    for lineno in candidates:
        if 1 <= lineno <= len(lines) and _ASYNC_READY_RE.search(
            lines[lineno - 1]
        ):
            return True
    return False


def _collect_shared_state(
    project: ProjectContext, module: str, info: _ModuleInfo
) -> None:
    tree = info.ctx.tree
    lines = info.ctx.lines()
    rebound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            rebound.update(node.names)
    for stmt in tree.body:
        names = _assign_names(stmt)
        if not names:
            continue
        value = stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) else None
        for name in names:
            if name.startswith("__"):  # __all__ and friends
                continue
            mutable_value = value is not None and _is_mutable_value(value)
            is_rebound = name in rebound
            if not (mutable_value or is_rebound):
                continue
            lineno = stmt.lineno
            reason: Optional[str] = None
            if 1 <= lineno <= len(lines):
                match = _SHARED_STATE_RE.search(lines[lineno - 1])
                if match is not None:
                    reason = match.group("reason").strip() or None
            project.shared_state.append(
                SharedStateEntry(
                    module=module,
                    name=name,
                    line=lineno,
                    reason=reason,
                    kind=(
                        "rebound-global" if is_rebound else "mutable-value"
                    ),
                )
            )


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    if isinstance(node, ast.IfExp):
        return _is_mutable_value(node.body) or _is_mutable_value(node.orelse)
    return False


def _build_import_graph(project: ProjectContext) -> None:
    for module, info in project._info.items():
        edges: Set[str] = set()
        for target in info.module_aliases.values():
            if target in project.modules:
                edges.add(target)
        for src_module, src_name in info.symbol_imports.values():
            if src_module in project.modules:
                edges.add(src_module)
            if f"{src_module}.{src_name}" in project.modules:
                edges.add(f"{src_module}.{src_name}")
        edges.discard(module)
        project.import_graph[module] = edges


def _find_resource_classes(project: ProjectContext) -> None:
    """Classes owning ``close``/``__exit__``, propagated through bases."""
    for cls in project.classes.values():
        if "close" in cls.methods or "__exit__" in cls.methods:
            project.resource_classes.add(cls.qualname)
    changed = True
    while changed:
        changed = False
        for cls in project.classes.values():
            if cls.qualname in project.resource_classes:
                continue
            for base in cls.bases:
                target = project.resolve_symbol(cls.module, base)
                if target is not None and project.is_resource(target):
                    project.resource_classes.add(cls.qualname)
                    changed = True
                    break


# ----------------------------------------------------------------------
# Call-graph construction
# ----------------------------------------------------------------------


class _CallCollector(ast.NodeVisitor):
    """Collect resolved call sites, tracking enclosing except guards."""

    def __init__(self, project: ProjectContext, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.guards: List[Optional[str]] = []

    def visit_Try(self, node: ast.Try) -> None:
        handler_names: List[Optional[str]] = []
        for handler in node.handlers:
            handler_names.extend(_handler_type_names(handler))
        for stmt in node.body:
            self.guards.extend(handler_names)
            self.visit(stmt)
            del self.guards[len(self.guards) - len(handler_names):]
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _resolve_call(self.project, self.fn, node)
        if callee is not None:
            self.fn.calls.append(
                CallSite(
                    callee=callee,
                    line=node.lineno,
                    guards=tuple(self.guards),
                )
            )
        self.generic_visit(node)


def _handler_type_names(
    handler: ast.ExceptHandler,
) -> List[Optional[str]]:
    if handler.type is None:
        return [None]
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    out: List[Optional[str]] = []
    for t in types:
        if isinstance(t, ast.Name):
            out.append(t.id)
        elif isinstance(t, ast.Attribute):
            out.append(t.attr)
    return out


def _collect_calls(project: ProjectContext, fn: FunctionInfo) -> None:
    collector = _CallCollector(project, fn)
    for stmt in getattr(fn.node, "body", []):
        collector.visit(stmt)


def _resolve_call(
    project: ProjectContext, fn: FunctionInfo, node: ast.Call
) -> Optional[str]:
    """Conservative call-target resolution (see module docstring)."""
    func = node.func
    if isinstance(func, ast.Name):
        target = project.resolve_symbol(fn.module, func.id)
        if target is None:
            return None
        if target in project.functions:
            return target
        cls = project.classes.get(target)
        if cls is not None:
            init = cls.methods.get("__init__")
            return init.qualname if init is not None else target
        return None
    if not isinstance(func, ast.Attribute):
        return None
    chain: List[str] = [func.attr]
    base: ast.expr = func.value
    while isinstance(base, ast.Attribute):
        chain.append(base.attr)
        base = base.value
    if not isinstance(base, ast.Name):
        return None
    chain.append(base.id)
    chain.reverse()
    head, rest = chain[0], chain[1:]
    if head in ("self", "cls") and fn.class_name is not None and len(rest) == 1:
        method = _lookup_method(project, fn.module, fn.class_name, rest[0])
        return method.qualname if method is not None else None
    target = project.resolve_symbol(fn.module, head)
    if target is None:
        return None
    if target in project.modules and rest:
        # module alias: mod.func(...) or mod.Class.method(...)
        symbol = project.resolve_symbol(target, rest[0])
        if symbol is None:
            return None
        if len(rest) == 1:
            if symbol in project.functions:
                return symbol
            cls = project.classes.get(symbol)
            if cls is not None:
                init = cls.methods.get("__init__")
                return init.qualname if init is not None else symbol
            return None
        cls = project.classes.get(symbol)
        if cls is not None and len(rest) == 2:
            method = cls.methods.get(rest[1])
            return method.qualname if method is not None else None
        return None
    cls = project.classes.get(target)
    if cls is not None and len(rest) == 1:
        method = cls.methods.get(rest[0])
        return method.qualname if method is not None else None
    return None


def _lookup_method(
    project: ProjectContext,
    module: str,
    class_name: str,
    method: str,
) -> Optional[FunctionInfo]:
    """A method on a class or its project-resolvable bases."""
    seen: Set[str] = set()
    queue: List[Optional[str]] = [f"{module}.{class_name}"]
    while queue:
        qualname = queue.pop(0)
        if qualname is None or qualname in seen:
            continue
        seen.add(qualname)
        cls = project.classes.get(qualname)
        if cls is None:
            continue
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            queue.append(project.resolve_symbol(cls.module, base))
    return None
