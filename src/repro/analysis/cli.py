"""Command-line front end for the static-analysis pass.

Exit codes (mirrored by ``repro lint`` and asserted by
``tests/analysis/test_cli.py``):

* ``0`` — scan ran, no active findings
* ``1`` — scan ran, at least one active finding
* ``2`` — usage error (unknown rule id, missing path, bad flag)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import render_json, render_rules, render_text
from repro.analysis.runner import scan_paths
from repro.errors import AnalysisError

__all__ = ["build_parser", "main"]

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST lint for repro codec invariants (R001-R008); "
            "see docs/ANALYSIS.md"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings waived by # repro: noqa",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    try:
        result = scan_paths(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except AnalysisError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return USAGE_ERROR
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code
