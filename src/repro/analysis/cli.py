"""Command-line front end for the static-analysis pass.

Exit codes (mirrored by ``repro lint`` and asserted by
``tests/analysis/test_cli.py``):

* ``0`` — scan ran, no active findings
* ``1`` — scan ran, at least one active finding
* ``2`` — usage error (unknown rule id, missing path, bad flag)

Project mode (``--project``) parses the tree once and runs the
whole-program rules R009–R014 alongside R001–R008/R015.  The
diff-aware baseline workflow rides on it::

    python -m repro.analysis --project --write-baseline analysis-baseline.json
    python -m repro.analysis --project --baseline analysis-baseline.json

With ``--baseline``, findings recorded in the file are reported as
*baselined* and excluded from the exit code: CI fails only on new
findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import (
    render_json,
    render_rules,
    render_shared_state,
    render_text,
)
from repro.analysis.runner import scan_paths, scan_project
from repro.errors import AnalysisError

__all__ = ["build_parser", "main"]

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST lint for repro codec invariants (R001-R015); "
            "see docs/ANALYSIS.md"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings waived by # repro: noqa",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "whole-program mode: build the project context and run "
            "R009-R014 alongside the per-module rules"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of known findings; matches are reported as "
            "baselined and excluded from the exit code (implies "
            "--project)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "record the current findings as the new baseline and exit 0 "
            "(implies --project)"
        ),
    )
    parser.add_argument(
        "--shared-state",
        action="store_true",
        help=(
            "print the audited shared-state registry (R010 inventory) "
            "and exit (implies --project)"
        ),
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    project_mode = (
        args.project
        or args.baseline is not None
        or args.write_baseline is not None
        or args.shared_state
    )
    try:
        if project_mode:
            result, project = scan_project(
                paths,
                select=_split_ids(args.select),
                ignore=_split_ids(args.ignore),
            )
        else:
            result = scan_paths(
                paths,
                select=_split_ids(args.select),
                ignore=_split_ids(args.ignore),
            )
            project = None
        if args.shared_state:
            print(render_shared_state(project))
            return 0
        if args.write_baseline is not None:
            count = write_baseline(Path(args.write_baseline), result.findings)
            print(
                f"wrote {count} finding(s) to {args.write_baseline}",
                file=sys.stderr,
            )
            return 0
        if args.baseline is not None:
            known = load_baseline(Path(args.baseline))
            result.findings = apply_baseline(result.findings, known)
    except AnalysisError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return USAGE_ERROR
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code
