"""Finding fingerprints and the diff-aware CI baseline.

Strict whole-program rules cannot land with a big-bang cleanup: the
first scan of a mature tree reports pre-existing findings that are not
regressions.  The baseline workflow makes the rules enforceable from
day one:

1. ``repro lint --project --write-baseline analysis-baseline.json``
   records every current finding's *fingerprint*;
2. the baseline file is committed;
3. CI runs ``repro lint --project --baseline analysis-baseline.json``,
   which marks known findings as *baselined* (reported, excluded from
   the exit code) and fails only on **new** findings.

Fingerprints are **line-independent**: unrelated edits that shift a
finding up or down the file do not churn the baseline.  A fingerprint
hashes the rule id, the normalised path (relative to the nearest
``src`` directory, so scans from different working directories agree),
the message, and an occurrence index that disambiguates identical
findings in one file.  Fixing one of N identical findings therefore
invalidates only the last occurrence — strictly better than including
the line and invalidating all of them on any edit above.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path, PurePosixPath
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Finding
from repro.errors import AnalysisError

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "apply_baseline",
    "fingerprint_findings",
    "load_baseline",
    "normalize_path",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def normalize_path(path: str) -> str:
    """Invocation-independent form of a finding path.

    Posix separators, anchored at the last ``src`` segment when one is
    present (``/root/repo/src/repro/io/wal.py`` and ``src/repro/io/
    wal.py`` agree); otherwise the path is used as given.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    if "src" in parts:
        last = len(parts) - 1 - tuple(reversed(parts)).index("src")
        parts = parts[last:]
    return "/".join(parts)


def fingerprint_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Copies of ``findings`` with stable fingerprints filled in.

    Input order does not matter: occurrence indices are assigned in
    ``sort_key`` order so the same finding set always produces the
    same fingerprints.
    """
    counters: Counter = Counter()
    stamped: Dict[int, Finding] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        key = (
            f"{finding.rule_id}:{normalize_path(finding.path)}:"
            f"{finding.message}"
        )
        occurrence = counters[key]
        counters[key] += 1
        digest = hashlib.sha256(
            f"{key}:{occurrence}".encode("utf-8")
        ).hexdigest()[:16]
        stamped[id(finding)] = finding.with_fingerprint(digest)
    return [stamped[id(f)] for f in findings]


def apply_baseline(
    findings: Sequence[Finding], known: frozenset
) -> List[Finding]:
    """Mark findings whose fingerprint appears in the baseline."""
    out: List[Finding] = []
    for finding in findings:
        if finding.fingerprint and finding.fingerprint in known:
            out.append(finding.baseline())
        else:
            out.append(finding)
    return out


def load_baseline(path: Path) -> frozenset:
    """The set of baselined fingerprints in a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"{path}: cannot read baseline: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path}: invalid baseline JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise AnalysisError(f"{path}: not a baseline file (no findings key)")
    version = payload.get("version")
    if version != BASELINE_SCHEMA_VERSION:
        raise AnalysisError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    fingerprints = []
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise AnalysisError(
                f"{path}: baseline entry without a fingerprint: {entry!r}"
            )
        fingerprints.append(entry["fingerprint"])
    return frozenset(fingerprints)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write active findings as the new baseline; returns the count.

    Suppressed findings are excluded — a ``# repro: noqa`` waiver is
    already an explicit decision and needs no baseline entry.  Entries
    carry the human-readable context next to the fingerprint so a
    baseline diff reviews like a report, but only the fingerprint is
    consulted when the baseline is applied.
    """
    entries: List[Tuple[str, Dict[str, object]]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        if finding.suppressed:
            continue
        entries.append(
            (
                finding.fingerprint,
                {
                    "fingerprint": finding.fingerprint,
                    "rule": finding.rule_id,
                    "file": normalize_path(finding.path),
                    "line": finding.line,
                    "message": finding.message,
                },
            )
        )
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "findings": [entry for _, entry in entries],
    }
    try:
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    except OSError as exc:
        raise AnalysisError(f"{path}: cannot write baseline: {exc}") from exc
    return len(entries)
