"""The repo-specific rule set (R001–R008).

Each rule guards an invariant the AVQ codec's lossless round-trip
guarantee (Theorem 2.1) silently relies on.  Differential coders fail
*catastrophically* on unchecked edge cases — a flipped bit or a
truncated width corrupts every tuple after it — so the failure classes
below are worth a dedicated static pass rather than runtime faith.

See ``docs/ANALYSIS.md`` for the full rationale, examples, and the
suppression syntax (``# repro: noqa[R00x]``).
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    walk_without_functions,
)

__all__ = [
    "AssertValidationRule",
    "BroadExceptRule",
    "ByteWidthRule",
    "DunderAllRule",
    "MutableDefaultRule",
    "RaiseBuiltinRule",
    "RawClockRule",
    "UnseededRandomRule",
]


def _attribute_chain(node: ast.AST) -> List[str]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (empty if not names)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _exception_name(node: Optional[ast.AST]) -> Optional[str]:
    """The class name behind ``raise X`` / ``raise X(...)``, if static."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: Builtin exceptions a library module may legitimately raise: protocol
#: sentinels and control-flow exceptions, never error reports.
_R001_ALLOWED = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
    }
)


@register
class RaiseBuiltinRule(Rule):
    """R001: raise only :class:`repro.errors.ReproError` subclasses."""

    rule_id = "R001"
    severity = "error"
    summary = (
        "library code must raise ReproError subclasses, not builtin "
        "exceptions (callers catch ReproError to distinguish library "
        "failures from bugs)"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _exception_name(node.exc)
            if name is None:  # bare ``raise`` (re-raise) or dynamic
                continue
            if name in _BUILTIN_EXCEPTIONS and name not in _R001_ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"raises builtin {name}; raise a repro.errors."
                    f"ReproError subclass so callers can catch library "
                    f"failures precisely",
                )


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except (Base)Exception``."""
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [_exception_name(e) for e in handler.type.elts]
    else:
        names = [_exception_name(handler.type)]
    return any(n in ("Exception", "BaseException") for n in names)


@register
class BroadExceptRule(Rule):
    """R002: no broad ``except`` that swallows without re-raising."""

    rule_id = "R002"
    severity = "error"
    summary = (
        "bare/broad except clauses must re-raise: a swallowed decode "
        "error turns corruption into silently wrong tuples"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            reraises = any(
                isinstance(inner, ast.Raise)
                for stmt in node.body
                for inner in walk_without_functions(stmt)
            )
            if not reraises:
                yield self.finding(
                    ctx,
                    node,
                    "broad except swallows the error; re-raise, narrow "
                    "the exception type, or justify with "
                    "# repro: noqa[R002]",
                )


@register
class AssertValidationRule(Rule):
    """R003: no ``assert`` for runtime validation in library code."""

    rule_id = "R003"
    severity = "error"
    summary = (
        "assert statements vanish under python -O; validate with an "
        "explicit raise of a ReproError subclass"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "assert is stripped by python -O; use an explicit "
                    "raise for runtime validation",
                )


_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = _exception_name(node.func)
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    """R004: no mutable default arguments."""

    rule_id = "R004"
    severity = "warning"
    summary = (
        "mutable default arguments are shared across calls; default to "
        "None and allocate inside the function"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"{name}() has a mutable default argument; use "
                        f"None and allocate per call",
                    )


def _extract_dunder_all(
    tree: ast.Module,
) -> Tuple[Optional[ast.stmt], Optional[List[str]]]:
    """The ``__all__`` assignment node and its names, if literal."""
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return stmt, [e.value for e in value.elts]
        return stmt, None
    return None, None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    bound: Set[str] = set()

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                add_target(target)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            add_target(stmt.target)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                name = alias.asname or alias.name
                bound.add(name.split(".")[0])
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks and import fallbacks bind names too.
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    for alias in inner.names:
                        name = alias.asname or alias.name
                        bound.add(name.split(".")[0])
                elif isinstance(
                    inner,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    bound.add(inner.name)
                elif isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        add_target(target)
    return bound


@register
class DunderAllRule(Rule):
    """R005: ``__all__`` declared and consistent with public names."""

    rule_id = "R005"
    severity = "warning"
    summary = (
        "every module declares __all__, every listed name exists, and "
        "every public def/class is listed (the public API is explicit)"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_dunder_main:
            return  # entry-point scripts have no importable API
        stmt, names = _extract_dunder_all(ctx.tree)
        if stmt is None:
            yield self.finding(
                ctx,
                ctx.tree,
                "module does not declare __all__; the public API must "
                "be explicit",
                line=1,
            )
            return
        if names is None:
            yield self.finding(
                ctx,
                stmt,
                "__all__ must be a literal list/tuple of string names",
            )
            return
        bound = _top_level_bindings(ctx.tree)
        for name in names:
            if name not in bound:
                yield self.finding(
                    ctx,
                    stmt,
                    f"__all__ lists {name!r} but the module never binds "
                    f"it",
                )
        listed = set(names)
        for node in ctx.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_") or node.name in listed:
                continue
            yield self.finding(
                ctx,
                node,
                f"public name {node.name!r} is not in __all__; export "
                f"it or rename it with a leading underscore",
            )


def _literal_int(node: Optional[ast.AST]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _call_arg(
    node: ast.Call, position: int, keyword: str
) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _read_width(data: Optional[ast.expr]) -> Optional[int]:
    """Literal byte width implied by a ``from_bytes`` data expression.

    Recognises ``buf[:N]`` slices and single-literal-argument calls
    such as ``f.read(N)``.
    """
    if isinstance(data, ast.Subscript) and isinstance(data.slice, ast.Slice):
        sl = data.slice
        if sl.lower is None and sl.step is None:
            return _literal_int(sl.upper)
        lo, hi = _literal_int(sl.lower), _literal_int(sl.upper)
        if lo is not None and hi is not None and sl.step is None:
            return hi - lo
    if isinstance(data, ast.Call) and len(data.args) == 1:
        return _literal_int(data.args[0])
    return None


@register
class ByteWidthRule(Rule):
    """R006: fixed-width byte I/O is explicit and write/read symmetric."""

    rule_id = "R006"
    severity = "error"
    summary = (
        "to_bytes/from_bytes must pass the literal byteorder 'big', and "
        "literal write widths must have matching literal reads in the "
        "same module (a 2-byte write read back as 4 bytes truncates "
        "silently)"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        writes: List[Tuple[int, ast.Call]] = []
        reads: List[Tuple[int, ast.Call]] = []
        pack_fmts: List[Tuple[str, ast.Call]] = []
        unpack_fmts: List[Tuple[str, ast.Call]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            chain = _attribute_chain(node.func)
            if attr == "to_bytes":
                yield from self._check_byteorder(ctx, node, position=1)
                width = _literal_int(_call_arg(node, 0, "length"))
                if width is not None:
                    writes.append((width, node))
            elif attr == "from_bytes":
                yield from self._check_byteorder(ctx, node, position=1)
                width = _read_width(_call_arg(node, 0, "bytes"))
                if width is not None:
                    reads.append((width, node))
            elif chain[:1] == ["struct"] and attr in ("pack", "unpack"):
                fmt = _call_arg(node, 0, "format")
                if isinstance(fmt, ast.Constant) and isinstance(
                    fmt.value, str
                ):
                    dest = pack_fmts if attr == "pack" else unpack_fmts
                    dest.append((fmt.value, node))

        if writes and reads:
            write_widths = {w for w, _ in writes}
            read_widths = {w for w, _ in reads}
            for width, node in writes:
                if width not in read_widths:
                    yield self.finding(
                        ctx,
                        node,
                        f"writes a {width}-byte field but this module "
                        f"reads only {sorted(read_widths)}-byte fields; "
                        f"width mismatch truncates or misaligns the "
                        f"stream",
                    )
            for width, node in reads:
                if width not in write_widths:
                    yield self.finding(
                        ctx,
                        node,
                        f"reads a {width}-byte field but this module "
                        f"writes only {sorted(write_widths)}-byte "
                        f"fields; width mismatch truncates or misaligns "
                        f"the stream",
                    )
        if pack_fmts and unpack_fmts:
            pack_set = {f for f, _ in pack_fmts}
            unpack_set = {f for f, _ in unpack_fmts}
            for fmt, node in pack_fmts:
                if fmt not in unpack_set:
                    yield self.finding(
                        ctx,
                        node,
                        f"struct.pack format {fmt!r} has no matching "
                        f"struct.unpack in this module",
                    )
            for fmt, node in unpack_fmts:
                if fmt not in pack_set:
                    yield self.finding(
                        ctx,
                        node,
                        f"struct.unpack format {fmt!r} has no matching "
                        f"struct.pack in this module",
                    )

    def _check_byteorder(
        self, ctx: ModuleContext, node: ast.Call, *, position: int
    ) -> Iterator[Finding]:
        byteorder = _call_arg(node, position, "byteorder")
        if byteorder is None:
            yield self.finding(
                ctx,
                node,
                "to_bytes/from_bytes without an explicit byteorder "
                "(defaults only exist on python >= 3.11; the container "
                "format is big-endian)",
            )
        elif not (
            isinstance(byteorder, ast.Constant) and byteorder.value == "big"
        ):
            yield self.finding(
                ctx,
                node,
                "byteorder must be the literal 'big'; the container "
                "format is canonically big-endian",
            )


_NUMPY_LEGACY_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "exponential",
        "zipf",
        "seed",
        "bytes",
    }
)


@register
class UnseededRandomRule(Rule):
    """R007: no unseeded randomness outside :mod:`repro.workload`."""

    rule_id = "R007"
    severity = "warning"
    summary = (
        "experiments must be reproducible: no stdlib random, no legacy "
        "numpy global RNG, no default_rng() without a seed outside "
        "repro.workload"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_workload:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random uses hidden global state; "
                            "use numpy.random.default_rng(seed) or "
                            "move the code into repro.workload",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib random uses hidden global state; use "
                        "numpy.random.default_rng(seed) or move the "
                        "code into repro.workload",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        chain = _attribute_chain(node.func)
        if not chain:
            return
        if chain[-1] == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass an explicit seed for reproducible runs",
                )
            return
        if (
            len(chain) >= 3
            and chain[-2] == "random"
            and chain[0] in ("np", "numpy")
            and chain[-1] in _NUMPY_LEGACY_RANDOM
        ):
            yield self.finding(
                ctx,
                node,
                f"numpy legacy global RNG call np.random.{chain[-1]}(); "
                f"use a seeded default_rng Generator instead",
            )


#: ``time`` module attributes that read a clock.  ``time.sleep`` is
#: deliberately absent — it spends time rather than measuring it.
_CLOCK_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


@register
class RawClockRule(Rule):
    """R008: raw clock reads are confined to repro.perf / repro.obs."""

    rule_id = "R008"
    severity = "warning"
    summary = (
        "raw time.time()/time.perf_counter() calls are confined to "
        "repro.perf and repro.obs; everything else times through "
        "repro.obs.runtime.now_ms or spans, so clocks stay injectable "
        "and measurements flow through one pipeline"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_timing_layer:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_CALLS:
                        yield self.finding(
                            ctx,
                            node,
                            f"imports time.{alias.name} outside the "
                            f"timing layer; use repro.obs.runtime."
                            f"now_ms (or a span) instead",
                        )
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if (
                    len(chain) == 2
                    and chain[0] == "time"
                    and chain[1] in _CLOCK_CALLS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"calls time.{chain[1]}() outside the timing "
                        f"layer; use repro.obs.runtime.now_ms (or a "
                        f"span) so clocks stay injectable",
                    )
