"""The whole-program rule set (R009–R014).

These rules encode the properties the concurrent serving layer breaks
first — properties a per-module pass cannot prove because they span
functions, modules, and packages:

* **R009** — every resource acquisition is closed on *all* paths
  (``with``, ``try/finally``, or an ownership transfer), via the
  :mod:`repro.analysis.dataflow` abstract interpreter;
* **R010** — every module-level mutable binding is registered with a
  ``# repro: shared-state[reason]`` pragma, producing the audited
  shared-state inventory the MVCC server will latch;
* **R011** — public entry points in the ``db``/``storage``/``io``
  packages only let :class:`repro.errors.ReproError` subclasses
  escape, checked through the conservative call graph;
* **R012** — functions marked ``# repro: async-ready`` cannot reach a
  blocking call (``time.sleep``, raw ``open()``, future/thread joins)
  through the call graph;
* **R013** — instrumented modules access ``_obs.REGISTRY`` /
  ``_obs.TRACER`` through the bind-then-guard idiom, never chained
  directly into a call;
* **R014** — private ``_names`` are never imported across a package
  boundary.

All six consume one shared
:class:`~repro.analysis.project.ProjectContext`; none re-parses a
file.  See ``docs/ANALYSIS.md`` for rationale and before/after
examples.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    ModuleContext,
    ProjectRule,
    register_project,
    walk_without_functions,
)
from repro.analysis.dataflow import analyze_function_resources
from repro.analysis.project import FunctionInfo, ProjectContext
from repro.analysis.rules import (
    _BUILTIN_EXCEPTIONS,
    _R001_ALLOWED,
    _attribute_chain,
    _exception_name,
)

__all__ = [
    "BlockingReachabilityRule",
    "ExceptionContractRule",
    "ObsGuardRule",
    "PrivateImportRule",
    "ResourceLeakRule",
    "SharedStateRule",
]

#: Packages whose public functions form the library's API surface for
#: the R011 exception contract.
_ENTRY_PACKAGES: Tuple[str, ...] = ("db", "storage", "io")

#: Attribute names whose call blocks the caller (future/thread joins).
_BLOCKING_ATTRS = frozenset({"result", "join"})

#: The observability globals R013 guards (see :mod:`repro.obs.runtime`).
_OBS_GLOBALS = frozenset({"REGISTRY", "TRACER"})


def _path_of(project: ProjectContext, module: str) -> str:
    return str(project.modules[module].path)


def _parent_map(tree: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


# ----------------------------------------------------------------------
# R009 — resource leaks
# ----------------------------------------------------------------------


def _constructor_classmethods(
    project: ProjectContext, qualname: str
) -> Set[str]:
    """Classmethods of a resource class that return ``cls(...)``."""
    cls = project.classes.get(qualname)
    if cls is None:
        return set()
    out: Set[str] = set()
    for name in cls.classmethods():
        fn = cls.methods[name]
        for stmt in getattr(fn.node, "body", []):
            for node in walk_without_functions(stmt):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id == "cls"
                ):
                    out.add(name)
    return out


def _resource_constructor(
    project: ProjectContext, module: str, call: ast.Call
) -> Optional[str]:
    """Display name when ``call`` constructs a resource, else ``None``.

    Recognised shapes: the ``open()`` builtin, ``Cls(...)`` /
    ``mod.Cls(...)`` for any discovered resource class, and
    ``Cls.create(...)``-style classmethod constructors that return
    ``cls(...)``.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if (
            func.id == "open"
            and project.resolve_symbol(module, "open") is None
        ):
            return "open"
        target = project.resolve_symbol(module, func.id)
        if project.is_resource(target):
            return func.id
        return None
    if not isinstance(func, ast.Attribute):
        return None
    chain = _attribute_chain(func)
    if not chain:
        return None
    head, rest = chain[0], chain[1:]
    target = project.resolve_symbol(module, head)
    if target is None:
        return None
    if target in project.modules and rest:
        symbol = project.resolve_symbol(target, rest[0])
        if symbol is None or not project.is_resource(symbol):
            return None
        if len(rest) == 1:
            return ".".join(chain)
        if len(rest) == 2 and rest[1] in _constructor_classmethods(
            project, symbol
        ):
            return ".".join(chain)
        return None
    if (
        project.is_resource(target)
        and len(rest) == 1
        and rest[0] in _constructor_classmethods(project, target)
    ):
        return ".".join(chain)
    return None


@register_project
class ResourceLeakRule(ProjectRule):
    """R009: resources acquired locally must be released on all paths."""

    rule_id = "R009"
    severity = "error"
    summary = (
        "resource acquisitions (open(), close()-bearing classes, "
        "executors) must be released on every path: with, try/finally, "
        "or ownership transfer"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        for fn in sorted(
            project.functions.values(), key=lambda f: f.qualname
        ):
            if fn.module not in project.modules:
                continue

            def _resolver(
                call: ast.Call, _module: str = fn.module
            ) -> Optional[str]:
                return _resource_constructor(project, _module, call)

            for report in analyze_function_resources(fn.node, _resolver):
                acq = report.acquisition
                if report.kind == "normal":
                    detail = (
                        "is not closed on every non-exception path "
                        "(close it, use 'with', or transfer ownership)"
                    )
                else:
                    detail = (
                        "leaks when a statement between acquisition and "
                        "close raises (use 'with', try/finally, or "
                        "close-and-reraise)"
                    )
                yield self.finding(
                    _path_of(project, fn.module),
                    acq.line,
                    f"resource '{acq.var}' from {acq.resource}(...) in "
                    f"'{fn.qualname}' {detail}",
                )


# ----------------------------------------------------------------------
# R010 — shared-state inventory
# ----------------------------------------------------------------------


@register_project
class SharedStateRule(ProjectRule):
    """R010: module-level mutable state must be registered with a reason."""

    rule_id = "R010"
    severity = "error"
    summary = (
        "module-level mutable bindings must carry a '# repro: "
        "shared-state[reason]' pragma — the audited list the "
        "concurrent serving layer will latch"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        for entry in sorted(
            project.shared_state, key=lambda e: (e.module, e.line, e.name)
        ):
            if entry.reason is not None:
                continue
            yield self.finding(
                _path_of(project, entry.module),
                entry.line,
                f"module-level mutable binding '{entry.name}' "
                f"({entry.kind}) has no '# repro: shared-state[reason]' "
                f"annotation; register it (with why it is safe) or make "
                f"it immutable",
            )


# ----------------------------------------------------------------------
# R011 — exception contract at package boundaries
# ----------------------------------------------------------------------


def _direct_builtin_raises(fn: FunctionInfo) -> Set[str]:
    """Builtin (non-ReproError) exceptions ``fn`` raises directly."""
    out: Set[str] = set()
    for stmt in getattr(fn.node, "body", []):
        for node in walk_without_functions(stmt):
            if not isinstance(node, ast.Raise):
                continue
            name = _exception_name(node.exc)
            if (
                name is not None
                and name in _BUILTIN_EXCEPTIONS
                and name not in _R001_ALLOWED
            ):
                out.add(name)
    return out


def _guards_cover(
    guards: Sequence[Optional[str]], exc_name: str
) -> bool:
    """Whether the except clauses around a call site catch ``exc_name``."""
    exc_type = getattr(builtins, exc_name, None)
    for guard in guards:
        if guard is None or guard in ("Exception", "BaseException"):
            return True
        if guard == exc_name:
            return True
        guard_type = getattr(builtins, guard, None)
        if (
            isinstance(exc_type, type)
            and isinstance(guard_type, type)
            and issubclass(exc_type, guard_type)
        ):
            return True
    return False


@register_project
class ExceptionContractRule(ProjectRule):
    """R011: the public API only lets ReproError subclasses escape."""

    rule_id = "R011"
    severity = "error"
    summary = (
        "public entry points in db/storage/io may only let "
        "repro.errors.ReproError subclasses escape (checked through "
        "the call graph)"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        leaks: Dict[str, Set[str]] = {
            fn.qualname: _direct_builtin_raises(fn)
            for fn in project.functions.values()
        }
        changed = True
        while changed:
            changed = False
            for fn in project.functions.values():
                mine = leaks[fn.qualname]
                for call in fn.calls:
                    for exc in leaks.get(call.callee, ()):
                        if exc in mine or _guards_cover(call.guards, exc):
                            continue
                        mine.add(exc)
                        changed = True
        for fn in project.public_entry_points(_ENTRY_PACKAGES):
            escaped = sorted(leaks.get(fn.qualname, ()))
            if not escaped:
                continue
            yield self.finding(
                _path_of(project, fn.module),
                fn.lineno,
                f"public entry point '{fn.qualname}' may let builtin "
                f"exception(s) escape: {', '.join(escaped)}; wrap them "
                f"in a repro.errors.ReproError subclass at the package "
                f"boundary",
            )


# ----------------------------------------------------------------------
# R012 — blocking-call reachability from async-ready functions
# ----------------------------------------------------------------------


def _shutdown_blocks(call: ast.Call) -> bool:
    """``executor.shutdown(...)`` blocks unless ``wait=False``."""
    for kw in call.keywords:
        if (
            kw.arg == "wait"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return False
    return True


def _direct_blocking_calls(
    project: ProjectContext, fn: FunctionInfo
) -> List[str]:
    """Display names of blocking calls ``fn`` makes directly."""
    out: List[str] = []
    for stmt in getattr(fn.node, "body", []):
        for node in walk_without_functions(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if (
                    func.id == "open"
                    and project.resolve_symbol(fn.module, "open") is None
                ):
                    out.append("open()")
                elif (
                    func.id == "sleep"
                    and project.resolve_symbol(fn.module, "sleep")
                    == "time.sleep"
                ):
                    out.append("time.sleep()")
            elif isinstance(func, ast.Attribute):
                chain = _attribute_chain(func)
                if (
                    chain
                    and chain[-1] == "sleep"
                    and project.resolve_symbol(fn.module, chain[0])
                    == "time"
                ):
                    out.append("time.sleep()")
                elif func.attr in _BLOCKING_ATTRS:
                    out.append(f".{func.attr}()")
                elif func.attr == "shutdown" and _shutdown_blocks(node):
                    out.append(".shutdown()")
    return out


@register_project
class BlockingReachabilityRule(ProjectRule):
    """R012: async-ready functions must not reach blocking calls."""

    rule_id = "R012"
    severity = "error"
    summary = (
        "functions marked '# repro: async-ready' must not reach "
        "time.sleep, raw open(), or future/thread joins through the "
        "call graph"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        blocking = {
            fn.qualname: _direct_blocking_calls(project, fn)
            for fn in project.functions.values()
        }
        roots = sorted(
            (fn for fn in project.functions.values() if fn.async_ready),
            key=lambda f: f.qualname,
        )
        for root in roots:
            seen: Set[str] = {root.qualname}
            queue: List[str] = [root.qualname]
            reported: Set[Tuple[str, str]] = set()
            while queue:
                qual = queue.pop(0)
                for desc in blocking.get(qual, ()):
                    key = (qual, desc)
                    if key in reported:
                        continue
                    reported.add(key)
                    where = (
                        "directly"
                        if qual == root.qualname
                        else f"via '{qual}'"
                    )
                    yield self.finding(
                        _path_of(project, root.module),
                        root.lineno,
                        f"async-ready function '{root.qualname}' "
                        f"reaches blocking call {desc} {where}; move "
                        f"the blocking work behind an executor before "
                        f"the serving layer goes async",
                    )
                info = project.functions.get(qual)
                for call in info.calls if info is not None else []:
                    if (
                        call.callee in project.functions
                        and call.callee not in seen
                    ):
                        seen.add(call.callee)
                        queue.append(call.callee)


# ----------------------------------------------------------------------
# R013 — observability hot-path guard idiom
# ----------------------------------------------------------------------


@register_project
class ObsGuardRule(ProjectRule):
    """R013: bind ``_obs.REGISTRY``/``TRACER`` before using it."""

    rule_id = "R013"
    severity = "error"
    summary = (
        "instrumented modules must use the bind-then-guard idiom "
        "(reg = _obs.REGISTRY; if reg is not None: ...) instead of "
        "chaining through the nullable global"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        for module, ctx in sorted(project.modules.items()):
            if "obs" in module.split("."):
                continue  # repro.obs owns these globals
            parents = _parent_map(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Attribute)
                    and node.attr in _OBS_GLOBALS
                    and isinstance(node.value, ast.Name)
                ):
                    continue
                alias = node.value.id
                target = project.resolve_symbol(module, alias)
                if target is None or not target.startswith("repro.obs"):
                    continue
                parent = parents.get(id(node))
                chained = (
                    isinstance(parent, (ast.Attribute, ast.Subscript))
                    or (
                        isinstance(parent, ast.Call)
                        and parent.func is node
                    )
                )
                if not chained:
                    continue
                yield self.finding(
                    str(ctx.path),
                    node.lineno,
                    f"'{alias}.{node.attr}' is used directly in an "
                    f"expression; observability is nullable — bind it "
                    f"first (reg = {alias}.{node.attr}; if reg is not "
                    f"None: ...)",
                )


# ----------------------------------------------------------------------
# R014 — no private imports across package boundaries
# ----------------------------------------------------------------------


def _absolute_import_source(
    module: str, ctx: ModuleContext, stmt: ast.ImportFrom
) -> str:
    src = stmt.module or ""
    if stmt.level:
        base = module.split(".")
        if ctx.is_package_init:
            base = base + ["_"]
        base = base[: len(base) - stmt.level]
        src = ".".join(base + ([src] if src else []))
    return src


def _package_of(project: ProjectContext, module: str) -> str:
    ctx = project.modules[module]
    if ctx.is_package_init or "." not in module:
        return module
    return module.rsplit(".", 1)[0]


@register_project
class PrivateImportRule(ProjectRule):
    """R014: ``_private`` names stay inside their package."""

    rule_id = "R014"
    severity = "error"
    summary = (
        "private _names must not be imported across package "
        "boundaries; export a public name instead"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        for module, ctx in sorted(project.modules.items()):
            importer_pkg = _package_of(project, module)
            for stmt in ast.walk(ctx.tree):
                if not isinstance(stmt, ast.ImportFrom):
                    continue
                src = _absolute_import_source(module, ctx, stmt)
                if src not in project.modules:
                    continue  # external modules are out of scope
                src_pkg = _package_of(project, src)
                if importer_pkg == src_pkg:
                    continue
                for alias in stmt.names:
                    name = alias.name
                    if not name.startswith("_"):
                        continue
                    if name.startswith("__") and name.endswith("__"):
                        continue  # dunders are protocol, not private
                    yield self.finding(
                        str(ctx.path),
                        stmt.lineno,
                        f"imports private name '{name}' from '{src}' "
                        f"across a package boundary; private names are "
                        f"package-internal — import or re-export a "
                        f"public name instead",
                    )
