"""Per-function dataflow for resource lifetimes (the R009 engine).

The analysis is a structural abstract interpretation of one function
body.  For each *acquisition* — a call that constructs a resource
(:class:`~repro.analysis.project.ProjectContext` knows which classes
own ``close``/``__exit__``; ``open()`` and the stdlib executors are
built in) bound to a local name — the interpreter flows the rest of
the function with a two-state lattice per path:

* ``open``  — the resource is live and this path still owns it, and
* ``done``  — the path closed it, entered it as a ``with`` context, or
  transferred ownership (returned/yielded it, passed it as a call
  argument, stored it on an object/container, or aliased it).

Paths leave a function three ways — falling through, ``return``, or an
exception — and the verdict distinguishes the two failure classes:

* **open on a normal exit**: some straight-line path never closes the
  resource (the hard leak), and
* **open on an exceptional exit**: the happy path closes it, but a
  statement between acquisition and close can raise with nothing
  (``with``, ``finally``, or a broad close-and-reraise handler) to
  release it.

Exceptional edges are modelled conservatively: while a path is
``open``, any statement containing a call is assumed able to raise.
``try`` statements route those edges through their handlers (a broad
``except``/``except BaseException`` absorbs them; narrow handlers do
not, since an unlisted exception would still escape) and ``finally``
blocks run on every edge.  Loops are executed zero-or-more times
without fixpoint iteration — the body is flowed once and merged with
the skip path, which is sound for a monotone two-state lattice.

A local that escapes into a closure (a nested ``def`` referencing it)
is treated as transferred: the closure owns the lifetime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Acquisition",
    "LeakReport",
    "analyze_function_resources",
    "find_acquisitions",
]

_OPEN = "open"
_DONE = "done"


@dataclass(frozen=True)
class Acquisition:
    """One resource-constructing call bound to a local name."""

    var: str
    resource: str  # human-readable constructor, e.g. "WriteAheadLog.create"
    node: ast.stmt  # the assignment statement
    line: int


@dataclass(frozen=True)
class LeakReport:
    """Verdict for one acquisition."""

    acquisition: Acquisition
    #: ``"normal"`` — open on a fall-through/return path;
    #: ``"exception"`` — closed on the happy path, open when a
    #: statement in between raises.
    kind: str


@dataclass
class _Out:
    """States leaving a statement list, by exit category."""

    normal: Set[str] = field(default_factory=set)
    raised: Set[str] = field(default_factory=set)
    returned: Set[str] = field(default_factory=set)
    broke: Set[str] = field(default_factory=set)

    def absorb_exits(self, other: "_Out") -> None:
        """Merge the non-local exits (raise/return) of a nested flow."""
        self.raised |= other.raised
        self.returned |= other.returned


def find_acquisitions(
    func: ast.AST,
    is_resource_call: Callable[[ast.Call], Optional[str]],
) -> List[Acquisition]:
    """Assignments of resource-constructor calls to plain local names.

    ``is_resource_call`` maps a call node to a display name when the
    call constructs a resource (``None`` otherwise); the caller wires
    in project-level symbol resolution.  Assignments to attributes or
    subscripts are ownership transfers by definition and are skipped,
    as are acquisitions consumed directly by a ``with`` item.
    """
    out: List[Acquisition] = []
    with_items: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                with_items.add(id(expr))
                if isinstance(expr, ast.Call):
                    for arg in list(expr.args) + [
                        kw.value for kw in expr.keywords
                    ]:
                        with_items.add(id(arg))
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call) or id(value) in with_items:
            continue
        resource = is_resource_call(value)
        if resource is None:
            continue
        out.append(
            Acquisition(
                var=node.targets[0].id,
                resource=resource,
                node=node,
                line=node.lineno,
            )
        )
    return out


def analyze_function_resources(
    func: ast.AST,
    is_resource_call: Callable[[ast.Call], Optional[str]],
) -> List[LeakReport]:
    """Every leaking acquisition in one function body."""
    body = list(getattr(func, "body", []))
    reports: List[LeakReport] = []
    for acq in find_acquisitions(func, is_resource_call):
        if _escapes_into_closure(func, acq):
            continue
        flow = _ResourceFlow(acq)
        out = flow.flow_stmts(body, {_PRE})
        exits_open = (
            _OPEN in out.normal
            or _OPEN in out.returned
            or _OPEN in out.broke
            or flow.overwrote
        )
        if exits_open:
            reports.append(LeakReport(acquisition=acq, kind="normal"))
        elif _OPEN in out.raised:
            reports.append(LeakReport(acquisition=acq, kind="exception"))
    return reports


_PRE = "pre"  # path state before the acquisition statement executes


def _escapes_into_closure(func: ast.AST, acq: Acquisition) -> bool:
    for node in ast.walk(func):
        if node is func or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Name)
                and inner.id == acq.var
                and isinstance(inner.ctx, ast.Load)
            ):
                return True
    return False


class _ResourceFlow:
    """Flows one acquisition's variable through a statement tree."""

    def __init__(self, acq: Acquisition) -> None:
        self.acq = acq
        self.var = acq.var
        #: Set when the variable is rebound while the resource is still
        #: open — the old object becomes unreachable unclosed.
        self.overwrote = False

    # -- statement-level predicates ------------------------------------

    def _is_close_call(self, stmt: ast.stmt) -> bool:
        """``var.close()`` (or ``var.shutdown()``) as a statement."""
        if not isinstance(stmt, ast.Expr):
            return False
        call = stmt.value
        return (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in ("close", "shutdown")
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == self.var
        )

    def _escapes(self, stmt: ast.stmt) -> bool:
        """Ownership leaves through this statement (see module doc)."""
        parents: dict = {}
        for parent in ast.walk(stmt):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Name)
                and node.id == self.var
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # receiver of a method call / attribute read
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # calling the resource itself transfers nothing
            if isinstance(parent, ast.Compare) or isinstance(
                parent, (ast.BoolOp, ast.UnaryOp)
            ):
                continue  # truthiness / identity tests
            if isinstance(parent, ast.Subscript) and parent.value is node:
                continue  # indexing the resource reads it, no transfer
            return True
        return False

    def _may_raise(self, stmt: ast.stmt) -> bool:
        """Conservatively: any embedded call can raise."""
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call):
                return True
        return False

    def _mentions_with_context(self, stmt: ast.stmt) -> bool:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return False
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Name)
                and expr.id == self.var
            ):
                return True
        return False

    # -- the interpreter ------------------------------------------------

    def flow_stmts(
        self, stmts: Sequence[ast.stmt], entry: Set[str]
    ) -> _Out:
        out = _Out(normal=set(entry))
        for stmt in stmts:
            if not out.normal:
                break
            step = self.flow_stmt(stmt, out.normal)
            out.normal = step.normal
            out.raised |= step.raised
            out.returned |= step.returned
            out.broke |= step.broke
        return out

    def flow_stmt(self, stmt: ast.stmt, state: Set[str]) -> _Out:
        if stmt is self.acq.node:
            return _Out(normal={_OPEN})
        if self._is_close_call(stmt):
            return _Out(normal=_done(state))
        if isinstance(stmt, (ast.Return,)):
            returned = _done(state) if self._escapes(stmt) else set(state)
            return _Out(returned=returned)
        if isinstance(stmt, ast.Raise):
            return _Out(raised=set(state))
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return _Out(broke=set(state))
        if isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try,
                             ast.With, ast.AsyncWith)):
            # Compound statements are entered, never short-circuited:
            # escapes and raises inside are seen statement by statement.
            return self._flow_compound(stmt, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return _Out(normal=set(state))
        if self._reassigns_var(stmt):
            if _OPEN in state:
                self.overwrote = True
            return _Out(normal=_done(state))
        if self._escapes(stmt):
            # Ownership transfers mid-statement, before any exception
            # the rest of the statement might raise.
            return _Out(normal=_done(state))
        out = _Out(normal=set(state))
        if _OPEN in state and self._may_raise(stmt):
            out.raised.add(_OPEN)
        return out

    def _reassigns_var(self, stmt: ast.stmt) -> bool:
        """A later plain assignment rebinding the tracked name."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            return False
        return any(
            isinstance(t, ast.Name) and t.id == self.var for t in targets
        )

    def _flow_compound(self, stmt: ast.stmt, state: Set[str]) -> _Out:
        if isinstance(stmt, ast.If):
            then = self.flow_stmts(stmt.body, self._test_step(stmt, state))
            other = self.flow_stmts(
                stmt.orelse, self._test_step(stmt, state)
            )
            return _merge(then, other)
        if isinstance(stmt, (ast.While, ast.For)):
            entry = self._test_step(stmt, state)
            body = self.flow_stmts(stmt.body, entry)
            orelse = self.flow_stmts(stmt.orelse, entry | body.normal)
            out = _Out(
                normal=entry | body.normal | body.broke | orelse.normal
            )
            out.absorb_exits(body)
            out.absorb_exits(orelse)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if self._mentions_with_context(stmt):
                # ``with var:`` — the context manager closes it.
                body = self.flow_stmts(stmt.body, _done(state))
                out = _Out(normal=body.normal | body.broke)
                out.absorb_exits(body)
                return out
            entry = self._test_step(stmt, state)
            body = self.flow_stmts(stmt.body, entry)
            out = _Out(normal=body.normal | body.broke)
            out.absorb_exits(body)
            return out
        if isinstance(stmt, ast.Try):
            return self._flow_try(stmt, state)
        return _Out(normal=set(state))

    def _test_step(self, stmt: ast.stmt, state: Set[str]) -> Set[str]:
        """Evaluating a test/iter/context expression may transfer."""
        exprs: List[Optional[ast.expr]] = []
        if isinstance(stmt, (ast.If, ast.While)):
            exprs = [stmt.test]
        elif isinstance(stmt, ast.For):
            exprs = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = [item.context_expr for item in stmt.items]
        for expr in exprs:
            if expr is None:
                continue
            wrapper = ast.Expr(value=expr)
            if self._escapes(wrapper):
                return _done(state)
        return set(state)

    def _flow_try(self, stmt: ast.Try, state: Set[str]) -> _Out:
        body = self.flow_stmts(stmt.body, state)
        orelse = self.flow_stmts(stmt.orelse, body.normal)
        normal = orelse.normal
        raised = body.raised | orelse.raised
        returned = body.returned | orelse.returned
        broke = body.broke | orelse.broke

        handled: Set[str] = set()
        uncaught = set(raised)
        handler_raised: Set[str] = set()
        for handler in stmt.handlers:
            h_out = self.flow_stmts(handler.body, set(raised))
            handled |= h_out.normal
            returned |= h_out.returned
            broke |= h_out.broke
            # a re-raise from the handler leaves with the handler's
            # own state (it may have closed the resource first)
            handler_raised |= h_out.raised
            if _is_broad_handler(handler):
                uncaught = set()
        normal = normal | handled
        raised = uncaught | handler_raised

        if stmt.finalbody:
            normal = self._through_finally(stmt, normal)
            raised = self._through_finally(stmt, raised)
            returned = self._through_finally(stmt, returned)
            broke = self._through_finally(stmt, broke)
        return _Out(
            normal=normal, raised=raised, returned=returned, broke=broke
        )

    def _through_finally(
        self, stmt: ast.Try, states: Set[str]
    ) -> Set[str]:
        if not states:
            return states
        return self.flow_stmts(stmt.finalbody, states).normal


def _done(state: Set[str]) -> Set[str]:
    return {(_DONE if s == _OPEN else s) for s in state}


def _merge(*outs: _Out) -> _Out:
    merged = _Out()
    for out in outs:
        merged.normal |= out.normal
        merged.raised |= out.raised
        merged.returned |= out.returned
        merged.broke |= out.broke
    return merged


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = (
            t.id
            if isinstance(t, ast.Name)
            else t.attr if isinstance(t, ast.Attribute) else None
        )
        if name in ("Exception", "BaseException"):
            return True
    return False


def _walk_shallow(stmt: ast.stmt) -> Sequence[ast.AST]:
    """Statement and descendants, not crossing into nested defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not stmt:
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out
