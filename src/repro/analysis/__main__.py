"""``python -m repro.analysis`` — run the lint pass from the shell."""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
