"""Core abstractions for the :mod:`repro.analysis` static-analysis pass.

The framework is deliberately small: a :class:`Rule` inspects one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects.
Rules register themselves in a module-level registry via
:func:`register`, so adding a rule is one class definition away and the
CLI, the reporters, and the self-hosting test all discover it for free.

Severities mirror the two ways a violation can hurt the codec:

* ``error`` — the violation can break the lossless round-trip guarantee
  (silently swallowed corruption, truncating byte widths, validation
  that vanishes under ``python -O``).
* ``warning`` — the violation erodes reproducibility or API hygiene but
  cannot by itself corrupt data.

Both severities fail the build; the distinction exists for reporting
and for future per-rule policy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.errors import AnalysisError

__all__ = [
    "SEVERITIES",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_project_rule_ids",
    "all_rule_ids",
    "get_rule",
    "iter_project_rules",
    "iter_rules",
    "register",
    "register_project",
    "resolve_project_rule_ids",
    "resolve_rule_ids",
    "walk_without_functions",
]

#: Severity levels, ordered from most to least serious.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    #: Set by a baseline-aware scan: the finding pre-dates the rule and
    #: is reported without failing the build (see
    #: :mod:`repro.analysis.baseline`).
    baselined: bool = False
    #: Stable line-independent identity used by the baseline file;
    #: empty until :func:`repro.analysis.baseline.fingerprint_findings`
    #: stamps it.
    fingerprint: str = ""

    def suppress(self) -> "Finding":
        """A copy of this finding marked as suppressed by ``noqa``."""
        return replace(self, suppressed=True)

    def baseline(self) -> "Finding":
        """A copy of this finding marked as baselined."""
        return replace(self, baselined=True)

    def with_fingerprint(self, fingerprint: str) -> "Finding":
        """A copy of this finding carrying its stable fingerprint."""
        return replace(self, fingerprint=fingerprint)

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then location, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class ModuleContext:
    """Everything a rule may need to know about one module under scan.

    The context is built once per file by the runner and shared by every
    rule, so rules never re-read or re-parse sources.
    """

    path: Path
    source: str
    tree: ast.Module
    #: ``repro.core.bits``-style dotted name, or the stem if the file
    #: does not live under a recognisable package root.
    module_name: str
    #: Lines carrying ``# repro: noqa`` pragmas -> suppressed rule ids
    #: (the empty frozenset means "suppress every rule on this line").
    noqa: Dict[int, frozenset] = field(default_factory=dict)

    @property
    def is_dunder_main(self) -> bool:
        """True for ``__main__.py`` entry-point modules."""
        return self.path.name == "__main__.py"

    @property
    def is_package_init(self) -> bool:
        """True for ``__init__.py`` package modules."""
        return self.path.name == "__init__.py"

    @property
    def is_workload(self) -> bool:
        """True inside :mod:`repro.workload` (exempt from R007)."""
        return "workload" in self.module_name.split(".")

    @property
    def is_timing_layer(self) -> bool:
        """True inside :mod:`repro.perf` / :mod:`repro.obs` (exempt from
        R008 — these packages *are* the sanctioned clock wrappers)."""
        segments = self.module_name.split(".")
        return "perf" in segments or "obs" in segments

    def lines(self) -> List[str]:
        """The source split into lines (1-indexed via ``lines()[n-1]``)."""
        return self.source.splitlines()


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`run`.
    Rules must be stateless across modules — the runner reuses one
    instance for the whole scan.
    """

    #: Stable identifier, e.g. ``"R001"``.
    rule_id: str = ""
    #: ``"error"`` or ``"warning"``.
    severity: str = "error"
    #: One-line human summary shown by ``--list-rules``.
    summary: str = ""

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses override."""
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        *,
        line: Optional[int] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or ``line``)."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=str(ctx.path),
            line=line if line is not None else getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule:
    """Base class for one whole-program rule (R009+).

    Project rules see the fully built
    :class:`~repro.analysis.project.ProjectContext` instead of one
    module at a time, so they can consult the import graph, the call
    graph, and the dataflow layer.  Like per-module rules they must be
    stateless across scans.
    """

    #: Stable identifier, e.g. ``"R009"``.
    rule_id: str = ""
    #: ``"error"`` or ``"warning"``.
    severity: str = "error"
    #: One-line human summary shown by ``--list-rules``.
    summary: str = ""

    def run(self, project: "object") -> Iterator[Finding]:
        """Yield findings for the whole project.  Subclasses override."""
        raise NotImplementedError

    def finding(
        self,
        path: str,
        line: int,
        message: str,
        *,
        col: int = 0,
    ) -> Finding:
        """Build a :class:`Finding` at an explicit location."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}  # repro: shared-state[per-module rule registry; filled once at import time by @register, read-only afterwards]

_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}  # repro: shared-state[project rule registry; filled once at import time by @register_project, read-only afterwards]


def _check_rule_class(cls: type) -> None:
    if not getattr(cls, "rule_id", ""):
        raise AnalysisError(f"rule class {cls.__name__} has no rule_id")
    if getattr(cls, "severity", None) not in SEVERITIES:
        raise AnalysisError(
            f"rule {cls.rule_id}: unknown severity {cls.severity!r}"
        )
    if cls.rule_id in _REGISTRY or cls.rule_id in _PROJECT_REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.rule_id}")


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a per-module rule to the registry."""
    _check_rule_class(cls)
    _REGISTRY[cls.rule_id] = cls()
    return cls


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    _check_rule_class(cls)
    _PROJECT_REGISTRY[cls.rule_id] = cls()
    return cls


def iter_rules() -> List[Rule]:
    """All registered per-module rules, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def iter_project_rules() -> List[ProjectRule]:
    """All registered project rules, ordered by rule id."""
    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered per-module rule."""
    return sorted(_REGISTRY)


def all_project_rule_ids() -> List[str]:
    """Sorted ids of every registered project rule."""
    return sorted(_PROJECT_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one per-module rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError as exc:
        raise AnalysisError(
            f"unknown rule {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        ) from exc


def _known_ids() -> List[str]:
    return sorted(list(_REGISTRY) + list(_PROJECT_REGISTRY))


def resolve_rule_ids(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The per-module rule set implied by ``--select``/``--ignore``.

    ``select`` limits the scan to the named rules; ``ignore`` removes
    rules from whatever ``select`` produced.  Unknown ids raise
    :class:`~repro.errors.AnalysisError` (a CLI usage error, exit 2).
    """
    chosen = list(select) if select else all_rule_ids()
    for rule_id in list(chosen) + list(ignore or []):
        get_rule(rule_id)  # raises on unknown ids
    dropped = frozenset(ignore or [])
    return [get_rule(rule_id) for rule_id in chosen if rule_id not in dropped]


def resolve_project_rule_ids(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Both rule families for a ``--project`` scan.

    Ids are validated against the union of the two registries, then
    each family keeps its own members, so ``--select R002,R009`` runs
    one per-module rule and one project rule in a single pass.
    """
    for rule_id in list(select or []) + list(ignore or []):
        if rule_id not in _REGISTRY and rule_id not in _PROJECT_REGISTRY:
            raise AnalysisError(
                f"unknown rule {rule_id!r} (known: {', '.join(_known_ids())})"
            )
    chosen = list(select) if select else _known_ids()
    dropped = frozenset(ignore or [])
    module_rules = [
        _REGISTRY[r] for r in chosen if r in _REGISTRY and r not in dropped
    ]
    project_rules = [
        _PROJECT_REGISTRY[r]
        for r in chosen
        if r in _PROJECT_REGISTRY and r not in dropped
    ]
    return module_rules, project_rules


def walk_without_functions(node: ast.AST) -> Iterable[ast.AST]:
    """Yield ``node`` and descendants, not descending into nested defs.

    Useful for "does this handler re-raise" style checks where a
    ``raise`` inside a nested function does not count.
    """
    yield node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(node):
        yield from walk_without_functions(child)
