"""Text and JSON rendering of a :class:`~repro.analysis.runner.ScanResult`.

The JSON schema is versioned and stable so CI tooling can parse it::

    {
      "version": 2,
      "files_scanned": 42,
      "summary": {"active": 2, "suppressed": 1, "baselined": 3,
                  "by_rule": {"R002": 2}},
      "findings": [
        {"file": "src/repro/io/format.py", "line": 155, "col": 8,
         "rule": "R002", "severity": "error",
         "message": "...", "fingerprint": "9f3c21ab0d5e7712",
         "suppressed": false, "baselined": false},
        ...
      ]
    }

Schema v2 (this PR) added ``fingerprint`` and ``baselined`` per
finding plus the ``baselined`` summary count; the ``fingerprint`` is
the same stable identity :mod:`repro.analysis.baseline` records, so a
findings report and a baseline file can be joined directly.

``by_rule`` counts only active findings — suppressed and baselined
ones appear in the findings list (flagged) so waived invariants stay
auditable, but they never fail a build.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from repro.analysis.base import iter_project_rules, iter_rules
from repro.analysis.runner import ScanResult

__all__ = [
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_rules",
    "render_shared_state",
    "render_text",
]

JSON_SCHEMA_VERSION = 2


def render_text(result: ScanResult, *, show_suppressed: bool = False) -> str:
    """Human-oriented ``path:line:col: RULE severity: message`` lines."""
    lines = []
    for f in result.findings:
        if f.suppressed and not show_suppressed:
            continue
        tag = ""
        if f.suppressed:
            tag = " (suppressed)"
        elif f.baselined:
            tag = " (baselined)"
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule_id} "
            f"{f.severity}: {f.message}{tag}"
        )
    active = result.active
    if active:
        by_rule = Counter(f.rule_id for f in active)
        counts = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(active)} finding(s) in {result.files_scanned} "
            f"file(s) [{counts}]"
        )
    else:
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"clean: {result.files_scanned} file(s), 0 findings" + suffix
        )
    return "\n".join(lines)


def render_json(result: ScanResult) -> str:
    """Machine-oriented report (schema above), stable key order."""
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "summary": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in result.active).items())
            ),
        },
        "findings": [
            {
                "file": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule_id,
                "severity": f.severity,
                "message": f.message,
                "fingerprint": f.fingerprint,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rules() -> str:
    """The ``--list-rules`` table (per-module, then project rules)."""
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.rule_id}  [{rule.severity:7s}] {rule.summary}")
    for project_rule in iter_project_rules():
        lines.append(
            f"{project_rule.rule_id}  [{project_rule.severity:7s}] "
            f"(project) {project_rule.summary}"
        )
    return "\n".join(lines)


def render_shared_state(project: Any) -> str:
    """The ``--shared-state`` audit table: every registered entry.

    ``project`` is a :class:`~repro.analysis.project.ProjectContext`;
    typed loosely to keep this module import-light.
    """
    lines = []
    for entry in sorted(
        project.shared_state, key=lambda e: (e.module, e.line, e.name)
    ):
        reason = entry.reason if entry.reason is not None else "<UNREGISTERED>"
        lines.append(
            f"{entry.module}:{entry.line}  {entry.name}  "
            f"[{entry.kind}]  {reason}"
        )
    if not lines:
        return "no module-level mutable state"
    return "\n".join(lines)
