"""Text and JSON rendering of a :class:`~repro.analysis.runner.ScanResult`.

The JSON schema is versioned and stable so CI tooling can parse it::

    {
      "version": 1,
      "files_scanned": 42,
      "summary": {"active": 2, "suppressed": 1, "by_rule": {"R002": 2}},
      "findings": [
        {"file": "src/repro/io/format.py", "line": 155, "col": 8,
         "rule": "R002", "severity": "error",
         "message": "...", "suppressed": false},
        ...
      ]
    }

``by_rule`` counts only active findings — suppressed ones appear in the
findings list (with ``"suppressed": true``) so waived invariants stay
auditable, but they never fail a build.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from repro.analysis.base import iter_rules
from repro.analysis.runner import ScanResult

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_rules", "render_text"]

JSON_SCHEMA_VERSION = 1


def render_text(result: ScanResult, *, show_suppressed: bool = False) -> str:
    """Human-oriented ``path:line:col: RULE severity: message`` lines."""
    lines = []
    for f in result.findings:
        if f.suppressed and not show_suppressed:
            continue
        tag = " (suppressed)" if f.suppressed else ""
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule_id} "
            f"{f.severity}: {f.message}{tag}"
        )
    active = result.active
    if active:
        by_rule = Counter(f.rule_id for f in active)
        counts = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(active)} finding(s) in {result.files_scanned} "
            f"file(s) [{counts}]"
        )
    else:
        lines.append(
            f"clean: {result.files_scanned} file(s), 0 findings"
            + (
                f" ({len(result.suppressed)} suppressed)"
                if result.suppressed
                else ""
            )
        )
    return "\n".join(lines)


def render_json(result: ScanResult) -> str:
    """Machine-oriented report (schema above), stable key order."""
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "summary": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in result.active).items())
            ),
        },
        "findings": [
            {
                "file": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule_id,
                "severity": f.severity,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rules() -> str:
    """The ``--list-rules`` table."""
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.rule_id}  [{rule.severity:7s}] {rule.summary}")
    return "\n".join(lines)
