"""``# repro: noqa`` suppression-comment parsing.

Two forms are recognised, anywhere in a physical line (normally a
trailing comment on the flagged statement)::

    x = risky()  # repro: noqa            -- suppress every rule here
    x = risky()  # repro: noqa[R002]      -- suppress only R002
    x = risky()  # repro: noqa[R001,R003] -- suppress several rules

The bracket list is comma-separated and whitespace-tolerant.  A bare
``# noqa`` (flake8 style) is deliberately *not* honoured: suppressions
of codec invariants must be explicit about which invariant they waive,
and greppable as ``repro: noqa``.

Suppressed findings still appear in JSON reports (flagged
``"suppressed": true``) so audits can count waived invariants; they do
not affect the exit code.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

__all__ = ["NOQA_ALL", "is_suppressed", "parse_noqa"]

#: Sentinel value meaning "every rule is suppressed on this line".
NOQA_ALL: FrozenSet[str] = frozenset()

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-indexed line numbers to the rule ids suppressed there.

    The value :data:`NOQA_ALL` (an empty frozenset) means the bare form
    was used and every rule is suppressed on that line.
    """
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "noqa" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = NOQA_ALL
            continue
        ids = frozenset(
            part.strip().upper()
            for part in rules.split(",")
            if part.strip()
        )
        # ``# repro: noqa[]`` names no rules: treat as the bare form
        # rather than a silent no-op.
        out[lineno] = ids if ids else NOQA_ALL
    return out


def is_suppressed(
    noqa: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is waived on ``line`` by a noqa pragma."""
    ids = noqa.get(line)
    if ids is None:
        return False
    return ids == NOQA_ALL or rule_id in ids
