"""``# repro: noqa`` suppression-comment parsing.

Two forms are recognised, as a *comment* on the flagged line (normally
trailing the statement)::

    x = risky()  # repro: noqa            -- suppress every rule here
    x = risky()  # repro: noqa[R002]      -- suppress only R002
    x = risky()  # repro: noqa[R001,R003] -- suppress several rules

The bracket list is comma-separated and whitespace-tolerant.  A bare
``# noqa`` (flake8 style) is deliberately *not* honoured: suppressions
of codec invariants must be explicit about which invariant they waive,
and greppable as ``repro: noqa``.

Pragmas are extracted from real ``tokenize`` comment tokens, so pragma
*text* inside a docstring or a string literal (like the examples above)
neither suppresses anything nor trips the R015 unused-suppression
pass.  When a file cannot be tokenized the parser falls back to
line-based matching — over-suppressing beats crashing mid-scan.

Suppressed findings still appear in JSON reports (flagged
``"suppressed": true``) so audits can count waived invariants; they do
not affect the exit code.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["NOQA_ALL", "is_suppressed", "parse_noqa"]

#: Sentinel value meaning "every rule is suppressed on this line".
NOQA_ALL: FrozenSet[str] = frozenset()

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


def _iter_comments(source: str) -> Dict[int, str]:
    """1-indexed line -> comment text, via the tokenizer when possible."""
    out: Dict[int, str] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        # Fall back to raw lines: everything from the first ``#`` on a
        # line is treated as its comment.
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                out[lineno] = line[line.index("#") :]
        return out
    for token in tokens:
        if token.type == tokenize.COMMENT:
            out[token.start[0]] = token.string
    return out


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-indexed line numbers to the rule ids suppressed there.

    The value :data:`NOQA_ALL` (an empty frozenset) means the bare form
    was used and every rule is suppressed on that line.
    """
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, comment in _iter_comments(source).items():
        if "noqa" not in comment:
            continue
        # Anchored at the start of the comment: a doc-comment that
        # merely *mentions* the pragma is not a suppression.
        match = _NOQA_RE.match(comment)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = NOQA_ALL
            continue
        ids = frozenset(
            part.strip().upper()
            for part in rules.split(",")
            if part.strip()
        )
        # ``# repro: noqa[]`` names no rules: treat as the bare form
        # rather than a silent no-op.
        out[lineno] = ids if ids else NOQA_ALL
    return out


def is_suppressed(
    noqa: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is waived on ``line`` by a noqa pragma."""
    ids = noqa.get(line)
    if ids is None:
        return False
    return ids == NOQA_ALL or rule_id in ids
