"""Scan orchestration: find files, parse once, run every rule.

The runner is the only layer that touches the filesystem; rules see a
pre-parsed :class:`~repro.analysis.base.ModuleContext` and the
reporters see a finished :class:`ScanResult`.  That separation keeps
rules trivially unit-testable from source strings (see
``tests/analysis/``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    resolve_rule_ids,
)
from repro.analysis.noqa import is_suppressed, parse_noqa
from repro.errors import AnalysisError

__all__ = ["ScanResult", "analyze_source", "collect_files", "scan_paths"]


@dataclass
class ScanResult:
    """Outcome of one analysis run."""

    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings not waived by a ``# repro: noqa`` pragma."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings waived by a ``# repro: noqa`` pragma."""
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any active finding remains."""
        return 1 if self.active else 0


def _module_name(path: Path) -> str:
    """Dotted module name, rooted at the nearest ``src`` or package dir."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ("src",):
        if root in parts:
            parts = parts[parts.index(root) + 1 :]
            break
    else:
        # Walk up while parent dirs are packages (have __init__.py).
        keep = [parts[-1]] if parts else []
        probe = path.parent
        while (probe / "__init__.py").exists():
            keep.insert(0, probe.name)
            probe = probe.parent
        parts = keep
    return ".".join(parts) if parts else path.stem


def analyze_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
    *,
    module_name: Optional[str] = None,
) -> List[Finding]:
    """Run ``rules`` over one module's source text.

    Findings suppressed by ``# repro: noqa`` pragmas are *returned* but
    marked ``suppressed`` — callers decide whether to show them.
    """
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
    ctx = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        module_name=module_name or _module_name(path),
        noqa=parse_noqa(source),
    )
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.run(ctx):
            if is_suppressed(ctx.noqa, finding.line, finding.rule_id):
                finding = finding.suppress()
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise AnalysisError(f"{path}: no such file or directory")
    return out


def scan_paths(
    paths: Iterable[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> ScanResult:
    """Scan files and directories with the selected rule set."""
    rules = resolve_rule_ids(select, ignore)
    result = ScanResult()
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{path}: cannot read: {exc}") from exc
        result.findings.extend(analyze_source(source, path, rules))
        result.files_scanned += 1
    result.findings.sort(key=Finding.sort_key)
    return result
