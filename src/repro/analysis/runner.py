"""Scan orchestration: find files, parse once, run every rule.

The runner is the only layer that touches the filesystem; rules see a
pre-parsed :class:`~repro.analysis.base.ModuleContext` (or, in project
mode, a :class:`~repro.analysis.project.ProjectContext`) and the
reporters see a finished :class:`ScanResult`.  That separation keeps
rules trivially unit-testable from source strings (see
``tests/analysis/``).

Two scan shapes exist:

* :func:`scan_paths` — the original per-module pass (R001–R008 plus
  R015), one :class:`~repro.analysis.base.ModuleContext` at a time;
* :func:`scan_project` — parses the whole tree once, runs the
  per-module rules *and* the whole-program rules (R009–R014) over a
  shared :class:`~repro.analysis.project.ProjectContext`, and stamps
  every finding with its baseline fingerprint.

R015 (unused suppression) is synthesised here rather than in a rule:
whether a ``# repro: noqa`` pragma suppressed anything is only known
after every other rule has run.  R015 findings are deliberately not
themselves suppressible — a noqa waiving its own unused-ness would be
self-certifying.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    resolve_project_rule_ids,
    resolve_rule_ids,
)
from repro.analysis.baseline import fingerprint_findings
from repro.analysis.noqa import NOQA_ALL, is_suppressed, parse_noqa
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectContext

__all__ = [
    "ScanResult",
    "UnusedSuppressionRule",
    "analyze_source",
    "collect_files",
    "parse_module",
    "scan_paths",
    "scan_project",
]

UNUSED_NOQA_ID = "R015"


@dataclass
class ScanResult:
    """Outcome of one analysis run."""

    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that fail the build: neither suppressed by a
        ``# repro: noqa`` pragma nor recorded in the baseline."""
        return [
            f for f in self.findings if not f.suppressed and not f.baselined
        ]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings waived by a ``# repro: noqa`` pragma."""
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        """Pre-existing findings recorded in the baseline file."""
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any active finding remains."""
        return 1 if self.active else 0


@register
class UnusedSuppressionRule(Rule):
    """R015 — a ``# repro: noqa`` pragma that suppresses nothing.

    The findings are synthesised by the runner after every other rule
    has run (see module docstring); :meth:`run` itself is empty so the
    rule still appears in ``--list-rules`` and ``--select``.
    """

    rule_id = UNUSED_NOQA_ID
    severity = "warning"
    summary = (
        "# repro: noqa pragma suppresses nothing on its line "
        "(stale waiver; remove it)"
    )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


def _module_name(path: Path) -> str:
    """Dotted module name, rooted at the nearest ``src`` or package dir."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ("src",):
        if root in parts:
            parts = parts[parts.index(root) + 1 :]
            break
    else:
        # Walk up while parent dirs are packages (have __init__.py).
        keep = [parts[-1]] if parts else []
        probe = path.parent
        while (probe / "__init__.py").exists():
            keep.insert(0, probe.name)
            probe = probe.parent
        parts = keep
    return ".".join(parts) if parts else path.stem


def _decorator_groups(tree: ast.Module) -> Dict[int, FrozenSet[int]]:
    """Lines belonging to one decorated def/class, keyed by each line.

    A finding on a decorated ``def`` may anchor at the ``def`` line
    while the pragma sits on a decorator line (or vice versa); grouping
    them makes the suppression land wherever the author wrote it.
    """
    groups: Dict[int, FrozenSet[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        lines = frozenset(
            [d.lineno for d in node.decorator_list] + [node.lineno]
        )
        for lineno in lines:
            groups[lineno] = lines
    return groups


def _alias_decorated_noqa(
    tree: ast.Module, noqa: Dict[int, FrozenSet[str]]
) -> None:
    """Spread noqa pragmas across a decorated def's line group."""
    for lines in set(_decorator_groups(tree).values()):
        present = [noqa[ln] for ln in lines if ln in noqa]
        if not present:
            continue
        if any(ids == NOQA_ALL for ids in present):
            combined = NOQA_ALL
        else:
            combined = frozenset().union(*present)
        for lineno in lines:
            noqa[lineno] = combined


def parse_module(
    source: str,
    path: Path,
    *,
    module_name: Optional[str] = None,
) -> ModuleContext:
    """Parse one module into the context every rule consumes."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
    noqa = parse_noqa(source)
    _alias_decorated_noqa(tree, noqa)
    return ModuleContext(
        path=path,
        source=source,
        tree=tree,
        module_name=module_name or _module_name(path),
        noqa=noqa,
    )


def _run_rules(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.run(ctx):
            if is_suppressed(ctx.noqa, finding.line, finding.rule_id):
                finding = finding.suppress()
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
    *,
    module_name: Optional[str] = None,
    flag_unused_noqa: bool = False,
) -> List[Finding]:
    """Run ``rules`` over one module's source text.

    Findings suppressed by ``# repro: noqa`` pragmas are *returned* but
    marked ``suppressed`` — callers decide whether to show them.  With
    ``flag_unused_noqa`` the R015 post-pass runs too, treating every
    pragma as checkable against exactly the rules passed in.
    """
    ctx = parse_module(source, path, module_name=module_name)
    findings = _run_rules(ctx, rules)
    if flag_unused_noqa:
        ran_ids = frozenset(rule.rule_id for rule in rules)
        findings.extend(
            _unused_noqa_findings([ctx], findings, ran_ids, check_bare=True)
        )
        findings.sort(key=Finding.sort_key)
    return findings


def _unused_noqa_findings(
    contexts: Sequence[ModuleContext],
    findings: Sequence[Finding],
    ran_ids: FrozenSet[str],
    *,
    check_bare: bool,
) -> List[Finding]:
    """R015: pragmas that suppressed nothing in this scan.

    A *named* pragma is reported only when every rule it names actually
    ran and none fired — a partially-run rule set cannot prove a waiver
    stale.  A *bare* pragma is judged only when the full rule set ran
    (``check_bare``), for the same reason.
    """
    suppressed_at: Dict[str, Set[Tuple[int, str]]] = {}
    for f in findings:
        if f.suppressed:
            suppressed_at.setdefault(f.path, set()).add((f.line, f.rule_id))
    out: List[Finding] = []
    for ctx in contexts:
        groups = _decorator_groups(ctx.tree)
        hits = suppressed_at.get(str(ctx.path), set())
        for line, ids in sorted(parse_noqa(ctx.source).items()):
            covered = groups.get(line, frozenset()) | {line}
            used = {rid for (ln, rid) in hits if ln in covered}
            if used:
                continue
            if ids == NOQA_ALL:
                if not check_bare:
                    continue
                message = (
                    "unused '# repro: noqa': no finding is suppressed here"
                )
            elif ids <= ran_ids:
                message = (
                    f"unused '# repro: noqa[{','.join(sorted(ids))}]': "
                    f"the named rule(s) never fire here"
                )
            else:
                continue
            out.append(
                Finding(
                    rule_id=UNUSED_NOQA_ID,
                    severity="warning",
                    path=str(ctx.path),
                    line=line,
                    col=0,
                    message=message,
                )
            )
    return out


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise AnalysisError(f"{path}: no such file or directory")
    return out


def scan_paths(
    paths: Iterable[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> ScanResult:
    """Scan files and directories with the selected per-module rules."""
    rules = resolve_rule_ids(select, ignore)
    result = ScanResult()
    contexts: List[ModuleContext] = []
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{path}: cannot read: {exc}") from exc
        ctx = parse_module(source, path)
        contexts.append(ctx)
        result.findings.extend(_run_rules(ctx, rules))
        result.files_scanned += 1
    if any(rule.rule_id == UNUSED_NOQA_ID for rule in rules):
        ran_ids = frozenset(rule.rule_id for rule in rules)
        result.findings.extend(
            _unused_noqa_findings(
                contexts,
                result.findings,
                ran_ids,
                check_bare=select is None,
            )
        )
    result.findings = fingerprint_findings(result.findings)
    result.findings.sort(key=Finding.sort_key)
    return result


def scan_project(
    paths: Iterable[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[ScanResult, "ProjectContext"]:
    """One whole-program scan: per-module and project rules together.

    Returns the result *and* the built
    :class:`~repro.analysis.project.ProjectContext` so callers (the
    ``--shared-state`` report, tests) can inspect the derived
    structures without a second parse.
    """
    # Imported here: project.py itself uses parse_module from this
    # module, so a top-level import would be circular.
    from repro.analysis.project import build_project

    module_rules, project_rules = resolve_project_rule_ids(select, ignore)
    project = build_project(paths)
    result = ScanResult(files_scanned=len(project.modules))
    for ctx in project.modules.values():
        result.findings.extend(_run_rules(ctx, module_rules))
    noqa_by_path = {
        str(ctx.path): ctx.noqa for ctx in project.modules.values()
    }
    for rule in project_rules:
        for finding in rule.run(project):
            noqa = noqa_by_path.get(finding.path)
            if noqa is not None and is_suppressed(
                noqa, finding.line, finding.rule_id
            ):
                finding = finding.suppress()
            result.findings.append(finding)
    ran_ids = frozenset(
        [rule.rule_id for rule in module_rules]
        + [rule.rule_id for rule in project_rules]
    )
    if UNUSED_NOQA_ID in ran_ids:
        result.findings.extend(
            _unused_noqa_findings(
                list(project.modules.values()),
                result.findings,
                ran_ids,
                check_bare=select is None,
            )
        )
    result.findings = fingerprint_findings(result.findings)
    result.findings.sort(key=Finding.sort_key)
    return result, project
