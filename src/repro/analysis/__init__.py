"""Self-hosted static analysis for the AVQ reproduction.

An AST-based lint pass encoding the invariants the codec's lossless
guarantee relies on — error-hierarchy discipline, no swallowed
exceptions on decode paths, byte-width symmetry, reproducible
randomness — plus the plumbing to run it::

    python -m repro.analysis src/repro          # text report, exit 0/1/2
    python -m repro.analysis --format json ...  # stable JSON schema
    python -m repro lint                        # same, via the main CLI

The pass is *self-hosted*: ``tests/analysis/test_self_lint.py`` fails
the tier-1 suite whenever ``src/repro`` violates any rule, so the
invariants hold even where CI is unavailable.  Rules live in
:mod:`repro.analysis.rules`; see ``docs/ANALYSIS.md`` for the rule
catalogue and the ``# repro: noqa[R00x]`` suppression syntax.
"""

from __future__ import annotations

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    all_rule_ids,
    get_rule,
    iter_rules,
    register,
)
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rules,
    render_text,
)
from repro.analysis.runner import ScanResult, analyze_source, scan_paths

# Importing the module registers the built-in rule set.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "JSON_SCHEMA_VERSION",
    "Finding",
    "ModuleContext",
    "Rule",
    "ScanResult",
    "all_rule_ids",
    "analyze_source",
    "get_rule",
    "iter_rules",
    "main",
    "register",
    "render_json",
    "render_rules",
    "render_text",
    "scan_paths",
]

from repro.analysis.cli import main
