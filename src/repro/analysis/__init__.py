"""Self-hosted static analysis for the AVQ reproduction.

An AST-based lint pass encoding the invariants the codec's lossless
guarantee relies on — error-hierarchy discipline, no swallowed
exceptions on decode paths, byte-width symmetry, reproducible
randomness — plus the plumbing to run it::

    python -m repro.analysis src/repro          # text report, exit 0/1/2
    python -m repro.analysis --format json ...  # stable JSON schema
    python -m repro.analysis --project ...      # whole-program rules too
    python -m repro lint                        # same, via the main CLI

Two rule families exist.  Per-module rules (R001–R008, plus the R015
unused-suppression pass) see one file at a time; project rules
(R009–R014) see a whole-program :class:`~repro.analysis.project.
ProjectContext` — import graph, symbol table, call graph, and a
per-function resource-dataflow layer — so they can prove global
properties: resources closed on all paths, shared mutable state
registered, exception contracts held at package boundaries, async-ready
code free of blocking calls.  ``--baseline`` makes the strict rules
diff-aware: CI fails only on *new* findings (see
:mod:`repro.analysis.baseline`).

The pass is *self-hosted*: ``tests/analysis/test_self_lint.py`` fails
the tier-1 suite whenever ``src/repro`` violates any rule, so the
invariants hold even where CI is unavailable.  Rules live in
:mod:`repro.analysis.rules` and :mod:`repro.analysis.rules_project`;
see ``docs/ANALYSIS.md`` for the rule catalogue and the
``# repro: noqa[R00x]`` suppression syntax.
"""

from __future__ import annotations

from repro.analysis.base import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    all_project_rule_ids,
    all_rule_ids,
    get_rule,
    iter_project_rules,
    iter_rules,
    register,
    register_project,
)
from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rules,
    render_shared_state,
    render_text,
)
from repro.analysis.runner import (
    ScanResult,
    analyze_source,
    parse_module,
    scan_paths,
    scan_project,
)
from repro.analysis.project import ProjectContext, build_project

# Importing the rule modules registers both built-in rule sets.
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis import rules_project as _rules_project  # noqa: F401

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "JSON_SCHEMA_VERSION",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "ScanResult",
    "all_project_rule_ids",
    "all_rule_ids",
    "analyze_source",
    "apply_baseline",
    "build_project",
    "fingerprint_findings",
    "get_rule",
    "iter_project_rules",
    "iter_rules",
    "load_baseline",
    "main",
    "parse_module",
    "register",
    "register_project",
    "render_json",
    "render_rules",
    "render_shared_state",
    "render_text",
    "scan_paths",
    "scan_project",
    "write_baseline",
]

from repro.analysis.cli import main
