"""Run-length coding of raw tuples — compression without differencing.

Each tuple's fixed-width byte string is leading-zero run-length coded
exactly as AVQ's Section 3.4 step does, but with *no* phi reordering and
*no* differencing.  Comparing this against AVQ isolates how much of the
compression comes from the differential transform (which manufactures
the leading zeros) versus the RLE wrapper itself: raw tuples rarely have
leading zero bytes, so this baseline barely compresses — and can even
expand data by its one count byte per tuple.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.base import BaselineCodec
from repro.core.runlength import TupleLayout, rle_decode, rle_encode, rle_encoded_size
from repro.errors import CodecError
from repro.relational.relation import Relation

__all__ = ["RawRLEBaseline", "SortedRLEBaseline"]


class RawRLEBaseline(BaselineCodec):
    """Leading-zero RLE per tuple, insertion order, no differencing."""

    name = "raw-rle"

    def __init__(self, domain_sizes: Sequence[int]):
        self._layout = TupleLayout(domain_sizes)

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        return rle_encoded_size(self._layout, values)

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        if not tuples:
            raise CodecError("cannot encode an empty block")
        parts = [len(tuples).to_bytes(2, "big")]
        parts.extend(rle_encode(self._layout, t) for t in tuples)
        return b"".join(parts)

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        count = int.from_bytes(data[:2], "big")
        m = self._layout.tuple_bytes
        out = []
        pos = 2
        for _ in range(count):
            if pos >= len(data):
                raise CodecError("corrupt RLE block: truncated")
            zeros = data[pos]
            pos += 1
            if zeros > m:
                raise CodecError(f"corrupt RLE block: run {zeros} > width {m}")
            tail = data[pos : pos + m - zeros]
            if len(tail) != m - zeros:
                raise CodecError("corrupt RLE block: short tail")
            pos += m - zeros
            out.append(rle_decode(self._layout, zeros, tail))
        return out


class SortedRLEBaseline(RawRLEBaseline):
    """Phi-sorted tuples, still RLE-coded raw — clustering without differencing.

    Sorting alone does not create leading zeros, so this matches
    :class:`RawRLEBaseline` on size; it exists to make that point
    measurable (the win in Figure 5.7 comes from differencing, not
    ordering per se — ordering's role is to make the differences small).
    """

    name = "sorted-rle"

    def tuple_order(self, relation: Relation) -> List[Tuple[int, ...]]:
        return relation.sorted_by_phi()
