"""The uncoded baseline: fixed-width tuples, no compression at all."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.base import BaselineCodec
from repro.core.runlength import TupleLayout
from repro.errors import CodecError

__all__ = ["NaturalWidthBaseline", "NoCodingBaseline"]


class NoCodingBaseline(BaselineCodec):
    """Fixed-width storage — the "No coding" rows of Figures 5.8 and 5.9.

    ``min_field_bytes=1`` is the tightest packed layout (minimal bytes per
    attribute); ``min_field_bytes=2`` models natural int16-style columns,
    which is how the paper's uncoded relation is sized (see
    :class:`NaturalWidthBaseline` and DESIGN.md).
    """

    name = "no-coding"

    def __init__(self, domain_sizes: Sequence[int], *, min_field_bytes: int = 1):
        self._layout = TupleLayout(domain_sizes, min_field_bytes=min_field_bytes)

    @property
    def tuple_bytes(self) -> int:
        """Fixed per-tuple width ``m``."""
        return self._layout.tuple_bytes

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        return self._layout.tuple_bytes

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        if not tuples:
            raise CodecError("cannot encode an empty block")
        return len(tuples).to_bytes(2, "big") + b"".join(
            self._layout.tuple_to_bytes(t) for t in tuples
        )

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        count = int.from_bytes(data[:2], "big")
        m = self._layout.tuple_bytes
        if len(data) < 2 + count * m:
            raise CodecError("corrupt fixed-width block")
        out = []
        pos = 2
        for _ in range(count):
            out.append(self._layout.tuple_from_bytes(data[pos : pos + m]))
            pos += m
        return out


class NaturalWidthBaseline(NoCodingBaseline):
    """The uncoded relation at natural (int16-style) field widths.

    The paper's compression percentages (Figure 5.7) and block ratios
    (Figure 5.8's 189 versus 64) are only consistent with the *uncoded*
    relation storing each attribute in a natural machine field — two bytes
    by default — while AVQ packs attributes into minimal byte widths.  Its
    own Section 5.2 relation (16 attributes, 38 bytes per tuple) confirms
    the multi-byte natural layout.
    """

    name = "natural-width"

    def __init__(self, domain_sizes: Sequence[int], *, field_bytes: int = 2):
        super().__init__(domain_sizes, min_field_bytes=field_bytes)
