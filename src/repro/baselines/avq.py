"""AVQ wrapped in the baseline interface, for uniform comparisons."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineCodec
from repro.core.codec import BlockCodec
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.packer import pack_ordinals

__all__ = ["AVQBaseline"]


class AVQBaseline(BaselineCodec):
    """The full Section 3.4 pipeline behind the comparison interface."""

    name = "avq"

    def __init__(
        self,
        domain_sizes: Sequence[int],
        *,
        codec: Optional[BlockCodec] = None,
    ):
        self._codec = codec or BlockCodec(domain_sizes)

    @property
    def codec(self) -> BlockCodec:
        """The underlying block codec."""
        return self._codec

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        return self._codec.encode_block(tuples)

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        return self._codec.decode_block(data)

    def tuple_order(self, relation: Relation) -> List[Tuple[int, ...]]:
        return relation.sorted_by_phi()

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        # Context-dependent (gap to the neighbour); not usable standalone.
        raise NotImplementedError(
            "AVQ tuple size depends on its neighbours; use blocks_needed"
        )

    def blocks_needed(
        self, relation: Relation, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> int:
        ordinals = relation.phi_ordinals()
        if self._codec.chained and self._codec.mapper.fits_int64 and ordinals:
            # Vectorised fast path; bit-identical to the exact packer
            # (property-tested in tests/core/test_fastpack.py).
            import numpy as np

            from repro.core.fastpack import fast_blocks_needed

            return fast_blocks_needed(
                np.asarray(ordinals, dtype=np.int64),
                self._codec.mapper.domain_sizes,
                block_size,
            )
        partition = pack_ordinals(self._codec, ordinals, block_size)
        return partition.stats.num_blocks
