"""Common interface for the comparison coders of the evaluation.

Section 5.2 speaks of measurements "for each of the three techniques"
without naming the comparators; we implement a spectrum that isolates
each ingredient of AVQ's win:

* :class:`~repro.baselines.nocoding.NoCodingBaseline` — fixed-width
  storage (the uncoded relation of Figure 5.9);
* :class:`~repro.baselines.rawrle.RawRLEBaseline` — leading-zero
  run-length coding of raw tuples, no reordering or differencing;
* :class:`~repro.baselines.sortedrle.SortedRLEBaseline` — phi-sorted
  then run-length coded, still no differencing;
* AVQ itself (via :class:`~repro.baselines.avq.AVQBaseline`) — the full
  pipeline.

Every baseline codes a *block of tuples* to bytes and back losslessly,
and can report how many fixed-size blocks a whole relation needs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import CodecError
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE

__all__ = ["BaselineCodec"]


class BaselineCodec:
    """Abstract lossless block coder used for size comparisons."""

    #: Short display name used in benchmark tables.
    name: str = "abstract"

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        """Code one block of ordinal tuples to bytes."""
        raise NotImplementedError

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        """Invert :meth:`encode_block` exactly."""
        raise NotImplementedError

    def tuple_order(self, relation: Relation) -> List[Tuple[int, ...]]:
        """The tuple order this technique stores (default: insertion order)."""
        return list(relation)

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        """Bytes one tuple adds to a block (must be exact)."""
        raise NotImplementedError

    def block_header_size(self) -> int:
        """Fixed per-block overhead in bytes."""
        return 2  # tuple count

    def blocks_needed(
        self, relation: Relation, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> int:
        """Greedy-fill block count for a whole relation.

        Subclasses whose per-tuple cost depends on context (AVQ's gaps)
        override this; the default assumes :meth:`encoded_tuple_size` is
        context-free.
        """
        header = self.block_header_size()
        if block_size <= header:
            raise CodecError(
                f"block size {block_size} leaves no room past the header"
            )
        blocks = 0
        used = block_size  # force a new block on the first tuple
        for t in self.tuple_order(relation):
            cost = self.encoded_tuple_size(t)
            if header + cost > block_size:
                raise CodecError(
                    f"a single tuple needs {cost} bytes; block size "
                    f"{block_size} is too small"
                )
            if used + cost > block_size:
                blocks += 1
                used = header
            used += cost
        return blocks

    def compressed_bytes(
        self, relation: Relation, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> int:
        """On-disk footprint: blocks times block size (what Figure 5.7 counts)."""
        return self.blocks_needed(relation, block_size) * block_size
