"""The Golomb-Rice codec behind the baseline interface.

File-level counterpart of :mod:`repro.core.golomb`: packs a whole
relation into fixed-size blocks of Rice-coded chained gaps, so the
bit-versus-byte granularity comparison can be made in the same unit the
paper uses — disk blocks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.base import BaselineCodec
from repro.core.golomb import GolombBlockCodec
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.packer import pack_ordinals

__all__ = ["GolombBaseline"]


class GolombBaseline(BaselineCodec):
    """Bit-granular differencing coder as a block-count comparator."""

    name = "golomb"

    def __init__(self, domain_sizes: Sequence[int]):
        self._codec = GolombBlockCodec(domain_sizes)

    @property
    def codec(self) -> GolombBlockCodec:
        """The underlying Rice-coded block codec."""
        return self._codec

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        return self._codec.encode_block(tuples)

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        return self._codec.decode_block(data)

    def tuple_order(self, relation: Relation) -> List[Tuple[int, ...]]:
        return relation.sorted_by_phi()

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        raise NotImplementedError(
            "Rice-coded size depends on the block's gap distribution; "
            "use blocks_needed"
        )

    def blocks_needed(
        self, relation: Relation, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> int:
        partition = pack_ordinals(
            self._codec, relation.phi_ordinals(), block_size
        )
        return partition.stats.num_blocks
