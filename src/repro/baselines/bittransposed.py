"""Bit-transposed file storage — the paper's reference [13] as a baseline.

Wong et al.'s *Bit Transposed Files* (VLDB 1985) store a block of tuples
column-wise as bit planes: attribute ``i`` needs ``beta[|A_i| - 1]``
planes, and plane ``j`` holds bit ``j`` of that attribute for every
tuple in the block.  Two properties make it a relevant comparator for
AVQ:

* it removes byte-alignment padding (an attribute with a 5-bit domain
  costs 5 bits, not 8), so it beats fixed-width storage with *zero*
  modelling of inter-tuple redundancy;
* predicates over one attribute touch only that attribute's planes —
  a different flavour of "localized access" than AVQ's per-block
  decoding, exposed here as :meth:`BitTransposedBaseline.filter_block`.

Unlike AVQ it cannot exploit tuple ordering at all, which is exactly the
comparison worth making: AVQ's win over BTF is pure differencing gain.

Block layout::

    count u (2 bytes) ‖ planes, attribute-major then bit-major
    (each plane ceil(u/8) bytes, tuple t at bit position t MSB-first)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.base import BaselineCodec
from repro.core.bitutils import beta
from repro.errors import CodecError
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE

__all__ = ["BitTransposedBaseline"]


class BitTransposedBaseline(BaselineCodec):
    """Bit-plane columnar block storage (lossless, order-preserving)."""

    name = "bit-transposed"

    def __init__(self, domain_sizes: Sequence[int]):
        if not domain_sizes:
            raise CodecError("bit-transposed storage needs at least one domain")
        self._sizes = tuple(int(s) for s in domain_sizes)
        self._bits = tuple(beta(s - 1) for s in self._sizes)
        self._total_bits = sum(self._bits)

    @property
    def bits_per_tuple(self) -> int:
        """Sum of per-attribute bit widths (no byte padding)."""
        return self._total_bits

    # ------------------------------------------------------------------
    # Block coding
    # ------------------------------------------------------------------

    def encode_block(self, tuples: Sequence[Tuple[int, ...]]) -> bytes:
        if not tuples:
            raise CodecError("cannot encode an empty block")
        u = len(tuples)
        if u > 0xFFFF:
            raise CodecError(f"block of {u} tuples exceeds the count field")
        plane_bytes = (u + 7) // 8
        out = bytearray(u.to_bytes(2, "big"))
        for attr, width in enumerate(self._bits):
            for bit in range(width - 1, -1, -1):
                plane = bytearray(plane_bytes)
                for t_idx, t in enumerate(tuples):
                    value = t[attr]
                    if not 0 <= value < self._sizes[attr]:
                        raise CodecError(
                            f"attribute {attr} value {value} out of domain"
                        )
                    if (value >> bit) & 1:
                        plane[t_idx >> 3] |= 0x80 >> (t_idx & 7)
                out += plane
        return bytes(out)

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        u, plane_bytes, planes_start = self._parse_header(data)
        values = [[0] * len(self._bits) for _ in range(u)]
        offset = planes_start
        for attr, width in enumerate(self._bits):
            for bit in range(width - 1, -1, -1):
                plane = data[offset : offset + plane_bytes]
                offset += plane_bytes
                for t_idx in range(u):
                    if plane[t_idx >> 3] & (0x80 >> (t_idx & 7)):
                        values[t_idx][attr] |= 1 << bit
        for row in values:
            for attr, v in enumerate(row):
                if v >= self._sizes[attr]:
                    raise CodecError(
                        f"corrupt bit-transposed block: attribute {attr} "
                        f"decoded to {v}"
                    )
        return [tuple(row) for row in values]

    def _parse_header(self, data: bytes) -> Tuple[int, int, int]:
        if len(data) < 2:
            raise CodecError("corrupt bit-transposed block: short header")
        u = int.from_bytes(data[:2], "big")
        if u == 0:
            raise CodecError("corrupt bit-transposed block: zero tuple count")
        plane_bytes = (u + 7) // 8
        needed = 2 + self._total_bits * plane_bytes
        if len(data) < needed:
            raise CodecError(
                f"corrupt bit-transposed block: {len(data)} bytes, "
                f"needs {needed}"
            )
        return u, plane_bytes, 2

    # ------------------------------------------------------------------
    # Predicate evaluation on the compressed form (the BTF selling point)
    # ------------------------------------------------------------------

    def filter_block(
        self, data: bytes, position: int, lo: int, hi: int
    ) -> List[int]:
        """Indices of tuples with ``lo <= A_position <= hi``, touching only
        that attribute's planes (partial decompression)."""
        if not 0 <= position < len(self._bits):
            raise CodecError(f"no attribute at position {position}")
        u, plane_bytes, planes_start = self._parse_header(data)
        offset = planes_start + sum(self._bits[:position]) * plane_bytes
        width = self._bits[position]
        values = [0] * u
        for bit in range(width - 1, -1, -1):
            plane = data[offset : offset + plane_bytes]
            offset += plane_bytes
            for t_idx in range(u):
                if plane[t_idx >> 3] & (0x80 >> (t_idx & 7)):
                    values[t_idx] |= 1 << bit
        return [i for i, v in enumerate(values) if lo <= v <= hi]

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def encoded_tuple_size(self, values: Sequence[int]) -> int:
        raise NotImplementedError(
            "bit-transposed size is plane-granular; use blocks_needed"
        )

    def block_bytes(self, num_tuples: int) -> int:
        """Exact encoded size of a block of ``num_tuples`` tuples."""
        return 2 + self._total_bits * ((num_tuples + 7) // 8)

    def tuples_per_block(self, block_size: int) -> int:
        """Largest u with ``block_bytes(u) <= block_size``."""
        budget = block_size - 2
        if budget < self._total_bits:  # less than one 8-tuple plane group
            if self.block_bytes(1) > block_size:
                raise CodecError(
                    f"block size {block_size} holds no bit-transposed tuples"
                )
        full_groups = budget // self._total_bits  # groups of 8 tuples
        u = full_groups * 8
        while u > 0 and self.block_bytes(u) > block_size:
            u -= 1
        if u == 0:
            raise CodecError(
                f"block size {block_size} holds no bit-transposed tuples"
            )
        return u

    def blocks_needed(
        self, relation: Relation, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> int:
        per_block = self.tuples_per_block(block_size)
        n = len(relation)
        return -(-n // per_block) if n else 0
