"""Comparison coders: no-coding, RLE variants, bit-transposed, and AVQ."""

from repro.baselines.avq import AVQBaseline
from repro.baselines.base import BaselineCodec
from repro.baselines.bittransposed import BitTransposedBaseline
from repro.baselines.golomb import GolombBaseline
from repro.baselines.nocoding import NaturalWidthBaseline, NoCodingBaseline
from repro.baselines.rawrle import RawRLEBaseline, SortedRLEBaseline

__all__ = [
    "BaselineCodec",
    "NoCodingBaseline",
    "NaturalWidthBaseline",
    "RawRLEBaseline",
    "SortedRLEBaseline",
    "BitTransposedBaseline",
    "GolombBaseline",
    "AVQBaseline",
]
