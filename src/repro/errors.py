"""Exception hierarchy for the AVQ reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes below.
"""

from __future__ import annotations

__all__ = [
    "AnalysisError",
    "BlockOverflowError",
    "CodecError",
    "CrashPoint",
    "DomainError",
    "EncodingError",
    "IndexError_",
    "QueryError",
    "ReadFault",
    "ReproError",
    "SchemaError",
    "StorageError",
    "WALError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation schema is malformed (empty, bad domain size, bad name)."""


class DomainError(ReproError):
    """An attribute value falls outside its declared domain."""


class EncodingError(ReproError):
    """A value could not be mapped to or from its ordinal encoding."""


class CodecError(ReproError):
    """A block failed to encode or decode (corrupt stream, overflow)."""


class BlockOverflowError(CodecError):
    """The encoded form of a tuple set does not fit in one disk block."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad block id, short read)."""


class WALError(StorageError):
    """The write-ahead log is malformed beyond its self-healing rules.

    Torn log tails are *not* errors (recovery truncates at the last
    CRC-valid record); this is raised when a CRC-valid record decodes to
    something impossible — writer corruption, not crash damage.
    """


class CrashPoint(StorageError):
    """An injected crash was reached (:mod:`repro.storage.faults`).

    Models the process dying mid-write: once raised, the faulty device
    refuses all further I/O until it is explicitly disarmed, exactly as
    a crashed machine would until reboot.
    """


class ReadFault(StorageError):
    """An injected transient read error (:mod:`repro.storage.faults`)."""


class IndexError_(ReproError):
    """An index structure invariant was violated.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`, which has different semantics.
    """


class QueryError(ReproError):
    """A query is malformed (unknown attribute, inverted range)."""


class WorkloadError(ReproError):
    """A synthetic workload specification is invalid."""


class AnalysisError(ReproError):
    """A static-analysis run could not start or complete (usage error)."""
