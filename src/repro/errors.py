"""Exception hierarchy for the AVQ reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes below.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

__all__ = [
    "AnalysisError",
    "BlockOverflowError",
    "CodecError",
    "CorruptionError",
    "CrashPoint",
    "DeadlineError",
    "DomainError",
    "EncodingError",
    "IndexError_",
    "IntegrityError",
    "ObservabilityError",
    "ProtocolError",
    "QuarantinedBlockError",
    "QueryCancelled",
    "QueryError",
    "ReadFault",
    "RepairError",
    "ReproError",
    "SchemaError",
    "ServerError",
    "StorageError",
    "TransientReadFault",
    "WALError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation schema is malformed (empty, bad domain size, bad name)."""


class DomainError(ReproError):
    """An attribute value falls outside its declared domain."""


class EncodingError(ReproError):
    """A value could not be mapped to or from its ordinal encoding."""


class CodecError(ReproError):
    """A block failed to encode or decode (corrupt stream, overflow)."""


class BlockOverflowError(CodecError):
    """The encoded form of a tuple set does not fit in one disk block."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad block id, short read)."""


class WALError(StorageError):
    """The write-ahead log is malformed beyond its self-healing rules.

    Torn log tails are *not* errors (recovery truncates at the last
    CRC-valid record); this is raised when a CRC-valid record decodes to
    something impossible — writer corruption, not crash damage.
    """


class CrashPoint(StorageError):
    """An injected crash was reached (:mod:`repro.storage.faults`).

    Models the process dying mid-write: once raised, the faulty device
    refuses all further I/O until it is explicitly disarmed, exactly as
    a crashed machine would until reboot.
    """


class ReadFault(StorageError):
    """An injected transient read error (:mod:`repro.storage.faults`)."""


class TransientReadFault(ReadFault):
    """A read fault that is expected to clear on retry.

    :class:`~repro.storage.disk.SimulatedDisk` retries these with
    bounded backoff; only when the retry budget is exhausted does the
    fault escape to the caller.
    """


class IntegrityError(StorageError):
    """Base class for the online-integrity branch (docs/INTEGRITY.md).

    Every integrity exception carries a structured payload — *where* the
    damage is (path, block id, block position) and *how* it was detected
    — so the CLI can print actionable ``fsck``-style reports instead of
    free-text messages.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        block_id: Optional[int] = None,
        position: Optional[int] = None,
        detected_by: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        #: Filesystem path of the damaged artefact (``None`` for the
        #: simulated disk).
        self.path = path
        #: Stable disk block id, where one exists.
        self.block_id = block_id
        #: Block position within the file/container, where one exists.
        self.position = position
        #: Which check tripped: ``"crc32"``, ``"decode"``,
        #: ``"directory"``, ``"quarantine"``, or ``"reread"``.
        self.detected_by = detected_by

    def details(self) -> Dict[str, Union[str, int, None]]:
        """The structured payload as a plain dict (CLI/report feed)."""
        return {
            "path": self.path,
            "block_id": self.block_id,
            "position": self.position,
            "detected_by": self.detected_by,
        }

    def fsck_line(self) -> str:
        """One ``fsck``-style report line: location, then the fault."""
        where = self.path if self.path is not None else "<simulated disk>"
        parts = []
        if self.position is not None:
            parts.append(f"block {self.position}")
        if self.block_id is not None:
            parts.append(f"disk id {self.block_id}")
        loc = ", ".join(parts) if parts else "container"
        by = f" [{self.detected_by}]" if self.detected_by else ""
        return f"{where}: {loc}: {self}{by}"


class CorruptionError(IntegrityError):
    """A block's stored bytes do not match what was written.

    Raised on checksum mismatch, a decode that contradicts the block
    directory, or a failed decode of checksummed bytes — latent bit rot
    surfacing, as opposed to the torn/dropped writes of
    :class:`CrashPoint` crash damage.
    """


class QuarantinedBlockError(IntegrityError):
    """A read touched a block that is quarantined as corrupt.

    Quarantine isolates damage: the block's content is never returned
    (it may be garbage), but the rest of the table stays readable.  See
    :mod:`repro.storage.integrity` for the repair path out.
    """


class RepairError(IntegrityError):
    """A block repair attempt failed or could not be verified.

    Raised when a reconstructed payload fails its byte-level re-read
    verification — the repair never claims success on unverified bytes.
    """


class IndexError_(ReproError):
    """An index structure invariant was violated.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`, which has different semantics.
    """


class QueryError(ReproError):
    """A query is malformed (unknown attribute, inverted range)."""


class QueryCancelled(QueryError):
    """A read was cooperatively cancelled before it finished.

    Raised at the next block boundary when the caller's cancellation
    flag is set — a snapshot select whose client stopped waiting (its
    deadline fired, or the connection died) aborts cleanly instead of
    burning a reader thread on an answer nobody will read.
    """


class WorkloadError(ReproError):
    """A synthetic workload specification is invalid."""


class AnalysisError(ReproError):
    """A static-analysis run could not start or complete (usage error)."""


class ObservabilityError(ReproError):
    """The observability layer was misused (bad metric name, type clash,
    malformed histogram boundaries)."""


class ServerError(ReproError):
    """The serving layer failed (bad configuration, lifecycle misuse)."""


class DeadlineError(ServerError):
    """A request exceeded its deadline budget.

    On the wire this is the typed ``{"status": "error", "code":
    "deadline"}`` response: the server answered in bounded time instead
    of letting the client wait on a pinned disk read or a stalled
    executor.  For a write, a deadline means the *outcome is unknown* —
    the mutation may still commit after the answer (see
    docs/SERVING.md).
    """


class ProtocolError(ServerError):
    """A wire-protocol frame is malformed (bad length, bad JSON, not a
    request object).  Overload is *not* an error — the server answers it
    with a typed BUSY response instead."""
