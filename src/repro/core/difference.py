"""The tuple difference measure (Equation 2.6) and difference-tuple helpers.

AVQ never subtracts tuples component-wise.  Instead, both tuples are mapped
into ordinal space through ``phi`` and the (always non-negative) ordinal
difference is taken; the result can itself be re-expressed as a tuple via
``phi``'s inverse, which is how the paper displays difference tuples such as
``(0, 00, 04, 05, 23)`` for the ordinal difference 16727.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.phi import OrdinalMapper

__all__ = [
    "tuple_difference",
    "ordinal_difference",
    "difference_tuple",
    "apply_difference",
]


def ordinal_difference(phi_a: int, phi_b: int) -> int:
    """Equation 2.6 on pre-computed ordinals: ``|phi_a - phi_b|``."""
    return phi_b - phi_a if phi_a <= phi_b else phi_a - phi_b


def tuple_difference(
    mapper: OrdinalMapper, t_i: Sequence[int], t_j: Sequence[int]
) -> int:
    """Equation 2.6: the absolute ordinal distance between two tuples.

    >>> m = OrdinalMapper([8, 16, 64, 64, 64])
    >>> tuple_difference(m, (3, 8, 32, 34, 12), (3, 8, 36, 39, 35))
    16727
    """
    return ordinal_difference(mapper.phi(t_i), mapper.phi(t_j))


def difference_tuple(mapper: OrdinalMapper, diff: int) -> Tuple[int, ...]:
    """Render an ordinal difference as a tuple in the same mixed radix.

    This is how Figure 3.3 of the paper displays coded blocks: the ordinal
    difference 16727 becomes the tuple ``(0, 0, 4, 5, 23)`` under domains
    ``(8, 16, 64, 64, 64)``.
    """
    return mapper.phi_inverse(diff)


def apply_difference(
    mapper: OrdinalMapper,
    representative: Sequence[int],
    diff: int,
    *,
    before: bool,
) -> Tuple[int, ...]:
    """Reconstruct a tuple from its representative and stored difference.

    ``before=True`` means the original tuple precedes the representative in
    ``phi`` order (so the difference is subtracted from the representative's
    ordinal); ``before=False`` means it follows (difference is added).
    This is the decoding direction of Theorem 2.1.
    """
    anchor = mapper.phi(representative)
    ordinal = anchor - diff if before else anchor + diff
    return mapper.phi_inverse(ordinal)
