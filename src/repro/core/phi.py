"""The mixed-radix ordinal mapping ``phi`` (Equations 2.2 through 2.5).

``phi`` maps an n-dimensional tuple drawn from attribute domains of sizes
``|A_1| .. |A_n|`` to its ordinal position in the lexicographic enumeration
of the full cross-product space.  It is the heart of AVQ: tuples are sorted,
differenced, and reconstructed entirely in this one-dimensional ordinal
space, and Theorem 2.1's lossless guarantee rests on ``phi`` being a
bijection.

Two implementations are provided:

* :class:`OrdinalMapper` — exact arbitrary-precision Python integers;
  always correct, used whenever the space size ``||R||`` may exceed 2**63.
* :func:`phi_array` / :func:`phi_inverse_array` — vectorised numpy paths
  used by the workload generator and the experiment drivers when the space
  fits comfortably in ``int64``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, SchemaError

__all__ = ["OrdinalMapper", "phi_array", "phi_inverse_array"]

# Leave two bits of headroom below 2**63 so intermediate products in the
# vectorised path cannot overflow signed 64-bit arithmetic.
_INT64_SAFE_SPACE = 1 << 61


def _validate_sizes(domain_sizes: Sequence[int]) -> Tuple[int, ...]:
    sizes = tuple(int(s) for s in domain_sizes)
    if not sizes:
        raise SchemaError("phi requires at least one attribute domain")
    for i, s in enumerate(sizes):
        if s < 1:
            raise SchemaError(f"domain {i} has non-positive size {s}")
    return sizes


class OrdinalMapper:
    """Bijection between tuples and ordinals for a fixed list of domains.

    Parameters
    ----------
    domain_sizes:
        ``|A_1| .. |A_n|`` — the size of each attribute domain, most
        significant attribute first (the paper's Equation 2.2 weights
        attribute ``i`` by the product of the sizes of all later domains).

    Examples
    --------
    >>> m = OrdinalMapper([8, 16, 64, 64, 64])
    >>> m.phi((3, 8, 36, 39, 35))
    14830051
    >>> m.phi_inverse(14830051)
    (3, 8, 36, 39, 35)
    """

    __slots__ = ("_sizes", "_weights", "_space_size")

    def __init__(self, domain_sizes: Sequence[int]) -> None:
        self._sizes = _validate_sizes(domain_sizes)
        # weights[i] = prod_{j > i} |A_j|  (weight of the last attribute is 1)
        weights: List[int] = [1] * len(self._sizes)
        for i in range(len(self._sizes) - 2, -1, -1):
            weights[i] = weights[i + 1] * self._sizes[i + 1]
        self._weights = tuple(weights)
        self._space_size = self._weights[0] * self._sizes[0]

    @property
    def domain_sizes(self) -> Tuple[int, ...]:
        """The domain sizes this mapper was built for."""
        return self._sizes

    @property
    def weights(self) -> Tuple[int, ...]:
        """Mixed-radix weights: ``weights[i] = prod_{j>i} |A_j|``."""
        return self._weights

    @property
    def arity(self) -> int:
        """Number of attributes ``n``."""
        return len(self._sizes)

    @property
    def space_size(self) -> int:
        """``||R|| = prod |A_i|`` — the size of the full tuple space."""
        return self._space_size

    @property
    def fits_int64(self) -> bool:
        """Whether the whole ordinal space fits safely in numpy int64."""
        return self._space_size <= _INT64_SAFE_SPACE

    def validate(self, values: Sequence[int]) -> None:
        """Raise :class:`~repro.errors.DomainError` unless ``values`` is in-domain."""
        if len(values) != len(self._sizes):
            raise DomainError(
                f"tuple has {len(values)} attributes, schema has {len(self._sizes)}"
            )
        for i, (v, s) in enumerate(zip(values, self._sizes)):
            if not 0 <= v < s:
                raise DomainError(
                    f"attribute {i} value {v} outside domain [0, {s})"
                )

    def phi(self, values: Sequence[int]) -> int:
        """Equation 2.2: map a tuple to its ordinal position.

        The tuple is validated against the domain sizes; out-of-domain
        values raise :class:`~repro.errors.DomainError` (a silent overflow
        here would break the bijection and hence losslessness).
        """
        self.validate(values)
        total = 0
        for v, w in zip(values, self._weights):
            total += v * w
        return total

    def phi_unchecked(self, values: Sequence[int]) -> int:
        """Equation 2.2 without domain validation (hot paths, pre-validated data)."""
        total = 0
        for v, w in zip(values, self._weights):
            total += v * w
        return total

    def phi_inverse(self, ordinal: int) -> Tuple[int, ...]:
        """Equations 2.3 through 2.5: map an ordinal back to its tuple."""
        if not 0 <= ordinal < self._space_size:
            raise DomainError(
                f"ordinal {ordinal} outside space [0, {self._space_size})"
            )
        out: List[int] = []
        remainder = ordinal
        for w in self._weights:
            q, remainder = divmod(remainder, w)
            out.append(q)
        return tuple(out)

    def phi_many(self, rows: Iterable[Sequence[int]]) -> List[int]:
        """Apply :meth:`phi` to every row, returning a list of ordinals."""
        return [self.phi(row) for row in rows]

    def sort_key(self, values: Sequence[int]) -> int:
        """Ordering rule from Section 2.2: ``t_i < t_j  iff  phi(t_i) < phi(t_j)``.

        Because ``phi`` is the mixed-radix value with the first attribute
        most significant, this order coincides with plain lexicographic
        order on the encoded tuples.
        """
        return self.phi(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrdinalMapper(domain_sizes={list(self._sizes)})"


def phi_array(rows: np.ndarray, domain_sizes: Sequence[int]) -> np.ndarray:
    """Vectorised Equation 2.2 over a ``(num_rows, n)`` integer array.

    Only valid when the ordinal space fits in int64; use
    :class:`OrdinalMapper` otherwise.  Returns a ``(num_rows,)`` int64 array.
    """
    mapper = OrdinalMapper(domain_sizes)
    if not mapper.fits_int64:
        raise DomainError(
            "ordinal space exceeds int64; use OrdinalMapper.phi for exact results"
        )
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[1] != mapper.arity:
        raise DomainError(
            f"expected shape (num_rows, {mapper.arity}), got {rows.shape}"
        )
    sizes = np.asarray(mapper.domain_sizes, dtype=np.int64)
    if (rows < 0).any() or (rows >= sizes).any():
        raise DomainError("array contains out-of-domain attribute values")
    weights = np.asarray(mapper.weights, dtype=np.int64)
    return rows @ weights


def phi_inverse_array(ordinals: np.ndarray, domain_sizes: Sequence[int]) -> np.ndarray:
    """Vectorised Equations 2.3 through 2.5 over a vector of ordinals.

    Returns a ``(num_rows, n)`` int64 array of decoded tuples.
    """
    mapper = OrdinalMapper(domain_sizes)
    if not mapper.fits_int64:
        raise DomainError(
            "ordinal space exceeds int64; use OrdinalMapper.phi_inverse instead"
        )
    ordinals = np.asarray(ordinals, dtype=np.int64)
    if (ordinals < 0).any() or (ordinals >= mapper.space_size).any():
        raise DomainError("array contains out-of-space ordinals")
    out = np.empty((ordinals.shape[0], mapper.arity), dtype=np.int64)
    remainder = ordinals.copy()
    for i, w in enumerate(mapper.weights):
        out[:, i], remainder = np.divmod(remainder, w)
    return out
