"""Bit- and byte-level helpers used throughout the AVQ codec.

The paper's compression argument is phrased in terms of ``beta[x]``, the
minimum number of bits needed to represent a non-negative integer ``x``
(Section 2.2).  This module provides that function along with the byte-width
helpers the block codec uses when laying difference tuples out as
fixed-width big-endian byte fields.
"""

from __future__ import annotations

from repro.errors import EncodingError

__all__ = [
    "beta",
    "byte_width",
    "domain_byte_width",
    "int_to_bytes_fixed",
    "int_from_bytes",
    "leading_zero_bytes",
]


def beta(x: int) -> int:
    """Return ``beta[x]``: the minimum number of bits to represent ``x``.

    Defined for non-negative integers.  By convention ``beta[0] == 1``:
    even zero occupies one bit of storage.

    >>> beta(0), beta(1), beta(255), beta(256)
    (1, 1, 8, 9)
    """
    if x < 0:
        raise EncodingError(f"beta[] is defined for non-negative integers, got {x}")
    if x == 0:
        return 1
    return x.bit_length()


def byte_width(x: int) -> int:
    """Return the number of bytes needed to store ``x`` (at least 1).

    >>> byte_width(0), byte_width(255), byte_width(256)
    (1, 1, 2)
    """
    return (beta(x) + 7) // 8


def domain_byte_width(domain_size: int) -> int:
    """Byte width of the fixed field storing one attribute of a domain.

    A domain of size ``s`` holds ordinals ``0 .. s-1``, so the field must be
    wide enough for ``s - 1``.

    >>> domain_byte_width(64), domain_byte_width(256), domain_byte_width(257)
    (1, 1, 2)
    """
    if domain_size < 1:
        raise EncodingError(f"domain size must be >= 1, got {domain_size}")
    return byte_width(domain_size - 1)


def int_to_bytes_fixed(x: int, width: int) -> bytes:
    """Encode ``x`` as exactly ``width`` big-endian bytes.

    Raises :class:`~repro.errors.EncodingError` when ``x`` does not fit.
    """
    if x < 0:
        raise EncodingError(f"cannot encode negative value {x}")
    try:
        return x.to_bytes(width, "big")
    except OverflowError as exc:
        raise EncodingError(f"value {x} does not fit in {width} bytes") from exc


def int_from_bytes(data: bytes) -> int:
    """Decode a big-endian unsigned integer from ``data``."""
    return int.from_bytes(data, "big")


def leading_zero_bytes(data: bytes) -> int:
    """Count the leading zero bytes of ``data``.

    This is the run length the AVQ block codec stores in its count field
    (Section 3.4 of the paper).

    >>> leading_zero_bytes(bytes([0, 0, 3, 0]))
    2
    >>> leading_zero_bytes(bytes([0, 0, 0]))
    3
    """
    count = 0
    for b in data:
        if b:
            break
        count += 1
    return count
