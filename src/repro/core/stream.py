"""Bounded byte-stream reader and writer used by the block codec.

Disk blocks are fixed-size byte buffers.  The codec needs two small
abstractions on top of :class:`bytes`:

* :class:`StreamWriter` — appends fields while tracking how many bytes of a
  fixed capacity remain (so the packer can ask "would one more tuple fit?").
* :class:`StreamReader` — consumes fields with explicit bounds checking,
  turning a truncated or corrupt block into a :class:`~repro.errors.CodecError`
  instead of silently mis-decoding.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import BlockOverflowError, CodecError

__all__ = ["StreamWriter", "StreamReader"]


class StreamWriter:
    """Append-only byte buffer with an optional hard capacity."""

    __slots__ = ("_chunks", "_size", "_capacity")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise CodecError(f"capacity must be non-negative, got {capacity}")
        self._chunks: List[bytes] = []
        self._size = 0
        self._capacity = capacity

    @property
    def size(self) -> int:
        """Number of bytes written so far."""
        return self._size

    @property
    def capacity(self) -> Optional[int]:
        """Hard byte limit, or ``None`` for unbounded."""
        return self._capacity

    @property
    def remaining(self) -> Optional[int]:
        """Bytes left before the capacity is hit (``None`` if unbounded)."""
        if self._capacity is None:
            return None
        return self._capacity - self._size

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more bytes would stay within capacity."""
        return self._capacity is None or self._size + nbytes <= self._capacity

    def write(self, data: bytes) -> None:
        """Append raw bytes; raises :class:`BlockOverflowError` past capacity."""
        if not self.fits(len(data)):
            raise BlockOverflowError(
                f"writing {len(data)} bytes would exceed capacity "
                f"{self._capacity} (currently at {self._size})"
            )
        self._chunks.append(data)
        self._size += len(data)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` big-endian bytes."""
        if value < 0:
            raise CodecError(f"cannot write negative value {value}")
        try:
            self.write(value.to_bytes(width, "big"))
        except OverflowError as exc:
            raise CodecError(f"value {value} does not fit in {width} bytes") from exc

    def getvalue(self) -> bytes:
        """Return everything written so far as one bytes object."""
        return b"".join(self._chunks)


class StreamReader:
    """Cursor over a bytes object with bounds-checked reads."""

    __slots__ = ("_data", "_pos", "_end")

    def __init__(
        self, data: bytes, start: int = 0, end: Optional[int] = None
    ) -> None:
        self._data = data
        self._pos = start
        self._end = len(data) if end is None else end
        if not 0 <= self._pos <= self._end <= len(data):
            raise CodecError(
                f"invalid stream window [{start}, {end}) over {len(data)} bytes"
            )

    @property
    def position(self) -> int:
        """Current cursor offset into the underlying buffer."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bytes left before the end of the window."""
        return self._end - self._pos

    @property
    def exhausted(self) -> bool:
        """Whether the cursor has reached the end of the window."""
        return self._pos >= self._end

    def read(self, nbytes: int) -> bytes:
        """Consume exactly ``nbytes``; short reads raise :class:`CodecError`."""
        if nbytes < 0:
            raise CodecError(f"cannot read a negative byte count ({nbytes})")
        if self._pos + nbytes > self._end:
            raise CodecError(
                f"stream truncated: wanted {nbytes} bytes, only "
                f"{self.remaining} remain"
            )
        out = self._data[self._pos : self._pos + nbytes]
        self._pos += nbytes
        return out

    def read_uint(self, width: int) -> int:
        """Consume ``width`` bytes as a big-endian unsigned integer."""
        return int.from_bytes(self.read(width), "big")
