"""Parallel block coding: chunked fan-out of the Section 3.4 codec.

Block coding is embarrassingly parallel — the paper codes and decodes
*per block* (Section 3.4, Figure 5.9), so a relation's blocks can be
encoded on as many cores as the host offers with no coordination beyond
ordering the results.  This module supplies that fan-out:

* :func:`encode_blocks` / :func:`decode_blocks` /
  :func:`decode_ordinal_blocks` — one-shot helpers that split a list of
  phi-ordered runs (or encoded payloads) into chunks, farm the chunks to
  a ``concurrent.futures`` process pool, and reassemble the results in
  input order;
* :class:`ParallelBlockCodec` — the reusable form: it owns the worker
  pool across calls, so streaming users (``bulk_load``, the benchmark
  harness) pay the pool start-up once.

Results are **byte-identical** to the serial codec: the per-run encoding
is deterministic, so the only difference parallelism makes is wall-clock
time (property-tested in ``tests/core/test_parallel.py``).  Small inputs
never spawn a pool — below :data:`SERIAL_THRESHOLD` runs, or whenever
the resolved worker count is one, everything happens inline, which keeps
single-block mutations free of multiprocessing overhead.

Eligible codecs (chained, median representative, int64-sized ordinal
space) are encoded with the vectorised
:class:`~repro.core.fastpack.FastBlockEncoder` inside each worker; all
other configurations use the exact scalar path.  Both agree byte for
byte with :meth:`~repro.core.codec.BlockCodec.encode_block`.

Observability: batch calls are bracketed by ``parallel.*`` spans and
counters in the parent process.  Per-block ``codec.*`` histograms are
recorded only on the serial/inline paths — worker processes start with
the :mod:`repro.obs` registry disabled and their counters are
deliberately *not* merged back (docs/OBSERVABILITY.md); the batch span
still carries the wall-clock total either way.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from types import TracebackType
from typing import List, Optional, Sequence, Tuple, Type

from repro.core.codec import BlockCodec
from repro.errors import CodecError
from repro.obs import runtime as _obs

__all__ = [
    "SERIAL_THRESHOLD",
    "ParallelBlockCodec",
    "decode_blocks",
    "decode_ordinal_blocks",
    "encode_blocks",
    "resolve_workers",
]

#: Below this many runs/payloads the serial path is always taken: pool
#: start-up and pickling dominate any conceivable speedup.
SERIAL_THRESHOLD = 16

#: Chunks submitted per worker — small enough to amortise pickling, large
#: enough that an unlucky slow chunk does not serialise the whole batch.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob to a concrete pool size.

    ``None`` and ``0`` mean "use every core the host reports"; ``1``
    means serial; an explicit ``n > 1`` is honoured as given (useful for
    reproducible benchmarks on loaded machines).  Negative counts are
    rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise CodecError(f"worker count must be >= 0, got {workers}")
    return workers


def _use_fast_encoder(codec: BlockCodec) -> bool:
    """Whether the vectorised encoder applies (byte-identical when it does).

    Centralised on the codec's own chooser (:mod:`repro.core.vectorized`)
    so a ``vectorized=False`` codec keeps the exact scalar path inside
    workers too.  Duck-typed codecs without the knob are scalar.
    """
    return bool(getattr(codec, "vectorized", False))


def _encode_runs(
    codec: BlockCodec,
    runs: Sequence[Sequence[int]],
    capacity: Optional[int],
    fast: bool,
) -> List[bytes]:
    """Encode each phi-ordered ordinal run into one block payload.

    This is the per-chunk worker body; it must stay a module-level
    function so process pools can pickle it.  ``fast`` routes through
    the codec's vectorised companion (byte-identical; the companion
    pickles along with the codec).
    """
    vec = getattr(codec, "vector_codec", None) if fast else None
    if vec is not None:
        return [vec.encode_run(run, capacity) for run in runs]
    out: List[bytes] = []
    mapper = codec.mapper
    for run in runs:
        tuples = [mapper.phi_inverse(o) for o in run]
        out.append(codec.encode_block(tuples, capacity=capacity))
    return out


def _decode_payloads(
    codec: BlockCodec, payloads: Sequence[bytes]
) -> List[List[Tuple[int, ...]]]:
    """Decode each payload back to its phi-ordered tuples (worker body)."""
    return [codec.decode_block(p) for p in payloads]


def _decode_payload_ordinals(
    codec: BlockCodec, payloads: Sequence[bytes]
) -> List[List[int]]:
    """Decode each payload to phi ordinals only (worker body)."""
    return [codec.decode_ordinals(p) for p in payloads]


def _chunk_bounds(n: int, pieces: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``pieces`` contiguous chunks."""
    pieces = max(1, min(pieces, n))
    base, extra = divmod(n, pieces)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(pieces):
        end = start + base + (1 if i < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


class ParallelBlockCodec:
    """A block codec with a persistent worker pool attached.

    The pool is created lazily on the first parallel call and reused
    until :meth:`close` (or context-manager exit), so callers that
    encode in batches — :func:`repro.storage.extsort.bulk_load`, the
    benchmark harness — pay process start-up once, not per batch.

    With ``workers`` resolving to ``1`` every method runs inline and no
    pool is ever created; the instance is then a thin serial wrapper
    with identical results.
    """

    def __init__(
        self,
        codec: BlockCodec,
        *,
        workers: Optional[int] = None,
    ) -> None:
        self._codec = codec
        self._workers = resolve_workers(workers)
        self._fast = _use_fast_encoder(codec)
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def codec(self) -> BlockCodec:
        """The underlying (serial) block codec."""
        return self._codec

    @property
    def workers(self) -> int:
        """Resolved size of the worker pool (1 means serial)."""
        return self._workers

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------

    def _pool(self) -> Optional[ProcessPoolExecutor]:
        """The worker pool, created on first use; ``None`` if unavailable.

        Pool creation can fail on hosts that forbid ``fork``/``spawn``
        (locked-down containers); in that case the codec degrades to the
        serial path permanently rather than erroring the whole load.
        """
        if self._workers <= 1:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self._workers)
            except OSError:
                self._workers = 1
                return None
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelBlockCodec":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Coding
    # ------------------------------------------------------------------

    def encode_blocks(
        self,
        runs: Sequence[Sequence[int]],
        *,
        capacity: Optional[int] = None,
    ) -> List[bytes]:
        """Encode phi-ordered ordinal runs into block payloads, in order.

        Each run must be ascending (the packer produces such runs); the
        result list is index-aligned with ``runs``.  ``capacity`` bounds
        every payload, raising
        :class:`~repro.errors.BlockOverflowError` exactly as the serial
        codec would.
        """
        for run in runs:
            if not run:
                raise CodecError("cannot encode an empty run")
        with _obs.span(
            "parallel.encode_blocks",
            runs=len(runs),
            workers=self._workers,
            vectorized=self._fast,
        ):
            out = self._encode_batch(runs, capacity)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("parallel.encode_batches")
            reg.inc("parallel.runs_encoded", len(runs))
        return out

    def _encode_batch(
        self, runs: Sequence[Sequence[int]], capacity: Optional[int]
    ) -> List[bytes]:
        """Encode one validated batch, serial or fanned out."""
        if len(runs) < SERIAL_THRESHOLD:
            return _encode_runs(self._codec, runs, capacity, self._fast)
        pool = self._pool()
        if pool is None:
            return _encode_runs(self._codec, runs, capacity, self._fast)
        futures: List["Future[List[bytes]]"] = []
        for start, end in _chunk_bounds(
            len(runs), self._workers * _CHUNKS_PER_WORKER
        ):
            futures.append(
                pool.submit(
                    _encode_runs,
                    self._codec,
                    list(runs[start:end]),
                    capacity,
                    self._fast,
                )
            )
        out: List[bytes] = []
        for future in futures:
            out.extend(future.result())
        return out

    def decode_blocks(
        self, payloads: Sequence[bytes]
    ) -> List[List[Tuple[int, ...]]]:
        """Decode block payloads back to tuples, index-aligned with input."""
        with _obs.span(
            "parallel.decode_blocks",
            payloads=len(payloads),
            workers=self._workers,
            vectorized=self._fast,
        ):
            out = self._decode_batch(payloads)
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("parallel.decode_batches")
            reg.inc("parallel.payloads_decoded", len(payloads))
        return out

    def _decode_batch(
        self, payloads: Sequence[bytes]
    ) -> List[List[Tuple[int, ...]]]:
        """Decode one batch to tuples, serial or fanned out."""
        if len(payloads) < SERIAL_THRESHOLD:
            return _decode_payloads(self._codec, payloads)
        pool = self._pool()
        if pool is None:
            return _decode_payloads(self._codec, payloads)
        futures: List["Future[List[List[Tuple[int, ...]]]]"] = []
        for start, end in _chunk_bounds(
            len(payloads), self._workers * _CHUNKS_PER_WORKER
        ):
            futures.append(
                pool.submit(
                    _decode_payloads, self._codec, list(payloads[start:end])
                )
            )
        out: List[List[Tuple[int, ...]]] = []
        for future in futures:
            out.extend(future.result())
        return out

    def decode_ordinal_blocks(
        self, payloads: Sequence[bytes]
    ) -> List[List[int]]:
        """Decode block payloads to phi ordinals only (no tuple expansion)."""
        with _obs.span(
            "parallel.decode_ordinal_blocks",
            payloads=len(payloads),
            workers=self._workers,
            vectorized=self._fast,
        ):
            return self._decode_ordinal_batch(payloads)

    def _decode_ordinal_batch(
        self, payloads: Sequence[bytes]
    ) -> List[List[int]]:
        """Decode one batch to ordinals, serial or fanned out."""
        if len(payloads) < SERIAL_THRESHOLD:
            return _decode_payload_ordinals(self._codec, payloads)
        pool = self._pool()
        if pool is None:
            return _decode_payload_ordinals(self._codec, payloads)
        futures: List["Future[List[List[int]]]"] = []
        for start, end in _chunk_bounds(
            len(payloads), self._workers * _CHUNKS_PER_WORKER
        ):
            futures.append(
                pool.submit(
                    _decode_payload_ordinals,
                    self._codec,
                    list(payloads[start:end]),
                )
            )
        out: List[List[int]] = []
        for future in futures:
            out.extend(future.result())
        return out


def encode_blocks(
    codec: BlockCodec,
    runs: Sequence[Sequence[int]],
    *,
    workers: Optional[int] = None,
    capacity: Optional[int] = None,
) -> List[bytes]:
    """One-shot parallel encode of phi-ordered runs (see the class form).

    Spawns a pool for the call and tears it down afterwards; callers
    encoding repeatedly should hold a :class:`ParallelBlockCodec`.
    """
    with ParallelBlockCodec(codec, workers=workers) as pcodec:
        return pcodec.encode_blocks(runs, capacity=capacity)


def decode_blocks(
    codec: BlockCodec,
    payloads: Sequence[bytes],
    *,
    workers: Optional[int] = None,
) -> List[List[Tuple[int, ...]]]:
    """One-shot parallel decode of block payloads back to tuples."""
    with ParallelBlockCodec(codec, workers=workers) as pcodec:
        return pcodec.decode_blocks(payloads)


def decode_ordinal_blocks(
    codec: BlockCodec,
    payloads: Sequence[bytes],
    *,
    workers: Optional[int] = None,
) -> List[List[int]]:
    """One-shot parallel decode of block payloads to phi ordinals."""
    with ParallelBlockCodec(codec, workers=workers) as pcodec:
        return pcodec.decode_ordinal_blocks(payloads)
