"""The vectorised numpy block codec: whole-block AVQ coding as array ops.

:mod:`repro.core.fastpack` proved the approach for the *encode* half of
the Section 3.4 pipeline (gap sizing, packing, RLE rendering); this
module completes it into a full codec.  A
:class:`VectorizedBlockCodec` runs every stage of the block pipeline —
batch mixed-radix ``phi``/``phi⁻¹`` over ``(u, n)`` tuple arrays,
median-representative selection, difference chaining, and
leading-zero-byte RLE rendering *and parsing* — as numpy array ops over
a whole block, plus many-blocks-at-once entry points
(:meth:`~VectorizedBlockCodec.encode_runs`,
:meth:`~VectorizedBlockCodec.decode_blocks`) that compose with the
:class:`~repro.core.parallel.ParallelBlockCodec` worker fan-out.

Every byte it emits is **identical** to the scalar
:class:`~repro.core.codec.BlockCodec` (the differential suite in
``tests/core/test_vectorized_differential.py`` proves this across
random schemas), and every payload it accepts decodes to exactly the
tuples the scalar decoder would produce — or raises the same error
class where the scalar decoder would raise.

The decoder's interesting problem is that RLE entries have
*data-dependent* lengths (``1 + m - count`` bytes), so entry offsets
form a chain that looks inherently sequential.  It is vectorised here
with pointer doubling (parallel list ranking): one array op computes
"offset after the next entry" for *every* byte position at once, and
``log2(u)`` squarings of that jump table enumerate all ``u - 1`` entry
offsets without a per-entry Python loop.

Eligibility follows the established ``fastpack`` fallback rule: the
ordinal space must fit comfortably in ``int64`` and the codec must be
the paper's default configuration (chained differences, median
representative).  Decoding additionally requires that no corrupt byte
pattern can overflow ``int64`` during difference reassembly (checked
exactly, in Python integers, at construction); schemas outside these
bounds transparently keep the exact scalar path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

from repro.core.codec import HEADER_BYTES, MAX_TUPLES_PER_BLOCK
from repro.core.fastpack import FastBlockEncoder, FastGapSizer
from repro.core.phi import OrdinalMapper
from repro.core.runlength import TupleLayout
from repro.errors import BlockOverflowError, CodecError, DomainError

if TYPE_CHECKING:  # circular at type level only
    from repro.core.codec import BlockCodec

__all__ = ["VectorizedBlockCodec", "vectorized_codec_for"]


class VectorizedBlockCodec:
    """Array-at-a-time implementation of the full AVQ block codec.

    Parameters
    ----------
    domain_sizes:
        The ``|A_i|`` attribute domain sizes, exactly as for
        :class:`~repro.core.codec.BlockCodec`.  Raises
        :class:`~repro.errors.DomainError` when the ordinal space does
        not fit int64 — callers are expected to fall back to the scalar
        codec (use :func:`vectorized_codec_for` for that chooser).

    Examples
    --------
    >>> v = VectorizedBlockCodec([8, 16, 64, 64, 64])
    >>> run = np.array([11, 99, 100, 2345, 80000], dtype=np.int64)
    >>> list(v.decode_ordinals_array(v.encode_run(run))) == list(run)
    True
    """

    def __init__(self, domain_sizes: Sequence[int]) -> None:
        self._mapper = OrdinalMapper(domain_sizes)
        if not self._mapper.fits_int64:
            raise DomainError(
                "ordinal space exceeds int64; use the exact scalar codec"
            )
        self._layout = TupleLayout(domain_sizes)
        self._sizer = FastGapSizer(domain_sizes)
        self._encoder = FastBlockEncoder(domain_sizes)
        # Decode-side byte weights: output byte column -> its multiplier
        # in the mixed-radix value (field phi weight times the byte's
        # power of 256 inside the field).  A fixed-width rendering r
        # then satisfies  value == r @ byte_weights.
        mults: List[int] = []
        for weight, width in zip(
            self._mapper.weights, self._layout.field_widths
        ):
            for b in range(width):
                mults.append(weight * (256 ** (width - 1 - b)))
        # Corrupt payloads can carry arbitrary bytes, so the reassembly
        # r @ byte_weights must be overflow-free for *any* uint8 matrix,
        # not just valid renderings.  The exact worst case (all bytes
        # 0xFF) is computed in Python integers; when it does not fit a
        # signed 64-bit value the vectorised decoder cannot distinguish
        # a wrapped product from a genuine ordinal and decoding must
        # stay scalar (the scalar path uses unbounded Python ints).
        worst = sum(255 * m for m in mults)
        self._decode_safe = worst < (1 << 63)
        self._byte_weights = np.asarray(mults, dtype=np.int64)
        self._np_weights = np.asarray(self._mapper.weights, dtype=np.int64)
        self._np_sizes = np.asarray(self._mapper.domain_sizes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mapper(self) -> OrdinalMapper:
        """The exact phi bijection for these domains."""
        return self._mapper

    @property
    def layout(self) -> TupleLayout:
        """Fixed-width byte layout of one tuple."""
        return self._layout

    @property
    def tuple_bytes(self) -> int:
        """``m`` — byte width of one uncompressed tuple."""
        return self._layout.tuple_bytes

    @property
    def decode_supported(self) -> bool:
        """Whether vectorised decoding is overflow-safe for this schema.

        Encoding is always available once construction succeeds; see the
        constructor notes for why very large ordinal spaces must decode
        through the scalar path.
        """
        return self._decode_safe

    # ------------------------------------------------------------------
    # Batch phi / phi inverse
    # ------------------------------------------------------------------

    def phi_rows(self, rows: np.ndarray) -> np.ndarray:
        """Batch Equation 2.2 over a ``(u, n)`` int array, validated.

        Raises :class:`~repro.errors.DomainError` on shape mismatch or
        out-of-domain values, mirroring ``OrdinalMapper.phi`` row-wise.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != self._mapper.arity:
            raise DomainError(
                f"expected shape (u, {self._mapper.arity}), got {rows.shape}"
            )
        if rows.size and ((rows < 0).any() or (rows >= self._np_sizes).any()):
            raise DomainError("array contains out-of-domain attribute values")
        return rows @ self._np_weights

    def phi_inverse_rows(self, ordinals: np.ndarray) -> np.ndarray:
        """Batch Equations 2.3–2.5: ordinals back to a ``(u, n)`` array."""
        ordinals = np.asarray(ordinals, dtype=np.int64)
        if ordinals.size and (
            ordinals.min() < 0 or ordinals.max() >= self._mapper.space_size
        ):
            raise DomainError("array contains out-of-space ordinals")
        out = np.empty(
            (ordinals.shape[0], self._mapper.arity), dtype=np.int64
        )
        remainder = ordinals
        for i, w in enumerate(self._mapper.weights):
            out[:, i], remainder = np.divmod(remainder, w)
        return out

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def encoded_size_of_run(
        self, sorted_ordinals: Union[np.ndarray, Sequence[int]]
    ) -> int:
        """Exact encoded byte size of one ascending run, no bytes built.

        Agrees with ``BlockCodec.encoded_size_of_ordinals`` (and with
        ``len(encode_run(...))``) for every run — property-tested in
        ``tests/core/test_phi.py``.
        """
        run = np.asarray(sorted_ordinals, dtype=np.int64)
        if run.size == 0:
            raise CodecError("cannot size an empty block")
        base = HEADER_BYTES + self._layout.tuple_bytes
        if run.size == 1:
            return base
        return base + int(self._sizer.rle_costs(np.diff(run)).sum())

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode_run(
        self,
        sorted_ordinals: Union[np.ndarray, Sequence[int]],
        capacity: Optional[int] = None,
    ) -> bytes:
        """Encode one ascending phi-ordinal run into a block payload.

        Byte-identical to ``BlockCodec.encode_block`` over the same
        tuples (chained differences, median representative).
        """
        run = np.asarray(sorted_ordinals, dtype=np.int64)
        u = int(run.size)
        if u == 0:
            raise CodecError("cannot encode an empty block")
        if u > MAX_TUPLES_PER_BLOCK:
            raise CodecError(
                f"block holds {u} tuples; the 2-byte count field allows at "
                f"most {MAX_TUPLES_PER_BLOCK}"
            )
        payload = self._encoder.encode_run(run)
        if capacity is not None and len(payload) > capacity:
            raise BlockOverflowError(
                f"{u} tuples encode to more than {capacity} bytes"
            )
        return payload

    def encode_runs(
        self,
        runs: Sequence[Union[np.ndarray, Sequence[int]]],
        capacity: Optional[int] = None,
    ) -> List[bytes]:
        """Encode many ascending runs — the batch entry point.

        Index-aligned with ``runs``; composes with the
        :class:`~repro.core.parallel.ParallelBlockCodec` chunk fan-out
        (each worker calls this over its chunk).
        """
        return [self.encode_run(run, capacity) for run in runs]

    def encode_tuples(
        self,
        rows: np.ndarray,
        capacity: Optional[int] = None,
    ) -> bytes:
        """Encode a ``(u, n)`` tuple array: batch phi, sort, encode.

        The array analogue of ``BlockCodec.encode_block`` — rows need
        not be pre-sorted.
        """
        ordinals = self.phi_rows(rows)
        ordinals.sort()
        return self.encode_run(ordinals, capacity)

    def try_encode_block(
        self,
        tuples: Sequence[Sequence[int]],
        capacity: Optional[int] = None,
    ) -> Optional[bytes]:
        """Encode python tuples, or ``None`` when the scalar path must run.

        The :class:`~repro.core.codec.BlockCodec` delegation hook: a
        clean rectangular in-domain input encodes here (byte-identical
        to the scalar encoder); anything that would make the scalar
        encoder raise its precise per-tuple ``DomainError`` — ragged
        rows, out-of-domain values, non-integers — returns ``None`` so
        the caller re-runs the scalar path and surfaces the exact error.
        :class:`~repro.errors.BlockOverflowError` (a property of the
        *encoding*, not the input) propagates normally.
        """
        try:
            rows = np.asarray(tuples, dtype=np.int64)
            ordinals = self.phi_rows(rows)
        except (DomainError, ValueError, TypeError, OverflowError):
            return None
        ordinals.sort()
        return self.encode_run(ordinals, capacity)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_ordinals_array(self, data: bytes) -> np.ndarray:
        """Decode one payload to its ascending phi ordinals (int64 array)."""
        u, rep, rep_ordinal, diffs = self._parse_payload(data)
        space = self._mapper.space_size
        out = np.empty(u, dtype=np.int64)
        out[rep] = rep_ordinal
        if u > 1:
            # Any difference >= ||R|| must fail: on the after side the
            # running ordinal can only grow past the space; on the
            # before side it can only go negative.  Rejecting up front
            # (the scalar decoder rejects at the range check below)
            # also caps every chained step below 2**61, which makes the
            # int64 cumulative sums provably wrap-free whenever all
            # intermediate ordinals pass the final range check.
            if int(diffs.max()) >= space:
                raise CodecError(
                    "corrupt block: reconstructed ordinal outside tuple space"
                )
            before = diffs[:rep]
            after = diffs[rep:]
            if before.size:
                # o_i = o_rep - (d_i + ... + d_{rep-1}): reversed cumsum
                out[:rep] = rep_ordinal - np.cumsum(before[::-1])[::-1]
            if after.size:
                out[rep + 1 :] = rep_ordinal + np.cumsum(after)
            if int(out.min()) < 0 or int(out.max()) >= space:
                raise CodecError(
                    "corrupt block: reconstructed ordinal outside tuple space"
                )
        return out

    def decode_tuples_array(self, data: bytes) -> np.ndarray:
        """Decode one payload to its ``(u, n)`` tuple array, phi-ordered."""
        return self.phi_inverse_rows(self.decode_ordinals_array(data))

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        """Decode one payload to tuples — drop-in for the scalar decoder."""
        rows = self.decode_tuples_array(data)
        return [tuple(r) for r in rows.tolist()]

    def decode_ordinals(self, data: bytes) -> List[int]:
        """Decode one payload to a plain list of phi ordinals."""
        out: List[int] = self.decode_ordinals_array(data).tolist()
        return out

    def decode_blocks(
        self, payloads: Sequence[bytes]
    ) -> List[List[Tuple[int, ...]]]:
        """Decode many payloads — the batch entry point (index-aligned)."""
        return [self.decode_block(p) for p in payloads]

    # ------------------------------------------------------------------
    # Payload parsing (the vectorised half the scalar codec lacked)
    # ------------------------------------------------------------------

    def _parse_payload(
        self, data: bytes
    ) -> Tuple[int, int, int, np.ndarray]:
        """Parse header, representative, and all RLE differences.

        Returns ``(u, rep_index, rep_ordinal, diffs)`` where ``diffs``
        holds the ``u - 1`` stored difference values in stream order.
        Raises exactly where the scalar decoder raises: CodecError for
        structural damage, DomainError for an out-of-domain
        representative.
        """
        if not self._decode_safe:
            raise CodecError(
                "vectorised decode unsupported for this schema (digit "
                "reassembly could overflow int64); use the scalar decoder"
            )
        m = self._layout.tuple_bytes
        if len(data) < HEADER_BYTES:
            # The scalar decoder reads the count and representative as
            # two 2-byte reads; report the same shortfall it would.
            short = len(data) if len(data) < 2 else len(data) - 2
            raise CodecError(
                f"stream truncated: wanted 2 bytes, only {short} remain"
            )
        u = int.from_bytes(data[0:2], "big")
        if u == 0:
            raise CodecError("corrupt block: zero tuple count")
        rep = int.from_bytes(data[2:4], "big")
        if rep >= u:
            raise CodecError(
                f"corrupt block: representative {rep} >= count {u}"
            )
        if len(data) < HEADER_BYTES + m:
            raise CodecError(
                f"stream truncated: wanted {m} bytes, only "
                f"{len(data) - HEADER_BYTES} remain"
            )
        # One tuple: scalar-validated exactly like the scalar decoder
        # (phi raises DomainError on an out-of-domain representative).
        rep_tuple = self._layout.tuple_from_bytes(
            data[HEADER_BYTES : HEADER_BYTES + m]
        )
        rep_ordinal = self._mapper.phi(rep_tuple)
        k = u - 1
        if k == 0:
            return u, rep, rep_ordinal, np.empty(0, dtype=np.int64)

        base = HEADER_BYTES + m
        # Entries are at most 1 + m bytes each; slicing the body to that
        # bound keeps tiny blocks with large trailing slack cheap.
        limit = min(len(data), base + k * (1 + m))
        body = np.frombuffer(data, dtype=np.uint8, count=limit - base, offset=base)
        nbody = int(body.size)
        if nbody == 0:
            raise CodecError("stream truncated: wanted 1 bytes, only 0 remain")
        offsets = self._entry_offsets(body, k, m)
        counts = body[offsets].astype(np.int64)
        if int(counts.max()) > m:
            raise CodecError(
                f"corrupt block: run length {int(counts.max())} > "
                f"tuple width {m}"
            )
        tail_len = m - counts
        last_end = int(offsets[-1]) + 1 + int(tail_len[-1])
        if last_end > nbody:
            raise CodecError(
                f"stream truncated: wanted {int(tail_len[-1])} bytes, only "
                f"{nbody - int(offsets[-1]) - 1} remain"
            )
        diffs = self._gather_diffs(body, offsets, counts, tail_len, k, m)
        return u, rep, rep_ordinal, diffs

    def _entry_offsets(
        self, body: np.ndarray, k: int, m: int
    ) -> np.ndarray:
        """Offsets of all ``k`` RLE entries inside ``body``, vectorised.

        Entry lengths are data-dependent (``1 + m - count``), so the
        offset chain is ranked by pointer doubling: ``jump[p]`` holds
        the offset one entry past ``p`` (clamped to the absorbing
        sentinel ``len(body)``), and squaring the table ``log2(k)``
        times enumerates the whole chain with no per-entry Python loop.
        A truncated stream walks into the sentinel and is rejected; a
        corrupt count (> m) is stepped over minimally here and rejected
        by the caller's count check.
        """
        nbody = int(body.size)
        step = 1 + m - body.astype(np.int64)
        np.maximum(step, 1, out=step)  # corrupt counts: caller rejects
        jump = np.arange(nbody, dtype=np.int64) + step
        np.minimum(jump, nbody, out=jump)
        jump = np.append(jump, nbody)  # absorbing end sentinel
        offsets = np.empty(k, dtype=np.int64)
        offsets[0] = 0
        filled = 1
        while filled < k:
            take = min(filled, k - filled)
            # jump currently advances `filled` entries in one hop
            offsets[filled : filled + take] = jump[offsets[:take]]
            filled += take
            if filled < k:
                jump = jump[jump]  # double the hop length
        if int(offsets[-1]) >= nbody:
            raise CodecError(
                "stream truncated: wanted 1 bytes, only 0 remain"
            )
        return offsets

    def _gather_diffs(
        self,
        body: np.ndarray,
        offsets: np.ndarray,
        counts: np.ndarray,
        tail_len: np.ndarray,
        k: int,
        m: int,
    ) -> np.ndarray:
        """Reassemble difference values from the RLE tails, vectorised.

        Scatters every tail byte into a right-aligned ``(k, m)`` uint8
        matrix (leading zeros implicit) and contracts it against the
        per-column byte weights — the exact inverse of
        ``FastBlockEncoder``'s rendering.
        """
        matrix = np.zeros((k, m), dtype=np.uint8)
        total_tail = int(tail_len.sum())
        if total_tail:
            row_idx = np.repeat(np.arange(k), tail_len)
            starts = np.concatenate(
                [[0], np.cumsum(tail_len)[:-1]]
            ).astype(np.int64)
            seq = np.arange(total_tail, dtype=np.int64) - np.repeat(
                starts, tail_len
            )
            col_idx = np.repeat(counts, tail_len) + seq
            src = np.repeat(offsets + 1, tail_len) + seq
            matrix[row_idx, col_idx] = body[src]
        # Overflow-free by the constructor's worst-case bound (all-0xFF
        # bytes still fit int64), so wrapped products cannot masquerade
        # as in-space ordinals.
        return matrix.astype(np.int64) @ self._byte_weights


def vectorized_codec_for(
    codec: "BlockCodec",
) -> Optional[VectorizedBlockCodec]:
    """The chooser: a vectorised companion for ``codec``, or ``None``.

    Eligibility is the established ``fastpack`` fallback rule — the
    paper's default configuration (chained differences, median
    representative) over an ordinal space that fits safely in int64.
    Anything else (ablation strategies, un-chained differencing, wide
    schemas) keeps the exact scalar path.
    """
    if not (
        codec.chained
        and codec.representative_strategy == "median"
        and codec.mapper.fits_int64
    ):
        return None
    try:
        return VectorizedBlockCodec(codec.mapper.domain_sizes)
    except DomainError:  # pragma: no cover - fits_int64 already screened
        return None
