"""The AVQ block codec: the full Section 3.4 coding pipeline.

A block of tuples is coded in four stages, exactly following the paper:

1. **Order** — tuples are sorted by their ``phi`` ordinal (Section 3.2).
2. **Difference** — the middle tuple becomes the block's *representative*;
   every other tuple is replaced by an ordinal difference (Definition 2.1,
   with the codeword omitted because the representative is stored in the
   block itself).
3. **Chain** — differences are reduced further by differencing each tuple
   against its neighbour toward the representative (Example 3.3), turning
   them into consecutive gaps.
4. **Run-length code** — each difference is rendered as a fixed-width tuple
   byte string whose leading zero bytes are replaced by a one-byte count
   (Section 3.4 / Figure 3.3 Table (d)).

The serialised block layout is::

    +----------------+------------------+----------------+------------------+
    | tuple count u  | rep index        | rep tuple      | u-1 RLE diffs    |
    | (2 bytes)      | (2 bytes)        | (m bytes, raw) | (count ‖ tail)*  |
    +----------------+------------------+----------------+------------------+

The paper stores no explicit count or representative position (its decoder
"repeats until all the differences are read" and the representative is
always the middle).  We add a four-byte header so that (a) blocks with
trailing slack decode unambiguously and (b) the ablation strategies that
move the representative remain decodable.  The overhead is 4 bytes per
8 KiB block — under 0.05 %.

Because chained differences are exactly the *consecutive gaps* between
phi-ordered tuples, the encoded size of a block is independent of where the
representative sits; :meth:`BlockCodec.encoded_size_of_ordinals` exploits
this to let the packer compute fill levels without materialising bytes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.phi import OrdinalMapper
from repro.core.representative import get_strategy
from repro.core.runlength import TupleLayout, rle_decode, rle_encode
from repro.core.stream import StreamReader, StreamWriter
from repro.errors import BlockOverflowError, CodecError, DomainError
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # imported lazily at runtime to break the cycle
    from repro.core.vectorized import VectorizedBlockCodec

__all__ = ["BlockCodec", "HEADER_BYTES"]

#: Bytes of block header: 2 for the tuple count, 2 for the representative index.
HEADER_BYTES = 4

#: Maximum tuples per block, bounded by the 2-byte count field.
MAX_TUPLES_PER_BLOCK = 0xFFFF


class BlockCodec:
    """Losslessly encode and decode blocks of tuples with AVQ.

    Parameters
    ----------
    domain_sizes:
        The ``|A_i|`` sizes of the relation's attribute domains (after the
        Section 3.1 domain mapping; all values are ordinals in these domains).
    chained:
        Apply the Example 3.3 chaining optimisation (the paper's default).
        Disable for the ablation benchmark only.
    representative:
        Name of the representative-selection strategy; ``"median"`` is the
        paper's choice.
    vectorized:
        Whether to run the numpy whole-block fast path
        (:mod:`repro.core.vectorized`).  ``None`` (the default)
        auto-selects it whenever it is byte-identical to the scalar
        path — chained differences, median representative, ordinal
        space within int64; ``False`` forces the exact scalar path
        everywhere (the knob docs/PERFORMANCE.md documents); ``True``
        demands the fast path and raises
        :class:`~repro.errors.DomainError` for ineligible
        configurations.

    Examples
    --------
    >>> codec = BlockCodec([8, 16, 64, 64, 64])
    >>> block = [(3, 8, 32, 25, 19), (3, 8, 32, 34, 12), (3, 8, 36, 39, 35),
    ...          (3, 9, 24, 32, 0), (3, 9, 26, 27, 37)]
    >>> data = codec.encode_block(block)
    >>> codec.decode_block(data) == sorted(block)
    True
    """

    def __init__(
        self,
        domain_sizes: Sequence[int],
        *,
        chained: bool = True,
        representative: str = "median",
        vectorized: Optional[bool] = None,
    ) -> None:
        self._mapper = OrdinalMapper(domain_sizes)
        self._layout = TupleLayout(domain_sizes)
        self._chained = chained
        self._strategy_name = representative
        self._strategy = get_strategy(representative)
        self._vector: Optional["VectorizedBlockCodec"] = None
        if vectorized is not False:
            # Runtime import: repro.core.vectorized imports this module
            # for the block-layout constants.
            from repro.core.vectorized import vectorized_codec_for

            self._vector = vectorized_codec_for(self)
            if vectorized is True and self._vector is None:
                raise DomainError(
                    "vectorized=True requires chained differences, the "
                    "median representative, and an ordinal space that "
                    "fits int64"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mapper(self) -> OrdinalMapper:
        """The phi bijection for this codec's domains."""
        return self._mapper

    @property
    def layout(self) -> TupleLayout:
        """Fixed-width byte layout of one tuple."""
        return self._layout

    @property
    def tuple_bytes(self) -> int:
        """``m`` — the byte width of one uncompressed tuple."""
        return self._layout.tuple_bytes

    @property
    def chained(self) -> bool:
        """Whether the Example 3.3 chaining optimisation is enabled."""
        return self._chained

    @property
    def representative_strategy(self) -> str:
        """Name of the representative-selection strategy in use."""
        return self._strategy_name

    @property
    def vectorized(self) -> bool:
        """Whether the numpy whole-block encode fast path is active."""
        return self._vector is not None

    @property
    def vector_codec(self) -> Optional["VectorizedBlockCodec"]:
        """The attached vectorised companion codec, or ``None``.

        Present exactly when :attr:`vectorized` is true.  Note the
        companion may still decline *decoding* for schemas whose corrupt
        payloads could overflow int64 digit reassembly — check its
        ``decode_supported`` before decoding through it directly (this
        class's decode methods do).
        """
        return self._vector

    # ------------------------------------------------------------------
    # Difference computation
    # ------------------------------------------------------------------

    def _differences(self, ordinals: Sequence[int], rep: int) -> List[int]:
        """Per-tuple stored differences, in block order, skipping ``rep``.

        With chaining each entry is the gap to the neighbour toward the
        representative; without it, the direct distance to the
        representative.  All entries are non-negative by construction.
        """
        diffs: List[int] = []
        for i in range(len(ordinals)):
            if i == rep:
                continue
            if self._chained:
                if i < rep:
                    diffs.append(ordinals[i + 1] - ordinals[i])
                else:
                    diffs.append(ordinals[i] - ordinals[i - 1])
            else:
                diffs.append(abs(ordinals[i] - ordinals[rep]))
        return diffs

    # ------------------------------------------------------------------
    # Size accounting (used by the packer, no bytes materialised)
    # ------------------------------------------------------------------

    def encoded_size_of_ordinals(self, sorted_ordinals: Sequence[int]) -> int:
        """Exact encoded size in bytes of a block holding these tuples.

        ``sorted_ordinals`` must be ascending.  With chaining enabled the
        result does not depend on the representative position (the stored
        differences are exactly the u-1 consecutive gaps); without chaining
        the configured strategy is applied.
        """
        u = len(sorted_ordinals)
        if u == 0:
            raise CodecError("cannot size an empty block")
        rep = self._strategy(sorted_ordinals)
        size = HEADER_BYTES + self._layout.tuple_bytes
        for diff in self._differences(sorted_ordinals, rep):
            size += self._rle_size(diff)
        return size

    def incremental_gap_cost(self, gap: int) -> int:
        """Bytes added to a chained block by appending a tuple ``gap`` past the last.

        Only meaningful for ``chained=True`` codecs, where block size is the
        header plus the representative plus one RLE-coded entry per gap.
        """
        if not self._chained:
            raise CodecError(
                "incremental sizing requires chained differencing"
            )
        return self._rle_size(gap)

    def _rle_size(self, diff: int) -> int:
        """Size of one RLE-coded difference: count byte plus non-zero tail."""
        raw = self._layout.tuple_to_bytes(self._mapper.phi_inverse(diff))
        zeros = 0
        for b in raw:
            if b:
                break
            zeros += 1
        return 1 + len(raw) - zeros

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode_block(
        self,
        tuples: Sequence[Sequence[int]],
        capacity: Optional[int] = None,
    ) -> bytes:
        """Encode a set of tuples into one AVQ block.

        The tuples need not be pre-sorted; the codec orders them by ``phi``
        (Section 3.2) before differencing.  When ``capacity`` is given, an
        encoding larger than it raises
        :class:`~repro.errors.BlockOverflowError`.
        """
        u = len(tuples)
        if u == 0:
            raise CodecError("cannot encode an empty block")
        if u > MAX_TUPLES_PER_BLOCK:
            raise CodecError(
                f"block holds {u} tuples; the 2-byte count field allows at "
                f"most {MAX_TUPLES_PER_BLOCK}"
            )
        reg = _obs.REGISTRY
        t0 = _obs.now_ms() if reg is not None else 0.0
        if self._vector is not None:
            # None here means the input needs the scalar path's precise
            # per-tuple validation errors; fall through to produce them.
            vec_payload = self._vector.try_encode_block(tuples, capacity)
            if vec_payload is not None:
                if reg is not None:
                    reg.inc("codec.blocks_encoded")
                    reg.inc("codec.tuples_encoded", u)
                    reg.inc("codec.bytes_encoded", len(vec_payload))
                    reg.inc("codec.vector_encodes")
                    reg.observe("codec.encode_ms", _obs.now_ms() - t0)
                return vec_payload
        ordinals = sorted(self._mapper.phi(t) for t in tuples)
        rep = self._strategy(ordinals)

        writer = StreamWriter(capacity)
        try:
            writer.write_uint(u, 2)
            writer.write_uint(rep, 2)
            writer.write(
                self._layout.tuple_to_bytes(self._mapper.phi_inverse(ordinals[rep]))
            )
            for diff in self._differences(ordinals, rep):
                writer.write(rle_encode(self._layout, self._mapper.phi_inverse(diff)))
        except BlockOverflowError:
            raise BlockOverflowError(
                f"{u} tuples encode to more than {capacity} bytes"
            )
        payload = writer.getvalue()
        if reg is not None:
            reg.inc("codec.blocks_encoded")
            reg.inc("codec.tuples_encoded", u)
            reg.inc("codec.bytes_encoded", len(payload))
            reg.inc("codec.scalar_encodes")
            reg.observe("codec.encode_ms", _obs.now_ms() - t0)
        return payload

    def encode_ordinals(
        self,
        sorted_ordinals: Sequence[int],
        capacity: Optional[int] = None,
    ) -> bytes:
        """Encode an *ascending* phi-ordinal run directly into one block.

        The no-tuple-expansion twin of :meth:`encode_block` for callers
        that already hold sorted ordinals (block mutation, repair,
        bulk load): on the vectorised path the ``phi_inverse`` →
        ``phi`` round trip is skipped entirely.  Byte-identical to
        ``encode_block`` over the same tuples; ``sorted_ordinals`` must
        be ascending and in ``[0, ||R||)``.
        """
        u = len(sorted_ordinals)
        if u == 0:
            raise CodecError("cannot encode an empty block")
        if u > MAX_TUPLES_PER_BLOCK:
            raise CodecError(
                f"block holds {u} tuples; the 2-byte count field allows at "
                f"most {MAX_TUPLES_PER_BLOCK}"
            )
        if self._vector is not None:
            reg = _obs.REGISTRY
            t0 = _obs.now_ms() if reg is not None else 0.0
            payload = self._vector.encode_run(sorted_ordinals, capacity)
            if reg is not None:
                reg.inc("codec.blocks_encoded")
                reg.inc("codec.tuples_encoded", u)
                reg.inc("codec.bytes_encoded", len(payload))
                reg.inc("codec.vector_encodes")
                reg.observe("codec.encode_ms", _obs.now_ms() - t0)
            return payload
        tuples = [self._mapper.phi_inverse(o) for o in sorted_ordinals]
        return self.encode_block(tuples, capacity=capacity)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        """Decode one AVQ block back into its phi-ordered tuples.

        The inverse of :meth:`encode_block`; Theorem 2.1 guarantees the
        original tuples are recovered exactly.  Trailing slack bytes beyond
        the encoded payload are ignored, matching on-disk blocks.
        """
        reg = _obs.REGISTRY
        t0 = _obs.now_ms() if reg is not None else 0.0
        if self._vector is not None and self._vector.decode_supported:
            tuples = self._vector.decode_block(data)
            if reg is not None:
                reg.inc("codec.blocks_decoded")
                reg.inc("codec.tuples_decoded", len(tuples))
                reg.inc("codec.vector_decodes")
                reg.observe("codec.decode_ms", _obs.now_ms() - t0)
            return tuples
        reader = StreamReader(data)
        u = reader.read_uint(2)
        if u == 0:
            raise CodecError("corrupt block: zero tuple count")
        rep = reader.read_uint(2)
        if rep >= u:
            raise CodecError(f"corrupt block: representative {rep} >= count {u}")
        m = self._layout.tuple_bytes
        rep_tuple = self._layout.tuple_from_bytes(reader.read(m))
        rep_ordinal = self._mapper.phi(rep_tuple)

        diffs: List[int] = []
        for _ in range(u - 1):
            count = reader.read_uint(1)
            if count > m:
                raise CodecError(f"corrupt block: run length {count} > tuple width {m}")
            tail = reader.read(m - count)
            diffs.append(
                self._mapper.phi_unchecked(rle_decode(self._layout, count, tail))
            )

        ordinals = self._reconstruct_ordinals(u, rep, rep_ordinal, diffs)
        tuples = [self._mapper.phi_inverse(o) for o in ordinals]
        if reg is not None:
            reg.inc("codec.blocks_decoded")
            reg.inc("codec.tuples_decoded", u)
            reg.inc("codec.scalar_decodes")
            reg.observe("codec.decode_ms", _obs.now_ms() - t0)
        return tuples

    def decode_ordinals(self, data: bytes) -> List[int]:
        """Like :meth:`decode_block` but stop at ordinals (no tuple expansion).

        Index probes only need phi values, so skipping the final
        ``phi_inverse`` saves most of the decode cost for those callers.
        """
        reg = _obs.REGISTRY
        t0 = _obs.now_ms() if reg is not None else 0.0
        if self._vector is not None and self._vector.decode_supported:
            vec_ordinals = self._vector.decode_ordinals(data)
            if reg is not None:
                reg.inc("codec.ordinal_decodes")
                reg.inc("codec.vector_decodes")
                reg.observe("codec.decode_ms", _obs.now_ms() - t0)
            return vec_ordinals
        reader = StreamReader(data)
        u = reader.read_uint(2)
        if u == 0:
            raise CodecError("corrupt block: zero tuple count")
        rep = reader.read_uint(2)
        if rep >= u:
            raise CodecError(f"corrupt block: representative {rep} >= count {u}")
        m = self._layout.tuple_bytes
        rep_tuple = self._layout.tuple_from_bytes(reader.read(m))
        rep_ordinal = self._mapper.phi(rep_tuple)
        diffs: List[int] = []
        for _ in range(u - 1):
            count = reader.read_uint(1)
            if count > m:
                raise CodecError(f"corrupt block: run length {count} > tuple width {m}")
            tail = reader.read(m - count)
            diffs.append(
                self._mapper.phi_unchecked(rle_decode(self._layout, count, tail))
            )
        ordinals = self._reconstruct_ordinals(u, rep, rep_ordinal, diffs)
        if reg is not None:
            reg.inc("codec.ordinal_decodes")
            reg.inc("codec.scalar_decodes")
            reg.observe("codec.decode_ms", _obs.now_ms() - t0)
        return ordinals

    def probe_block(self, data: bytes, target: int) -> bool:
        """Test whether a tuple with phi ordinal ``target`` is in the block.

        Walks the difference stream arithmetically — no per-tuple
        ``phi_inverse`` reconstruction — and exits as soon as the running
        ordinal passes the target.  This is the cheap point-probe path
        behind ``Table.contains``.
        """
        reader = StreamReader(data)
        u = reader.read_uint(2)
        if u == 0:
            raise CodecError("corrupt block: zero tuple count")
        rep = reader.read_uint(2)
        if rep >= u:
            raise CodecError(f"corrupt block: representative {rep} >= count {u}")
        m = self._layout.tuple_bytes
        rep_ordinal = self._mapper.phi(
            self._layout.tuple_from_bytes(reader.read(m))
        )
        if target == rep_ordinal:
            return True

        def read_diff() -> int:
            count = reader.read_uint(1)
            if count > m:
                raise CodecError(
                    f"corrupt block: run length {count} > tuple width {m}"
                )
            tail = reader.read(m - count)
            return self._mapper.phi_unchecked(
                rle_decode(self._layout, count, tail)
            )

        before = [read_diff() for _ in range(rep)]
        if target < rep_ordinal:
            if self._chained:
                # o_j = rep_ordinal - sum(d_j .. d_{rep-1}); walk upward
                ordinal = rep_ordinal - sum(before)
                if ordinal == target:
                    return True
                for d in before:
                    ordinal += d
                    if ordinal >= target:
                        return ordinal == target
                return False
            return any(rep_ordinal - d == target for d in before)

        # target > rep_ordinal: walk the after side, early exit
        ordinal = rep_ordinal
        for _ in range(u - 1 - rep):
            d = read_diff()
            if self._chained:
                ordinal += d
            else:
                ordinal = rep_ordinal + d
            if ordinal == target:
                return True
            if self._chained and ordinal > target:
                return False
        return False

    def _reconstruct_ordinals(
        self, u: int, rep: int, rep_ordinal: int, diffs: List[int]
    ) -> List[int]:
        """Rebuild the sorted ordinal sequence from the stored differences."""
        ordinals: List[Optional[int]] = [None] * u
        ordinals[rep] = rep_ordinal
        before = diffs[:rep]          # entries for positions 0 .. rep-1
        after = diffs[rep:]           # entries for positions rep+1 .. u-1
        if self._chained:
            for i in range(rep - 1, -1, -1):
                ordinals[i] = ordinals[i + 1] - before[i]
            for j, diff in enumerate(after):
                i = rep + 1 + j
                ordinals[i] = ordinals[i - 1] + diff
        else:
            for i in range(rep):
                ordinals[i] = rep_ordinal - before[i]
            for j, diff in enumerate(after):
                ordinals[rep + 1 + j] = rep_ordinal + diff
        result = [o for o in ordinals if o is not None]
        if len(result) != u:
            raise CodecError("corrupt block: reconstruction left gaps")
        for o in result:
            if not 0 <= o < self._mapper.space_size:
                raise CodecError(
                    f"corrupt block: reconstructed ordinal {o} outside tuple space"
                )
        return result
