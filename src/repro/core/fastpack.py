"""Vectorised gap sizing and block packing (numpy fast path).

The chained AVQ encoding of a phi-ordered run has a per-gap cost of
``1 + m - leading_zero_bytes(gap)`` bytes.  The leading-zero-byte count
is a step function of the gap value: the first ``p`` bytes of the
fixed-width rendering are zero exactly when the gap is below a
threshold ``T_p`` determined by the field layout (full leading fields
are zero when the gap is below that field's positional weight; within
the first non-zero field, high bytes are zero below the corresponding
power-of-256 multiple of the field weight).

Precomputing the ``m`` thresholds turns per-gap costing into one
``numpy.searchsorted`` — and greedy packing into a cumulative-sum walk —
giving orders-of-magnitude speedups for the compression experiments at
``10^5``-plus tuples.  Only valid when the ordinal space fits ``int64``;
callers fall back to the exact scalar path otherwise.  The fast results
are bit-identical to the scalar codec's (tested).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.codec import HEADER_BYTES
from repro.core.phi import OrdinalMapper
from repro.core.runlength import TupleLayout
from repro.errors import DomainError, StorageError

__all__ = [
    "FastBlockEncoder",
    "FastGapSizer",
    "fast_blocks_needed",
    "fast_encode_relation",
    "fast_pack_boundaries",
]


class FastGapSizer:
    """Vectorised ``leading_zero_bytes`` / RLE cost over gap arrays."""

    def __init__(self, domain_sizes: Sequence[int]) -> None:
        self._mapper = OrdinalMapper(domain_sizes)
        self._layout = TupleLayout(domain_sizes)
        if not self._mapper.fits_int64:
            raise DomainError(
                "ordinal space exceeds int64; use the exact scalar path"
            )
        self._thresholds = self._build_thresholds()

    @property
    def tuple_bytes(self) -> int:
        """``m`` — fixed byte width of one tuple."""
        return self._layout.tuple_bytes

    def _build_thresholds(self) -> np.ndarray:
        """``T_p`` for p = 1..m: gap < T_p  <=>  first p bytes are zero.

        Walking the byte layout most-significant first: after each byte of
        field ``i`` (with ``w_i`` bytes and positional weight ``weight_i``),
        the threshold is ``min(256**(bytes of field i still uncovered) *
        weight_i, capacity of fields i..n)``.
        """
        sizes = self._mapper.domain_sizes
        weights = self._mapper.weights
        widths = self._layout.field_widths
        thresholds: List[int] = []
        for i, (s, w, width) in enumerate(zip(sizes, weights, widths)):
            capacity = s * w  # all of fields i..n
            for covered in range(1, width + 1):
                t = min(256 ** (width - covered) * w, capacity)
                thresholds.append(t)
        # descending by construction; store ascending for searchsorted
        return np.asarray(thresholds[::-1], dtype=np.int64)

    def leading_zero_bytes(self, gaps: np.ndarray) -> np.ndarray:
        """Leading zero bytes of each gap's fixed-width rendering."""
        gaps = np.asarray(gaps, dtype=np.int64)
        if gaps.size and (gaps.min() < 0 or gaps.max() >= self._mapper.space_size):
            raise DomainError("gap outside the ordinal space")
        # zeros(gap) = number of thresholds strictly greater than gap
        return len(self._thresholds) - np.searchsorted(
            self._thresholds, gaps, side="right"
        )

    def rle_costs(self, gaps: np.ndarray) -> np.ndarray:
        """Per-gap encoded cost: count byte plus non-zero tail bytes."""
        return 1 + self.tuple_bytes - self.leading_zero_bytes(gaps)


def fast_pack_boundaries(
    sorted_ordinals: np.ndarray,
    domain_sizes: Sequence[int],
    block_size: int,
) -> List[Tuple[int, int]]:
    """Greedy maximal-fill block boundaries, identical to the exact packer.

    Returns ``[(start, end), ...]`` index ranges into ``sorted_ordinals``.
    Each block's size is ``HEADER_BYTES + m + sum(rle_costs of its gaps)``;
    the first tuple of a block contributes no gap (it re-anchors the run).
    """
    sizer = FastGapSizer(domain_sizes)
    m = sizer.tuple_bytes
    min_block = HEADER_BYTES + m
    if block_size < min_block:
        raise StorageError(
            f"block size {block_size} cannot hold even one tuple "
            f"(needs {min_block} bytes)"
        )
    ordinals = np.asarray(sorted_ordinals, dtype=np.int64)
    n = len(ordinals)
    if n == 0:
        return []
    if n > 1 and (np.diff(ordinals) < 0).any():
        raise StorageError("fast_pack_boundaries requires ascending ordinals")

    gap_costs = sizer.rle_costs(np.diff(ordinals)) if n > 1 else np.empty(0, np.int64)
    # cumulative cost of gaps: C[k] = sum of gap_costs[:k]
    cumulative = np.concatenate([[0], np.cumsum(gap_costs)])
    budget = block_size - min_block  # gap bytes allowed per block

    boundaries: List[Tuple[int, int]] = []
    start = 0
    while start < n:
        # find the largest end with cumulative[end-1] - cumulative[start]
        # <= budget, i.e. gaps start..end-2 fit
        limit = cumulative[start] + budget
        end = int(np.searchsorted(cumulative, limit, side="right"))
        # 'end' indexes cumulative; block covers tuples [start, end]
        end = max(start + 1, min(end, n))
        boundaries.append((start, end))
        start = end
    return boundaries


def fast_blocks_needed(
    sorted_ordinals: np.ndarray,
    domain_sizes: Sequence[int],
    block_size: int,
) -> int:
    """Block count only — the Figure 5.7 numerator, at numpy speed."""
    return len(fast_pack_boundaries(sorted_ordinals, domain_sizes, block_size))


class FastBlockEncoder:
    """Vectorised whole-relation encoding, byte-identical to the scalar
    :class:`~repro.core.codec.BlockCodec` (chained, median representative).

    The per-gap serialisation — mixed-radix digits, fixed-width fields,
    leading-zero elision — is computed for *all* gaps of a block in one
    shot on ``(num_gaps, m)`` uint8 matrices, then scattered into the
    output buffer with index arithmetic.  Tested byte-for-byte against
    the scalar encoder.
    """

    def __init__(self, domain_sizes: Sequence[int]) -> None:
        self._sizer = FastGapSizer(domain_sizes)
        self._mapper = self._sizer._mapper
        self._layout = self._sizer._layout
        # per output byte column: which attribute, which byte of its field
        self._col_weight: List[int] = []   # phi weight of the attribute
        self._col_size: List[int] = []     # attribute domain size
        self._col_shift: List[int] = []    # right-shift for this byte
        for size, weight, width in zip(
            self._mapper.domain_sizes,
            self._mapper.weights,
            self._layout.field_widths,
        ):
            for b in range(width):
                self._col_weight.append(weight)
                self._col_size.append(size)
                self._col_shift.append(8 * (width - 1 - b))

    @property
    def tuple_bytes(self) -> int:
        """``m`` — fixed byte width of one tuple."""
        return self._layout.tuple_bytes

    def _render_bytes(self, values: np.ndarray) -> np.ndarray:
        """``(n, m)`` uint8 matrix: fixed-width rendering of ordinals."""
        n = len(values)
        m = self._layout.tuple_bytes
        out = np.empty((n, m), dtype=np.uint8)
        for col in range(m):
            digit = (values // self._col_weight[col]) % self._col_size[col]
            out[:, col] = (digit >> self._col_shift[col]) & 0xFF
        return out

    def encode_run(self, run: np.ndarray) -> bytes:
        """Encode one phi-ordered run exactly as ``BlockCodec.encode_block``."""
        run = np.asarray(run, dtype=np.int64)
        u = len(run)
        if u == 0:
            raise StorageError("cannot encode an empty run")
        m = self._layout.tuple_bytes
        rep = (u - 1) // 2
        rep_bytes = self._render_bytes(run[rep : rep + 1])[0]

        if u == 1:
            header = u.to_bytes(2, "big") + rep.to_bytes(2, "big")
            return header + rep_bytes.tobytes()

        gaps = np.diff(run)
        zeros = self._sizer.leading_zero_bytes(gaps)
        tail_len = m - zeros
        matrix = self._render_bytes(gaps)

        entry_len = 1 + tail_len
        total = HEADER_BYTES + m + int(entry_len.sum())
        out = np.zeros(total, dtype=np.uint8)
        out[0] = (u >> 8) & 0xFF
        out[1] = u & 0xFF
        out[2] = (rep >> 8) & 0xFF
        out[3] = rep & 0xFF
        out[HEADER_BYTES : HEADER_BYTES + m] = rep_bytes

        base = HEADER_BYTES + m
        entry_off = base + np.concatenate(
            [[0], np.cumsum(entry_len)[:-1]]
        ).astype(np.int64)
        out[entry_off] = zeros.astype(np.uint8)

        total_tail = int(tail_len.sum())
        if total_tail:
            row_idx = np.repeat(np.arange(u - 1), tail_len)
            starts = np.concatenate([[0], np.cumsum(tail_len)[:-1]])
            seq = np.arange(total_tail) - np.repeat(starts, tail_len)
            col_idx = np.repeat(zeros, tail_len) + seq
            dest = np.repeat(entry_off + 1, tail_len) + seq
            out[dest] = matrix[row_idx, col_idx]
        return out.tobytes()


def fast_encode_relation(
    sorted_ordinals: np.ndarray,
    domain_sizes: Sequence[int],
    block_size: int,
) -> List[bytes]:
    """Pack and encode a whole phi-sorted relation, vectorised.

    Equivalent to packing with :func:`fast_pack_boundaries` and encoding
    each run with the scalar codec — and tested byte-identical to it —
    but an order of magnitude faster in Python terms.
    """
    boundaries = fast_pack_boundaries(sorted_ordinals, domain_sizes, block_size)
    encoder = FastBlockEncoder(domain_sizes)
    ordinals = np.asarray(sorted_ordinals, dtype=np.int64)
    return [encoder.encode_run(ordinals[s:e]) for s, e in boundaries]
