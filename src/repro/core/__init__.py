"""Core AVQ machinery: phi mapping, differencing, and the block codec.

This package implements the paper's primary contribution:

* :mod:`repro.core.phi` — the mixed-radix ordinal bijection (Eq. 2.2–2.5)
* :mod:`repro.core.difference` — the tuple difference measure (Eq. 2.6)
* :mod:`repro.core.runlength` — leading-zero run-length coding (Sec. 3.4)
* :mod:`repro.core.representative` — representative selection strategies
* :mod:`repro.core.codec` — the full block coding pipeline (Sec. 3.4)
* :mod:`repro.core.vectorized` — the numpy whole-block codec fast path
* :mod:`repro.core.quantizer` — the definitional quantizer ``Q_L`` (Def. 2.1)
"""

from repro.core.codec import BlockCodec
from repro.core.difference import (
    apply_difference,
    difference_tuple,
    ordinal_difference,
    tuple_difference,
)
from repro.core.fastpack import (
    FastGapSizer,
    fast_blocks_needed,
    fast_pack_boundaries,
)
from repro.core.golomb import GolombBlockCodec, choose_rice_parameter
from repro.core.parallel import (
    SERIAL_THRESHOLD,
    ParallelBlockCodec,
    decode_blocks,
    decode_ordinal_blocks,
    encode_blocks,
    resolve_workers,
)
from repro.core.phi import OrdinalMapper, phi_array, phi_inverse_array
from repro.core.quantizer import AVQCode, AVQQuantizer, build_codebook
from repro.core.representative import STRATEGIES, get_strategy
from repro.core.runlength import TupleLayout, rle_decode, rle_encode
from repro.core.vectorized import VectorizedBlockCodec, vectorized_codec_for

__all__ = [
    "BlockCodec",
    "OrdinalMapper",
    "phi_array",
    "phi_inverse_array",
    "TupleLayout",
    "rle_encode",
    "rle_decode",
    "AVQCode",
    "AVQQuantizer",
    "build_codebook",
    "STRATEGIES",
    "get_strategy",
    "tuple_difference",
    "ordinal_difference",
    "difference_tuple",
    "apply_difference",
    "FastGapSizer",
    "fast_blocks_needed",
    "fast_pack_boundaries",
    "GolombBlockCodec",
    "choose_rice_parameter",
    "SERIAL_THRESHOLD",
    "ParallelBlockCodec",
    "encode_blocks",
    "decode_blocks",
    "decode_ordinal_blocks",
    "resolve_workers",
    "VectorizedBlockCodec",
    "vectorized_codec_for",
]
