"""Leading-zero run-length coding of difference tuples (Section 3.4).

After differencing, a block's tuples mostly consist of leading zero bytes
followed by a short non-zero tail.  The paper replaces the run of leading
zeros with a one-byte count ``r`` and stores only the remaining ``m - r``
bytes, where ``m`` is the fixed byte width of a full tuple.

These functions operate on the *fixed-width byte rendering* of a tuple
(attribute fields laid out big-endian at their declared widths), which is
exactly the layout :class:`~repro.core.codec.BlockCodec` serialises.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.bitutils import (
    domain_byte_width,
    int_to_bytes_fixed,
    leading_zero_bytes,
)
from repro.errors import CodecError

__all__ = [
    "TupleLayout",
    "rle_decode",
    "rle_encode",
    "rle_encoded_size",
]


class TupleLayout:
    """Fixed-width byte layout of a tuple under given domain sizes.

    Each attribute ``i`` occupies ``ceil(beta[|A_i| - 1] / 8)`` bytes, so a
    whole tuple is a fixed ``m``-byte field.  The paper's running example
    uses one byte per attribute (all domains are at most 256); wider domains
    get multi-byte fields, generalising the scheme losslessly.

    ``min_field_bytes`` widens every field to at least that many bytes.
    The AVQ codec always uses the minimal layout (``1``); the *uncoded*
    baseline uses ``2`` to model the natural int16-style columns of the
    era's storage (the paper's Section 5.2 relation is 38 bytes for 16
    attributes — about 2.4 bytes per attribute — which only a natural-width
    layout explains; see DESIGN.md).
    """

    __slots__ = ("_widths", "_tuple_bytes")

    def __init__(
        self, domain_sizes: Sequence[int], *, min_field_bytes: int = 1
    ) -> None:
        if min_field_bytes < 1:
            raise CodecError(
                f"min_field_bytes must be >= 1, got {min_field_bytes}"
            )
        self._widths = tuple(
            max(domain_byte_width(s), min_field_bytes) for s in domain_sizes
        )
        self._tuple_bytes = sum(self._widths)
        if self._tuple_bytes > 255:
            # The run-length count is a single byte; the run can be at most
            # the full tuple, so m must fit in that byte.
            raise CodecError(
                f"tuple width {self._tuple_bytes} bytes exceeds the 255-byte "
                "limit imposed by the one-byte run-length count field"
            )

    @property
    def field_widths(self) -> Tuple[int, ...]:
        """Per-attribute byte widths."""
        return self._widths

    @property
    def tuple_bytes(self) -> int:
        """``m`` — total bytes of one fixed-width tuple."""
        return self._tuple_bytes

    def tuple_to_bytes(self, values: Sequence[int]) -> bytes:
        """Render a tuple as its fixed-width big-endian byte string."""
        if len(values) != len(self._widths):
            raise CodecError(
                f"tuple has {len(values)} attributes, layout expects "
                f"{len(self._widths)}"
            )
        return b"".join(
            int_to_bytes_fixed(v, w) for v, w in zip(values, self._widths)
        )

    def tuple_from_bytes(self, data: bytes) -> Tuple[int, ...]:
        """Parse a fixed-width byte string back into a tuple."""
        if len(data) != self._tuple_bytes:
            raise CodecError(
                f"expected {self._tuple_bytes} bytes, got {len(data)}"
            )
        out = []
        pos = 0
        for w in self._widths:
            out.append(int.from_bytes(data[pos : pos + w], "big"))
            pos += w
        return tuple(out)


def rle_encode(layout: TupleLayout, values: Sequence[int]) -> bytes:
    """Encode one difference tuple as ``count ‖ tail`` (Section 3.4).

    The count byte holds the number of leading zero bytes ``r``; the tail is
    the remaining ``m - r`` bytes.  An all-zero tuple encodes as the single
    byte ``m`` with an empty tail.
    """
    raw = layout.tuple_to_bytes(values)
    r = leading_zero_bytes(raw)
    return bytes([r]) + raw[r:]


def rle_decode(layout: TupleLayout, count: int, tail: bytes) -> Tuple[int, ...]:
    """Decode a ``count ‖ tail`` pair back into the original tuple."""
    m = layout.tuple_bytes
    if not 0 <= count <= m:
        raise CodecError(f"run-length count {count} outside [0, {m}]")
    if len(tail) != m - count:
        raise CodecError(
            f"tail has {len(tail)} bytes, expected {m - count} for count {count}"
        )
    return layout.tuple_from_bytes(bytes(count) + tail)


def rle_encoded_size(layout: TupleLayout, values: Sequence[int]) -> int:
    """Size in bytes of :func:`rle_encode`'s output, without materialising it."""
    raw = layout.tuple_to_bytes(values)
    return 1 + layout.tuple_bytes - leading_zero_bytes(raw)
