"""The AVQ quantizer ``Q_L`` of Definition 2.1, with an explicit codebook.

The block codec (:mod:`repro.core.codec`) is the *implementation* form of
AVQ, where the codeword is implicit because each block carries its own
representative.  This module implements the *definitional* form: an
explicit codebook of representative tuples and a lossless mapping

    ``Q_L(t) = (C(t), d(t, Q(t)))``

where ``C(t)`` is the index of the nearest representative and the second
component is the ordinal difference of Equation 2.6.  It exists both to
make Theorem 2.1 directly testable and to contrast AVQ with the
conventional lossy quantizer in :mod:`repro.vq`.

Codebook construction is the paper's "constant time" scheme: after
phi-ordering the input, representatives are the medians of equal-size
partitions — no Linde-Buzo-Gray iteration is required (Section 2.1's
closing remarks).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.phi import OrdinalMapper
from repro.errors import CodecError

__all__ = ["AVQCode", "AVQQuantizer", "build_codebook"]


@dataclass(frozen=True)
class AVQCode:
    """One losslessly quantized tuple: ``(codeword, difference, before)``.

    ``before`` records which branch of Equation 2.6 applied, i.e. whether
    the original tuple precedes its representative in phi order.  (The paper
    recovers this from block position; in codebook form it must be explicit.)
    """

    codeword: int
    difference: int
    before: bool


def build_codebook(
    mapper: OrdinalMapper,
    tuples: Sequence[Sequence[int]],
    num_codes: int,
) -> List[Tuple[int, ...]]:
    """Build an AVQ codebook of ``num_codes`` representatives.

    The input tuples are phi-ordered and split into ``num_codes``
    contiguous cells; the median of each cell is its representative.  This
    is a single pass over sorted data — the constant-time (per cell)
    construction the paper contrasts with iterative LBG refinement.
    """
    if num_codes < 1:
        raise CodecError(f"codebook needs at least one code, got {num_codes}")
    if not tuples:
        raise CodecError("cannot build a codebook from an empty input set")
    ordinals = sorted(mapper.phi(t) for t in tuples)
    n = len(ordinals)
    num_codes = min(num_codes, n)
    codebook: List[Tuple[int, ...]] = []
    for c in range(num_codes):
        lo = c * n // num_codes
        hi = (c + 1) * n // num_codes
        cell = ordinals[lo:hi]
        codebook.append(mapper.phi_inverse(cell[(len(cell) - 1) // 2]))
    return codebook


class AVQQuantizer:
    """Lossless quantizer over an explicit codebook (Definition 2.1).

    Examples
    --------
    >>> m = OrdinalMapper([8, 16, 64])
    >>> q = AVQQuantizer(m, [(1, 0, 0), (6, 8, 32)])
    >>> code = q.encode((6, 9, 0))
    >>> q.decode(code)
    (6, 9, 0)
    """

    def __init__(
        self, mapper: OrdinalMapper, codebook: Sequence[Sequence[int]]
    ) -> None:
        if not codebook:
            raise CodecError("codebook must contain at least one representative")
        self._mapper = mapper
        self._codebook = [tuple(c) for c in codebook]
        decorated = sorted(
            (mapper.phi(c), i) for i, c in enumerate(self._codebook)
        )
        self._sorted_ordinals = [d[0] for d in decorated]
        self._sorted_codewords = [d[1] for d in decorated]
        self._code_ordinals = [mapper.phi(c) for c in self._codebook]

    @property
    def codebook(self) -> List[Tuple[int, ...]]:
        """The output-vector set ``Y`` (representative tuples)."""
        return list(self._codebook)

    def nearest_codeword(self, values: Sequence[int]) -> int:
        """``C(t)``: index of the representative closest in ordinal distance.

        Unlike conventional VQ, no codebook *search* is needed: the
        codebook is kept phi-sorted, so the nearest representative is found
        by binary search — the "no searching" property of Section 6.
        """
        target = self._mapper.phi(values)
        pos = bisect.bisect_left(self._sorted_ordinals, target)
        candidates = []
        if pos > 0:
            candidates.append(pos - 1)
        if pos < len(self._sorted_ordinals):
            candidates.append(pos)
        best = min(
            candidates, key=lambda p: abs(self._sorted_ordinals[p] - target)
        )
        return self._sorted_codewords[best]

    def encode(self, values: Sequence[int]) -> AVQCode:
        """``Q_L(t)``: quantize a tuple losslessly into an :class:`AVQCode`."""
        cw = self.nearest_codeword(values)
        t_ord = self._mapper.phi(values)
        rep_ord = self._code_ordinals[cw]
        before = t_ord <= rep_ord
        diff = rep_ord - t_ord if before else t_ord - rep_ord
        return AVQCode(codeword=cw, difference=diff, before=before)

    def decode(self, code: AVQCode) -> Tuple[int, ...]:
        """Invert ``Q_L`` exactly (Theorem 2.1)."""
        if not 0 <= code.codeword < len(self._codebook):
            raise CodecError(f"codeword {code.codeword} outside codebook")
        rep_ord = self._code_ordinals[code.codeword]
        ordinal = rep_ord - code.difference if code.before else rep_ord + code.difference
        if not 0 <= ordinal < self._mapper.space_size:
            raise CodecError(f"decoded ordinal {ordinal} outside tuple space")
        return self._mapper.phi_inverse(ordinal)

    def distortion(self, values: Sequence[int]) -> int:
        """``d(t, Q(t))`` — the ordinal distance to the chosen representative.

        Zero only when the tuple *is* a representative; for the lossless
        quantizer this quantity is stored, not discarded, so it measures
        coding cost rather than information loss.
        """
        return self.encode(values).difference
