"""Bit-granular stream I/O for the Golomb difference coder.

The paper's Section 3.4 run-length codes at *byte* granularity, which is
simple and fast but wastes up to seven bits per field.  Its reference
[4] is Golomb's run-length coding paper, which is bit-granular; to make
the byte-versus-bit trade-off measurable we need bit streams.

:class:`BitWriter` and :class:`BitReader` pack bits MSB-first into
bytes.  They are deliberately minimal: append/read ``n``-bit integers
and unary runs — exactly what Golomb-Rice coding consumes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CodecError

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    __slots__ = ("_bytes", "_bitpos")

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bitpos = 0  # bits used in the last byte (0..7)

    @property
    def bit_length(self) -> int:
        """Total bits written."""
        if not self._bytes:
            return 0
        return (len(self._bytes) - 1) * 8 + (self._bitpos or 8)

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        if self._bitpos == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 0x80 >> self._bitpos
        self._bitpos = (self._bitpos + 1) % 8

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` bits, most significant first."""
        if width < 0:
            raise CodecError(f"negative bit width {width}")
        if value < 0 or (width < value.bit_length()):
            raise CodecError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, count: int) -> None:
        """Append ``count`` one-bits followed by a terminating zero."""
        if count < 0:
            raise CodecError(f"negative unary count {count}")
        for _ in range(count):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """The packed bytes (last byte zero-padded)."""
        return bytes(self._bytes)


class BitReader:
    """MSB-first cursor over packed bits."""

    __slots__ = ("_data", "_pos", "_limit")

    def __init__(self, data: bytes, bit_length: Optional[int] = None) -> None:
        self._data = data
        self._pos = 0
        self._limit = len(data) * 8 if bit_length is None else bit_length
        if self._limit > len(data) * 8:
            raise CodecError(
                f"bit length {bit_length} exceeds buffer of {len(data)} bytes"
            )

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bits left before the limit."""
        return self._limit - self._pos

    def read_bit(self) -> int:
        """Consume one bit."""
        if self._pos >= self._limit:
            raise CodecError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits as an unsigned integer."""
        if width < 0:
            raise CodecError(f"negative bit width {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Consume a unary run: count of one-bits before the zero."""
        count = 0
        while self.read_bit():
            count += 1
        return count
