"""Representative-tuple selection strategies (Section 3.4).

The paper chooses the *middle* tuple of each phi-ordered block: the median
of a one-dimensional cluster minimises the total absolute distortion
``sum_i |phi(t_i) - phi(t_hat)|``.  Alternative strategies are provided for
the ablation benchmarks called out in DESIGN.md — they let us measure how
much of AVQ's win actually comes from the median choice.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.errors import CodecError

__all__ = [
    "STRATEGIES",
    "first_index",
    "get_strategy",
    "last_index",
    "median_index",
    "nearest_mean_index",
    "total_distortion",
]

Strategy = Callable[[Sequence[int]], int]


def median_index(ordinals: Sequence[int]) -> int:
    """The paper's choice: index of the middle tuple of a sorted block.

    For an even count the lower middle is used; either middle minimises the
    total absolute distortion, and a deterministic choice keeps encode and
    decode in agreement.
    """
    if not ordinals:
        raise CodecError("cannot pick a representative from an empty block")
    return (len(ordinals) - 1) // 2


def first_index(ordinals: Sequence[int]) -> int:
    """Ablation: always anchor on the first (smallest) tuple."""
    if not ordinals:
        raise CodecError("cannot pick a representative from an empty block")
    return 0


def last_index(ordinals: Sequence[int]) -> int:
    """Ablation: always anchor on the last (largest) tuple."""
    if not ordinals:
        raise CodecError("cannot pick a representative from an empty block")
    return len(ordinals) - 1


def nearest_mean_index(ordinals: Sequence[int]) -> int:
    """Ablation: the tuple whose ordinal is closest to the block mean.

    Conventional VQ centroids minimise *squared* error; this strategy is the
    closest lossless analogue (the representative must be an actual tuple of
    the block, since it is stored verbatim and all differences anchor on it).
    """
    if not ordinals:
        raise CodecError("cannot pick a representative from an empty block")
    mean = sum(ordinals) / len(ordinals)
    best, best_dist = 0, abs(ordinals[0] - mean)
    for i, o in enumerate(ordinals):
        d = abs(o - mean)
        if d < best_dist:
            best, best_dist = i, d
    return best


def total_distortion(ordinals: Sequence[int], index: int) -> int:
    """``sum_i |phi(t_i) - phi(t_hat)|`` for a candidate representative."""
    anchor = ordinals[index]
    return sum(abs(o - anchor) for o in ordinals)


STRATEGIES: Dict[str, Strategy] = {  # repro: shared-state[strategy registry; written only at import time, read-only lookup afterwards]
    "median": median_index,
    "first": first_index,
    "last": last_index,
    "nearest-mean": nearest_mean_index,
}


def get_strategy(name: str) -> Strategy:
    """Look up a representative strategy by name.

    >>> get_strategy("median")([10, 20, 30])
    1
    """
    try:
        return STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise CodecError(f"unknown representative strategy {name!r}; known: {known}")
