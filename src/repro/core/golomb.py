"""Golomb-Rice coding of tuple differences — the bit-granular extension.

The paper cites Golomb's run-length codes [4] but applies run-length
coding at byte granularity.  A natural question the paper leaves open is
how much the byte granularity costs; this module answers it by coding
the same chained gap sequence with Golomb-Rice codes:

* a gap ``g`` is split as ``q = g >> k`` and ``r = g & (2^k - 1)``;
* ``q`` is written in unary, ``r`` in ``k`` binary bits;
* the Rice parameter ``k`` is chosen per block from the mean gap
  (``k ~ log2(mean)``, the standard near-optimal choice for
  geometrically distributed gaps — which uniform tuples produce).

:class:`GolombBlockCodec` mirrors :class:`~repro.core.codec.BlockCodec`'s
interface (encode/decode a block of tuples, exact predicted sizes) so the
two slot into the same packer and benches.  Block layout::

    count u (2 bytes) ‖ rice k (1 byte) ‖ bit length (4 bytes)
    ‖ rep tuple (m bytes) ‖ Rice-coded gaps (bit stream)

The representative is the *first* tuple here: with chained gaps the
anchor position does not affect size, and anchoring at the front makes
decode a single forward prefix-sum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.bits import BitReader, BitWriter
from repro.core.phi import OrdinalMapper
from repro.core.runlength import TupleLayout
from repro.errors import BlockOverflowError, CodecError

__all__ = ["GolombBlockCodec", "choose_rice_parameter"]

#: Header: tuple count (2) + rice parameter (1) + payload bit length (4).
GOLOMB_HEADER_BYTES = 7

#: Hard cap keeping pathological unary runs bounded.
_MAX_RICE_K = 63


def choose_rice_parameter(gaps: Sequence[int]) -> int:
    """Near-optimal Rice ``k`` for a gap sample: ``floor(log2(mean))``.

    Zero-mean (all-duplicate) blocks get ``k = 0``; the unary part then
    costs one bit per gap.
    """
    if not gaps:
        return 0
    mean = sum(gaps) / len(gaps)
    if mean < 1.0:
        return 0
    return min(_MAX_RICE_K, max(0, int(mean).bit_length() - 1))


class GolombBlockCodec:
    """Bit-granular AVQ variant: chained gaps, Rice-coded.

    ``chained`` is ``False`` in the packer-protocol sense: although the
    stored differences are chained gaps, the per-block Rice parameter
    depends on the whole block's gap distribution, so sizes are not
    incrementally computable — the packer must use its re-sizing path.
    """

    #: Packer protocol: sizes are whole-block, not incremental.
    chained = False

    def __init__(self, domain_sizes: Sequence[int]) -> None:
        self._mapper = OrdinalMapper(domain_sizes)
        self._layout = TupleLayout(domain_sizes)

    @property
    def min_block_bytes(self) -> int:
        """Smallest possible block: header plus the raw anchor tuple."""
        return GOLOMB_HEADER_BYTES + self._layout.tuple_bytes

    @property
    def mapper(self) -> OrdinalMapper:
        """The phi bijection for this codec's domains."""
        return self._mapper

    @property
    def tuple_bytes(self) -> int:
        """``m`` — byte width of the raw anchor tuple."""
        return self._layout.tuple_bytes

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @staticmethod
    def _gap_bits(gap: int, k: int) -> int:
        return (gap >> k) + 1 + k

    def encoded_size_of_ordinals(self, sorted_ordinals: Sequence[int]) -> int:
        """Exact encoded bytes for a block holding these (ascending) tuples."""
        u = len(sorted_ordinals)
        if u == 0:
            raise CodecError("cannot size an empty block")
        gaps = [
            sorted_ordinals[i + 1] - sorted_ordinals[i] for i in range(u - 1)
        ]
        k = choose_rice_parameter(gaps)
        bits = sum(self._gap_bits(g, k) for g in gaps)
        return GOLOMB_HEADER_BYTES + self._layout.tuple_bytes + (bits + 7) // 8

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode_block(
        self,
        tuples: Sequence[Sequence[int]],
        capacity: Optional[int] = None,
    ) -> bytes:
        """Encode a block; raises on overflow when ``capacity`` is given."""
        u = len(tuples)
        if u == 0:
            raise CodecError("cannot encode an empty block")
        if u > 0xFFFF:
            raise CodecError(f"block of {u} tuples exceeds the count field")
        ordinals = sorted(self._mapper.phi(t) for t in tuples)
        gaps = [ordinals[i + 1] - ordinals[i] for i in range(u - 1)]
        k = choose_rice_parameter(gaps)

        writer = BitWriter()
        for g in gaps:
            writer.write_unary(g >> k)
            writer.write_bits(g & ((1 << k) - 1), k)
        payload = writer.getvalue()

        out = bytearray()
        out += u.to_bytes(2, "big")
        out.append(k)
        out += writer.bit_length.to_bytes(4, "big")
        out += self._layout.tuple_to_bytes(self._mapper.phi_inverse(ordinals[0]))
        out += payload
        if capacity is not None and len(out) > capacity:
            raise BlockOverflowError(
                f"{u} tuples Rice-encode to {len(out)} bytes > {capacity}"
            )
        return bytes(out)

    def decode_ordinals(self, data: bytes) -> List[int]:
        """Decode a block to phi ordinals only (storage-protocol hook)."""
        return [self._mapper.phi(t) for t in self.decode_block(data)]

    def decode_block(self, data: bytes) -> List[Tuple[int, ...]]:
        """Exact inverse of :meth:`encode_block`."""
        if len(data) < GOLOMB_HEADER_BYTES:
            raise CodecError("corrupt Golomb block: short header")
        u = int.from_bytes(data[0:2], "big")
        if u == 0:
            raise CodecError("corrupt Golomb block: zero tuple count")
        k = data[2]
        if k > _MAX_RICE_K:
            raise CodecError(f"corrupt Golomb block: rice parameter {k}")
        bit_length = int.from_bytes(data[3:7], "big")
        m = self._layout.tuple_bytes
        if len(data) < GOLOMB_HEADER_BYTES + m:
            raise CodecError("corrupt Golomb block: missing anchor tuple")
        anchor = self._layout.tuple_from_bytes(
            data[GOLOMB_HEADER_BYTES : GOLOMB_HEADER_BYTES + m]
        )
        ordinal = self._mapper.phi(anchor)

        payload = data[GOLOMB_HEADER_BYTES + m :]
        if bit_length > len(payload) * 8:
            raise CodecError("corrupt Golomb block: truncated bit stream")
        reader = BitReader(payload, bit_length)
        out = [ordinal]
        for _ in range(u - 1):
            q = reader.read_unary()
            r = reader.read_bits(k)
            ordinal += (q << k) | r
            if ordinal >= self._mapper.space_size:
                raise CodecError(
                    "corrupt Golomb block: ordinal outside tuple space"
                )
            out.append(ordinal)
        return [self._mapper.phi_inverse(o) for o in out]
