"""Command-line interface: compress, decompress, inspect, and query.

::

    python -m repro compress  data.csv data.avq [--block-size N]
    python -m repro decompress data.avq data.csv
    python -m repro info      data.avq
    python -m repro query     data.avq --attr years --between 20 30
    python -m repro recover   data.wal data.avq
    python -m repro scrub     data.avq
    python -m repro fsck      data.avq --repair --wal data.wal
    python -m repro serve     data.csv --port 7474
    python -m repro loadgen   --selfhosted --clients 1000 --json out.json
    python -m repro chaos     --seeds 5 --json BENCH_chaos.json

``compress`` runs the full Section 3 pipeline on a CSV; ``query``
demonstrates localized access — only the blocks that can contain
matches are decoded.  ``compress --durable`` also writes a write-ahead
log seeded with the table's checkpoint image, and ``recover`` rebuilds
a container from such a log (docs/RECOVERY.md).

``scrub`` verifies every block's checksum and decode round-trip;
``fsck`` additionally repairs damaged blocks from a write-ahead log,
backfills checksums onto legacy containers, and quarantines what it
cannot prove repaired (docs/INTEGRITY.md).  Both exit 0 when the
container is healthy and 2 when damage remains.

``serve`` compresses CSVs into an in-process database and answers
concurrent clients over the length-prefixed protocol; ``loadgen`` drives
a server with closed-loop zipf-skewed clients and reports qps and
latency percentiles (docs/SERVING.md).  ``loadgen --selfhosted --json``
is the CI benchmark entry point behind ``BENCH_serving.json``.
``chaos`` runs the seeded network/disk fault sweep
(:mod:`repro.server.chaos`) and checks the serving invariants — no lost
acknowledged write, no client hang past its deadline, typed refusals,
recovery to steady state; its report is ``BENCH_chaos.json``.  It exits
0 only when every scenario passed.

The global ``--metrics PATH`` flag (before the subcommand) enables the
observability layer for the run and writes its JSON-lines export —
every counter, histogram, and retained span — to ``PATH`` afterwards
(docs/OBSERVABILITY.md).  With it, ``stats`` also appends the
registry's human-readable table to its report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.io.csvio import read_csv_rows, write_csv_rows
from repro.io.format import AVQFileReader, write_avq_file
from repro.obs import runtime as _obs
from repro.relational.encoding import SchemaInferencer
from repro.relational.relation import Relation
from repro.storage.block import DEFAULT_BLOCK_SIZE

__all__ = ["build_parser", "main"]


def _cmd_compress(args: argparse.Namespace) -> int:
    names, rows = read_csv_rows(args.input, has_header=not args.no_header)
    inferencer = SchemaInferencer(integer_padding=args.integer_padding)
    schema = inferencer.infer(rows, names)
    relation = Relation.from_values(schema, rows)
    summary = write_avq_file(
        args.output, relation,
        block_size=args.block_size,
        workers=args.workers,
    )
    ratio = 100.0 * (
        1.0 - summary["file_bytes"] / max(1, summary["fixed_width_bytes"])
    )
    print(f"{args.input}: {summary['tuples']} tuples, "
          f"{len(names)} attributes")
    print(f"{args.output}: {summary['blocks']} blocks, "
          f"{summary['file_bytes']:,} bytes "
          f"({summary['payload_bytes']:,} payload)")
    print(f"versus packed fixed-width ({summary['fixed_width_bytes']:,} "
          f"bytes): {ratio:.1f}% smaller")
    if args.durable is not None:
        from repro.storage.wal import WriteAheadLog

        with WriteAheadLog.create(
            args.durable, schema, block_size=args.block_size
        ) as wal:
            wal.checkpoint(relation.phi_ordinals())
        print(f"{args.durable}: write-ahead log with a "
              f"{summary['tuples']}-tuple checkpoint image")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.storage.wal import read_log, replay_records

    header, records, truncated, _ = read_log(args.wal)
    image = replay_records(records)
    mapper = header.schema.mapper
    relation = Relation(
        header.schema, [mapper.phi_inverse(o) for o in image.ordinals]
    )
    summary = write_avq_file(
        args.output, relation, block_size=header.block_size
    )
    print(f"{args.wal}: {len(records)} records scanned"
          + ("" if truncated is None
             else f", torn tail truncated at byte {truncated}"))
    print(f"transactions: {image.committed_txns} committed, "
          f"{image.discarded_txns} discarded "
          f"({image.replayed_ops} operations replayed)")
    print(f"{args.output}: {summary['tuples']} tuples recovered into "
          f"{summary['blocks']} blocks")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with AVQFileReader(args.input) as reader:
        names = reader.schema.names
        schema = reader.schema
        if args.workers is not None:
            from repro.core.parallel import decode_blocks

            payloads = [
                reader.read_payload(p) for p in range(reader.num_blocks)
            ]
            rows = [
                schema.decode_tuple(t)
                for block in decode_blocks(
                    reader.codec, payloads, workers=args.workers
                )
                for t in block
            ]
        else:
            rows = list(reader.scan_values())
    write_csv_rows(args.output, names, rows)
    print(f"{args.output}: {len(rows)} rows, {len(names)} columns")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with AVQFileReader(args.input) as reader:
        schema = reader.schema
        print(f"container:   {args.input}")
        print(f"tuples:      {reader.num_tuples}")
        print(f"blocks:      {reader.num_blocks} "
              f"(logical block size {reader.block_size})")
        print(f"codec:       chained={reader.codec.chained}, "
              f"representative={reader.codec.representative_strategy}")
        print(f"tuple width: {reader.codec.tuple_bytes} bytes fixed")
        print("attributes:")
        for attr in schema.attributes:
            print(f"  {attr.name:20s} |domain| = {attr.domain.size}")
        if args.blocks:
            print("block directory:")
            for pos in range(reader.num_blocks):
                count, first = reader.block_info(pos)
                print(f"  block {pos:4d}: {count:5d} tuples, "
                      f"first ordinal {first}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with AVQFileReader(args.input) as reader:
        schema = reader.schema
        domain = schema.attribute(args.attr).domain
        lo_raw, hi_raw = args.between
        lo = domain.encode_bound(_coerce(lo_raw))
        hi = domain.encode_bound(_coerce(hi_raw))
        if lo > hi:
            raise ReproError(
                f"{lo_raw!r}..{hi_raw!r} is inverted under the domain order"
            )
        pos = schema.position(args.attr)

        if pos == 0:
            # Clustering attribute: only the overlapping ordinal range.
            w0 = schema.mapper.weights[0]
            candidates = reader.blocks_overlapping(
                lo * w0, (hi + 1) * w0 - 1
            )
        else:
            candidates = list(range(reader.num_blocks))

        from collections import OrderedDict

        from repro.storage.buffer import BufferStats

        # Stage timing runs through repro.obs — the sanctioned clock
        # (R008) — so the same numbers the CLI prints also land in the
        # registry/tracer whenever the global --metrics flag is up.
        stats = BufferStats()
        cache: "OrderedDict[int, list]" = OrderedDict()
        stage_ms = {"decode": 0.0, "total": 0.0}

        def read_cached(position: int) -> list:
            block = cache.get(position) if args.decoded_cache > 0 else None
            if block is not None:
                cache.move_to_end(position)
                stats.decoded_hits += 1
                return block
            t0 = _obs.now_ms()
            block = reader.read_block(position)
            stage_ms["decode"] += _obs.now_ms() - t0
            if args.decoded_cache > 0:
                stats.decoded_misses += 1
                cache[position] = block
                if len(cache) > args.decoded_cache:
                    cache.popitem(last=False)
                    stats.decoded_evictions += 1
            return block

        matches = 0
        repeats = max(1, args.repeat)
        with _obs.span(
            "cli.query",
            attr=args.attr,
            candidates=len(candidates),
            repeats=repeats,
        ):
            for repeat in range(repeats):
                matches = 0
                t0 = _obs.now_ms()
                for position in candidates:
                    for t in read_cached(position):
                        if lo <= t[pos] <= hi:
                            matches += 1
                            if repeat == 0 and matches <= args.limit:
                                print(schema.decode_tuple(t))
                stage_ms["total"] += _obs.now_ms() - t0
        reg = _obs.REGISTRY
        if reg is not None:
            reg.inc("cli.query.matches", matches)
            reg.inc("cli.query.candidate_blocks", len(candidates))
            reg.observe("cli.query.decode_ms", stage_ms["decode"])
            reg.observe("cli.query.total_ms", stage_ms["total"])
        print(f"-- {matches} matching rows; decoded {len(candidates)} of "
              f"{reader.num_blocks} blocks (N = {len(candidates)})")
        if args.repeat > 1 or args.decoded_cache > 0:
            print(f"-- decoded cache: {stats.decoded_hits} hits, "
                  f"{stats.decoded_misses} misses, "
                  f"{stats.decoded_evictions} evictions "
                  f"(hit rate {stats.decoded_hit_rate:.1%})")
            print(f"-- stages: decode {stage_ms['decode']:.2f} ms "
                  f"within total {stage_ms['total']:.2f} ms "
                  f"over {repeats} run(s)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with AVQFileReader(args.input) as reader:
        schema = reader.schema
        from repro.db.stats import AttributeHistogram

        histograms = {
            name: AttributeHistogram(size, num_buckets=args.buckets)
            for name, size in zip(schema.names, schema.domain_sizes)
        }
        for position in range(reader.num_blocks):
            for t in reader.read_block(position):
                for pos, name in enumerate(schema.names):
                    histograms[name].add(t[pos])
        print(f"{args.input}: {reader.num_tuples} tuples, "
              f"{reader.num_blocks} blocks")
        for name in schema.names:
            h = histograms[name]
            size = schema.attribute(name).domain.size
            print(f"  {name:20s} |domain| = {size:8d}  "
                  f"distinct >= {h.distinct_values():6d}  "
                  f"mid-range share = "
                  f"{h.estimate_selectivity(size // 4, 3 * size // 4):.1%}")
        reg = _obs.REGISTRY
        if reg is not None:
            from repro.obs.export import stats_table

            print()
            print(stats_table(reg, title="observability"), end="")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.io.scrub import scrub_container

    report = scrub_container(args.input)
    for line in report.fsck_lines():
        print(line)
    print(f"{args.input}: {report.blocks_checked} blocks checked, "
          f"{len(report.findings)} finding(s)")
    if report.backfill_candidates:
        print(f"note: {report.backfill_candidates} block(s) predate "
              "checksums; run fsck --backfill-checksums")
    return 0 if report.clean else 2


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.io.scrub import fsck_container

    report = fsck_container(
        args.input,
        repair=args.repair,
        backfill=args.backfill_checksums,
        wal_path=args.wal,
    )
    for line in report.fsck_lines():
        print(line)
    if args.repair and report.findings and args.wal is None:
        print("note: no --wal given, so damaged blocks had no repair "
              "source", file=sys.stderr)
    print(f"{args.input}: {report.blocks_checked} blocks checked, "
          f"{len(report.findings)} finding(s), "
          f"{len(report.repaired)} repaired, "
          f"{len(report.quarantined)} quarantined, "
          f"{report.backfilled} backfilled")
    return 0 if report.healthy else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.db.database import Database
    from repro.server.server import ReproServer, ServerConfig

    database = Database()
    for spec in args.csv:
        path, _, name = spec.partition(":")
        name = name or Path(path).stem
        names, rows = read_csv_rows(path, has_header=True)
        database.create_table(name, rows, columns=names, compressed=True)
        table = database.table(name)
        print(f"{name}: {table.num_tuples} tuples in "
              f"{table.num_blocks} blocks (from {path})")
    server = ReproServer(
        database,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queued=args.max_queued,
            max_per_client=args.max_per_client,
            reader_threads=args.reader_threads,
        ),
    )

    async def _serve() -> None:
        host, port = await server.start()
        print(f"serving on {host}:{port} (ctrl-c to stop)")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # serve_forever usually absorbs the cancellation itself
    print("stopped")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.server import loadgen as _loadgen

    if args.selfhosted:
        report = _loadgen.run_selfhosted_bench(
            tuples=args.tuples,
            clients=args.clients,
            requests_per_client=args.requests,
            read_fraction=args.read_fraction,
            zipf_s=args.zipf_s,
            seed=args.seed,
        )
    else:
        if args.table is None:
            raise ReproError("--table is required unless --selfhosted")
        report = asyncio.run(
            _loadgen.run_loadgen(
                args.host,
                args.port,
                table=args.table,
                clients=args.clients,
                requests_per_client=args.requests,
                read_fraction=args.read_fraction,
                zipf_s=args.zipf_s,
                seed=args.seed,
            )
        )
    lat = report.latency_ms
    print(f"{report.clients} clients x {report.requests_per_client} "
          f"requests: {report.ok} ok, {report.busy} busy, "
          f"{report.errors} errors")
    print(f"qps {report.qps:.1f} over {report.duration_ms:.0f} ms")
    if lat:
        print(f"latency ms: p50 {lat['p50']:.2f}  p90 {lat['p90']:.2f}  "
              f"p99 {lat['p99']:.2f}  max {lat['max']:.2f}")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"-- report -> {args.json}", file=sys.stderr)
    return 0 if report.errors == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.server.chaos import SCENARIO_KINDS, run_chaos_sweep

    kinds = (
        tuple(args.kinds.split(",")) if args.kinds else SCENARIO_KINDS
    )
    report = run_chaos_sweep(
        kinds=kinds,
        seeds=tuple(range(args.seeds)),
        clients=args.clients,
        requests_per_client=args.requests,
        work_dir=args.work_dir,
    )
    print(
        f"{report['total']} scenarios: {report['passed']} passed, "
        f"{report['failed']} failed"
    )
    print(
        f"invariants: {report['lost_acked_writes']} lost acked writes, "
        f"{report['hangs']} hangs, "
        f"{report['untyped_responses']} untyped responses, "
        f"{report['deadline_violations']} deadline violations"
    )
    print(f"p99 under chaos: {report['p99_under_chaos_ms']:.2f} ms")
    for scenario in report["scenarios"]:
        if not scenario["passed"]:
            print(f"FAILED: {json.dumps(scenario, sort_keys=True)}")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"-- report -> {args.json}", file=sys.stderr)
    return 0 if report["failed"] == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.list_rules:
        argv.append("--list-rules")
    if args.project:
        argv.append("--project")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    if args.shared_state:
        argv.append("--shared-state")
    return lint_main(argv)


def _coerce(value: str):
    try:
        return int(value)
    except ValueError:
        return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AVQ relational compression (Ng & Ravishankar, ICDE 1995)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable the observability layer for this command and write "
             "its JSON-lines metric/span export to PATH afterwards "
             "(docs/OBSERVABILITY.md); goes before the subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="CSV -> .avq container")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    p.add_argument("--no-header", action="store_true",
                   help="CSV has no header row")
    p.add_argument("--integer-padding", type=int, default=0,
                   help="headroom added above each integer column's max")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel block coding: 0 = all cores, N = exactly N "
                        "(default: in-process serial)")
    p.add_argument("--durable", metavar="WALPATH", default=None,
                   help="also write a write-ahead log seeded with the "
                        "table's checkpoint image (docs/RECOVERY.md)")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser(
        "recover",
        help="rebuild a container from a write-ahead log",
    )
    p.add_argument("wal", help="write-ahead log (.wal)")
    p.add_argument("output", help="container to write (.avq)")
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser("decompress", help=".avq container -> CSV")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel block decoding: 0 = all cores, N = exactly "
                        "N (default: in-process serial)")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="describe a container")
    p.add_argument("input")
    p.add_argument("--blocks", action="store_true",
                   help="also print the block directory")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("stats", help="per-attribute histograms of a container")
    p.add_argument("input")
    p.add_argument("--buckets", type=int, default=16,
                   help="histogram resolution")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "scrub",
        help="verify every block of a container (docs/INTEGRITY.md)",
    )
    p.add_argument("input")
    p.set_defaults(func=_cmd_scrub)

    p = sub.add_parser(
        "fsck",
        help="check a container; optionally repair from a WAL, "
             "backfill checksums, quarantine unrepairable blocks",
    )
    p.add_argument("input")
    p.add_argument("--repair", action="store_true",
                   help="restore damaged blocks from --wal where byte "
                        "identity can be proven; quarantine the rest")
    p.add_argument("--backfill-checksums", action="store_true",
                   help="add CRC32s to legacy pre-checksum directory "
                        "entries that still decode cleanly")
    p.add_argument("--wal", metavar="WALPATH", default=None,
                   help="write-ahead log to use as the repair source")
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser(
        "lint",
        help="static analysis of codec invariants (see docs/ANALYSIS.md)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to scan (default: src/repro)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--select", metavar="RULES",
                   help="comma-separated rule ids to run")
    p.add_argument("--ignore", metavar="RULES",
                   help="comma-separated rule ids to skip")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also print findings waived by # repro: noqa")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--project", action="store_true",
                   help="whole-program mode: run R009-R014 over the "
                        "project context too")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="known-findings file; fail only on new findings "
                        "(implies --project)")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="record current findings as the baseline "
                        "(implies --project)")
    p.add_argument("--shared-state", action="store_true",
                   help="print the audited shared-state registry "
                        "(implies --project)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="serve CSV-seeded tables to concurrent clients "
             "(docs/SERVING.md)",
    )
    p.add_argument("csv", nargs="+", metavar="CSV[:NAME]",
                   help="CSV file(s) to compress and serve; table name "
                        "defaults to the file stem")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7474,
                   help="0 picks an ephemeral port (printed on start)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="requests executing at once")
    p.add_argument("--max-queued", type=int, default=256,
                   help="requests waiting beyond that (then BUSY)")
    p.add_argument("--max-per-client", type=int, default=8,
                   help="per-connection queued-or-executing cap")
    p.add_argument("--reader-threads", type=int, default=8,
                   help="thread pool size for snapshot reads")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="closed-loop zipf load generator against a repro server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7474)
    p.add_argument("--table", default=None,
                   help="table to exercise (required unless --selfhosted)")
    p.add_argument("--selfhosted", action="store_true",
                   help="seed a synthetic table and serve it in-process "
                        "for the run (the CI benchmark mode)")
    p.add_argument("--tuples", type=int, default=5000,
                   help="synthetic table size (--selfhosted only)")
    p.add_argument("--clients", type=int, default=100,
                   help="concurrent closed-loop clients")
    p.add_argument("--requests", type=int, default=20,
                   help="requests per client")
    p.add_argument("--read-fraction", type=float, default=0.9,
                   help="fraction of requests that are selects")
    p.add_argument("--zipf-s", type=float, default=1.2,
                   help="zipf skew of key popularity")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the full report (BENCH_serving.json shape)")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "chaos",
        help="seeded network/disk fault sweep against an in-process "
             "server (serving-layer invariant checks)",
    )
    p.add_argument("--kinds", default=None,
                   help="comma-separated scenario kinds (default: all)")
    p.add_argument("--seeds", type=int, default=5,
                   help="seeds per kind (scenarios = kinds x seeds)")
    p.add_argument("--clients", type=int, default=3,
                   help="concurrent clients per scenario")
    p.add_argument("--requests", type=int, default=5,
                   help="requests per client per scenario")
    p.add_argument("--work-dir", default=None,
                   help="directory for crash-restart WALs "
                        "(default: a temp dir)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the full report (BENCH_chaos.json shape)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("query", help="range-select from a container")
    p.add_argument("input")
    p.add_argument("--attr", required=True, help="attribute name")
    p.add_argument("--between", nargs=2, required=True,
                   metavar=("LO", "HI"))
    p.add_argument("--limit", type=int, default=20,
                   help="rows to print (count is always exact)")
    p.add_argument("--decoded-cache", type=int, default=0, metavar="BLOCKS",
                   help="LRU-cache up to this many decoded blocks "
                        "(0 disables; see docs/PERFORMANCE.md)")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the query this many times (with --decoded-cache "
                        "the repeats hit the cache; counters are printed)")
    p.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.metrics is None:
            return args.func(args)
        from repro.obs.export import write_jsonl

        # Fresh instruments scoped to this one command: the export
        # reflects exactly what the command did, and the prior global
        # state (if any) is restored on the way out.
        with _obs.scoped() as (registry, tracer):
            code = args.func(args)
            rows = write_jsonl(args.metrics, registry, tracer)
        print(f"-- metrics: {rows} event(s) -> {args.metrics}",
              file=sys.stderr)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
