"""Relational algebra operators over in-memory relations.

Only the operators the paper's evaluation needs: selection with
conjunctive range predicates (the ``sigma_{a <= A_k <= b}`` queries of
Section 5.3) and projection.  These operate on ordinal tuples and return
new relations; the *storage-aware* query path lives in :mod:`repro.db`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.errors import QueryError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

__all__ = ["RangePredicate", "select", "project", "count_matching"]


@dataclass(frozen=True)
class RangePredicate:
    """``lo <= A_attr <= hi`` over ordinal values (inclusive both ends)."""

    attribute: str
    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise QueryError(
                f"inverted range [{self.lo}, {self.hi}] on {self.attribute!r}"
            )

    def bind(self, schema: Schema) -> Tuple[int, int, int]:
        """Resolve to (position, lo, hi), clamped to the attribute's domain."""
        pos = schema.position(self.attribute)
        size = schema.domain_sizes[pos]
        lo = max(0, self.lo)
        hi = min(size - 1, self.hi)
        if lo > hi:
            raise QueryError(
                f"range [{self.lo}, {self.hi}] misses domain of size {size} "
                f"on {self.attribute!r}"
            )
        return pos, lo, hi

    def matches(self, schema: Schema, values: Sequence[int]) -> bool:
        """Whether an ordinal tuple satisfies the predicate."""
        pos, lo, hi = self.bind(schema)
        return lo <= values[pos] <= hi


def select(relation: Relation, predicates: Iterable[RangePredicate]) -> Relation:
    """``sigma``: tuples satisfying all predicates (conjunction)."""
    preds = list(predicates)
    bound = [p.bind(relation.schema) for p in preds]
    out = Relation(relation.schema)
    for t in relation:
        if all(lo <= t[pos] <= hi for pos, lo, hi in bound):
            out.append(t)
    return out


def count_matching(
    relation: Relation, predicates: Iterable[RangePredicate]
) -> int:
    """Cardinality of ``select`` without materialising the result."""
    bound = [p.bind(relation.schema) for p in predicates]
    return sum(
        1
        for t in relation
        if all(lo <= t[pos] <= hi for pos, lo, hi in bound)
    )


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """``pi``: keep only the named attributes (bag semantics, no dedup).

    The projected relation gets a fresh schema with the same domains in
    the requested order.
    """
    if not attributes:
        raise QueryError("projection needs at least one attribute")
    schema = relation.schema
    positions = [schema.position(a) for a in attributes]
    new_schema = Schema(
        [Attribute(a, schema.attribute(a).domain) for a in attributes]
    )
    out = Relation(new_schema)
    for t in relation:
        out.append(tuple(t[p] for p in positions))
    return out
