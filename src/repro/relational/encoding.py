"""Schema inference and whole-relation attribute encoding (Section 3.1).

The paper's first preprocessing step replaces every attribute value with a
number.  :class:`SchemaInferencer` automates the common case: given raw
rows, it inspects each column and builds

* an :class:`~repro.relational.domain.IntegerRangeDomain` for integer
  columns (spanning the observed range, optionally padded),
* a :class:`~repro.relational.domain.CategoricalDomain` for low-cardinality
  non-integer columns,
* a :class:`~repro.relational.domain.StringDomain` for open-ended string
  columns (cardinality above ``categorical_threshold``).

The result is a :class:`~repro.relational.schema.Schema` plus the encoded
:class:`~repro.relational.relation.Relation` — the paper's Table (a) to
Table (b) transformation in Figure 2.2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import EncodingError, SchemaError
from repro.relational.domain import (
    CategoricalDomain,
    Domain,
    IntegerRangeDomain,
    StringDomain,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

__all__ = ["SchemaInferencer", "encode_relation"]


class SchemaInferencer:
    """Infer per-column domains from raw data rows.

    Parameters
    ----------
    categorical_threshold:
        String columns with at most this many distinct values become
        :class:`CategoricalDomain`; above it they become an open
        :class:`StringDomain` with headroom.
    string_headroom:
        Multiplier applied to the observed distinct-string count when
        sizing an open string table (so later inserts have room without
        changing the phi radix).
    integer_padding:
        Extra values added above the observed max of integer columns, for
        the same reason.
    """

    def __init__(
        self,
        *,
        categorical_threshold: int = 64,
        string_headroom: float = 2.0,
        integer_padding: int = 0,
    ):
        if categorical_threshold < 1:
            raise SchemaError("categorical_threshold must be >= 1")
        if string_headroom < 1.0:
            raise SchemaError("string_headroom must be >= 1.0")
        if integer_padding < 0:
            raise SchemaError("integer_padding must be >= 0")
        self._categorical_threshold = categorical_threshold
        self._string_headroom = string_headroom
        self._integer_padding = integer_padding

    def infer(
        self,
        rows: Sequence[Sequence],
        names: Optional[Sequence[str]] = None,
    ) -> Schema:
        """Build a schema whose domains cover every value in ``rows``."""
        if not rows:
            raise EncodingError("cannot infer a schema from zero rows")
        arity = len(rows[0])
        if arity == 0:
            raise EncodingError("rows must have at least one column")
        for i, r in enumerate(rows):
            if len(r) != arity:
                raise EncodingError(
                    f"row {i} has {len(r)} columns, expected {arity}"
                )
        if names is None:
            names = [f"A{i + 1}" for i in range(arity)]
        elif len(names) != arity:
            raise EncodingError(
                f"{len(names)} names given for {arity} columns"
            )
        attributes = [
            Attribute(name, self._infer_column([r[i] for r in rows]))
            for i, name in enumerate(names)
        ]
        return Schema(attributes)

    def _infer_column(self, column: List) -> Domain:
        if all(isinstance(v, bool) for v in column):
            # bools are ints in Python; treat them as a 2-value category.
            return CategoricalDomain([False, True])
        if all(isinstance(v, int) for v in column):
            return IntegerRangeDomain(
                min(column), max(column) + self._integer_padding
            )
        if all(isinstance(v, str) for v in column):
            distinct = sorted(set(column))
            if len(distinct) <= self._categorical_threshold:
                return CategoricalDomain(distinct)
            capacity = int(len(distinct) * self._string_headroom)
            return StringDomain(capacity=capacity, values=distinct)
        raise EncodingError(
            "column mixes types or holds unsupported values; "
            "provide an explicit Domain for it"
        )


def encode_relation(
    rows: Sequence[Sequence],
    names: Optional[Sequence[str]] = None,
    *,
    inferencer: Optional[SchemaInferencer] = None,
) -> Relation:
    """One-call Section 3.1: infer a schema and domain-map all rows.

    >>> rel = encode_relation([("sales", 3), ("eng", 5)])
    >>> rel.schema.domain_sizes
    (2, 3)
    >>> list(rel)
    [(1, 0), (0, 2)]
    """
    inferencer = inferencer or SchemaInferencer()
    schema = inferencer.infer(rows, names)
    return Relation.from_values(schema, rows)
