"""Relational substrate: domains, schemas, encoding, relations, algebra.

Implements the Section 2.2 formalism (relation schemes as cross-products
of finite domains) and the Section 3.1 attribute-encoding preprocessing.
"""

from repro.relational.algebra import (
    RangePredicate,
    count_matching,
    project,
    select,
)
from repro.relational.domain import (
    CategoricalDomain,
    Domain,
    IntegerRangeDomain,
    StringDomain,
)
from repro.relational.encoding import SchemaInferencer, encode_relation
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

__all__ = [
    "Domain",
    "IntegerRangeDomain",
    "CategoricalDomain",
    "StringDomain",
    "Attribute",
    "Schema",
    "Relation",
    "SchemaInferencer",
    "encode_relation",
    "RangePredicate",
    "select",
    "project",
    "count_matching",
]
