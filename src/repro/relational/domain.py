"""Attribute domains and the Section 3.1 value-to-ordinal mappings.

AVQ operates on tuples whose attributes are *ordinals* — non-negative
integers smaller than a fixed domain size.  A :class:`Domain` pairs that
ordinal space with the bidirectional mapping to application values:

* :class:`IntegerRangeDomain` — contiguous integers (ages, hours, ids);
* :class:`CategoricalDomain` — a known finite value set, mapped to its
  ordinal position (the paper: "each attribute value is mapped to its
  ordinal position in the domain");
* :class:`StringDomain` — alphanumeric strings replaced by indices into a
  string table, the Graefe/Shapiro-style dictionary the paper cites for
  open-ended string attributes.

``StringDomain`` is the one mutable domain: it assigns indices on first
use, up to a declared capacity (the capacity, not the current population,
defines the phi radix so that encodings remain stable as strings arrive).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List

from repro.errors import DomainError, SchemaError

__all__ = [
    "Domain",
    "IntegerRangeDomain",
    "CategoricalDomain",
    "StringDomain",
]


class Domain:
    """Base class: a finite ordered value set of known size."""

    @property
    def size(self) -> int:
        """``|A_i|`` — number of distinct values (the phi radix)."""
        raise NotImplementedError

    def encode(self, value) -> int:
        """Map an application value to its ordinal in ``[0, size)``."""
        raise NotImplementedError

    def decode(self, ordinal: int) -> object:
        """Map an ordinal back to the application value."""
        raise NotImplementedError

    def contains(self, value) -> bool:
        """Whether ``value`` is encodable in this domain."""
        try:
            self.encode(value)
        except DomainError:
            return False
        return True

    def encode_bound(self, value) -> int:
        """Encode a *query bound*, which may lie outside the domain.

        The default is strict encoding; ordered domains override this to
        clamp out-of-range bounds (a range query asking for ``years
        between 0 and 99`` should simply cover the whole domain).
        """
        return self.encode(value)

    def _check_ordinal(self, ordinal: int) -> None:
        if not 0 <= ordinal < self.size:
            raise DomainError(
                f"ordinal {ordinal} outside domain of size {self.size}"
            )


class IntegerRangeDomain(Domain):
    """Contiguous integers ``lo .. hi`` inclusive.

    >>> d = IntegerRangeDomain(10, 19)
    >>> d.size, d.encode(13), d.decode(3)
    (10, 3, 13)
    """

    def __init__(self, lo: int, hi: int):
        if hi < lo:
            raise SchemaError(f"empty integer range [{lo}, {hi}]")
        self._lo = int(lo)
        self._hi = int(hi)

    @property
    def lo(self) -> int:
        """Smallest value in the range."""
        return self._lo

    @property
    def hi(self) -> int:
        """Largest value in the range."""
        return self._hi

    @property
    def size(self) -> int:
        return self._hi - self._lo + 1

    def encode(self, value) -> int:
        try:
            v = int(value)
        except (TypeError, ValueError) as exc:
            raise DomainError(f"{value!r} is not an integer") from exc
        if not self._lo <= v <= self._hi:
            raise DomainError(
                f"{v} outside integer range [{self._lo}, {self._hi}]"
            )
        return v - self._lo

    def decode(self, ordinal: int):
        self._check_ordinal(ordinal)
        return self._lo + ordinal

    def encode_bound(self, value) -> int:
        """Clamp a query bound into the range before encoding."""
        try:
            v = int(value)
        except (TypeError, ValueError) as exc:
            raise DomainError(f"{value!r} is not an integer") from exc
        return self.encode(min(max(v, self._lo), self._hi))

    def __repr__(self) -> str:
        return f"IntegerRangeDomain({self._lo}, {self._hi})"


class CategoricalDomain(Domain):
    """A fixed, fully known value set mapped to ordinal positions.

    Values keep the order they were given in (or sorted order when
    ``sort=True``), so that range queries over the ordinals are meaningful
    for inherently ordered categories.

    >>> d = CategoricalDomain(["mgmt", "marketing", "production"])
    >>> d.encode("marketing"), d.decode(2)
    (1, 'production')
    """

    def __init__(self, values: Iterable[Hashable], *, sort: bool = False):
        vals: List[Hashable] = list(values)
        if not vals:
            raise SchemaError("categorical domain needs at least one value")
        if sort:
            vals = sorted(vals)
        self._values = vals
        self._index: Dict[Hashable, int] = {}
        for i, v in enumerate(vals):
            if v in self._index:
                raise SchemaError(f"duplicate categorical value {v!r}")
            self._index[v] = i

    @property
    def values(self) -> List[Hashable]:
        """The value set, in ordinal order."""
        return list(self._values)

    @property
    def size(self) -> int:
        return len(self._values)

    def encode(self, value) -> int:
        try:
            return self._index[value]
        except (KeyError, TypeError) as exc:
            raise DomainError(f"{value!r} not in categorical domain") from exc

    def decode(self, ordinal: int):
        self._check_ordinal(ordinal)
        return self._values[ordinal]

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:3])
        suffix = ", ..." if len(self._values) > 3 else ""
        return f"CategoricalDomain([{preview}{suffix}])"


class StringDomain(Domain):
    """Open-ended strings dictionary-encoded into a bounded table (Sec. 3.1).

    The paper: "for alphanumeric strings, we may construct a table
    containing the set of these strings and replace each attribute by an
    index into the table".  Capacity is fixed up front because the phi
    radix must not change once tuples have been coded.

    >>> d = StringDomain(capacity=100)
    >>> d.encode("alice"), d.encode("bob"), d.encode("alice")
    (0, 1, 0)
    >>> d.decode(1)
    'bob'
    """

    def __init__(self, capacity: int, *, values: Iterable[str] = ()):
        if capacity < 1:
            raise SchemaError(f"string table capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._table: List[str] = []
        self._index: Dict[str, int] = {}
        for v in values:
            self.encode(v)

    @property
    def size(self) -> int:
        # The radix is the full capacity: encodings must not shift when new
        # strings are interned later.
        return self._capacity

    @property
    def population(self) -> int:
        """Number of distinct strings interned so far."""
        return len(self._table)

    def encode(self, value) -> int:
        if not isinstance(value, str):
            raise DomainError(f"{value!r} is not a string")
        existing = self._index.get(value)
        if existing is not None:
            return existing
        if len(self._table) >= self._capacity:
            raise DomainError(
                f"string table full (capacity {self._capacity}); "
                f"cannot intern {value!r}"
            )
        idx = len(self._table)
        self._table.append(value)
        self._index[value] = idx
        return idx

    def decode(self, ordinal: int):
        self._check_ordinal(ordinal)
        if ordinal >= len(self._table):
            raise DomainError(
                f"ordinal {ordinal} has no interned string "
                f"(population {len(self._table)})"
            )
        return self._table[ordinal]

    def __repr__(self) -> str:
        return (
            f"StringDomain(capacity={self._capacity}, "
            f"population={len(self._table)})"
        )
