"""Relation schemas: named attributes over finite domains (Section 2.2).

A :class:`Schema` is the paper's relation scheme
``R = <<A_1, ..., A_n>>``: an ordered list of attributes, each with a
finite domain.  It owns the :class:`~repro.core.phi.OrdinalMapper` for the
corresponding mixed-radix space and the encode/decode path between
application values and ordinal tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.phi import OrdinalMapper
from repro.errors import SchemaError
from repro.relational.domain import Domain

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A named column with its domain."""

    name: str
    domain: Domain

    def __post_init__(self):
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


class Schema:
    """An ordered list of attributes; the phi radix of the relation.

    Attribute order matters twice: it fixes the tuple layout, and — because
    ``phi`` weights earlier attributes more heavily — it decides the
    physical clustering of the coded relation (the paper sorts the whole
    relation by ``phi``).

    Examples
    --------
    >>> from repro.relational.domain import IntegerRangeDomain
    >>> s = Schema([Attribute("a", IntegerRangeDomain(0, 7)),
    ...             Attribute("b", IntegerRangeDomain(0, 15))])
    >>> s.domain_sizes
    (8, 16)
    >>> s.encode_tuple([3, 10])
    (3, 10)
    """

    def __init__(self, attributes: Sequence[Attribute]):
        if not attributes:
            raise SchemaError("schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._by_name: Dict[str, int] = {a.name: i for i, a in enumerate(attributes)}
        self._mapper = OrdinalMapper([a.domain.size for a in attributes])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes in layout order."""
        return self._attributes

    @property
    def names(self) -> List[str]:
        """Attribute names in layout order."""
        return [a.name for a in self._attributes]

    @property
    def arity(self) -> int:
        """Number of attributes ``n``."""
        return len(self._attributes)

    @property
    def domain_sizes(self) -> Tuple[int, ...]:
        """``(|A_1|, ..., |A_n|)``."""
        return self._mapper.domain_sizes

    @property
    def mapper(self) -> OrdinalMapper:
        """The phi bijection over this schema's tuple space."""
        return self._mapper

    @property
    def space_size(self) -> int:
        """``||R||`` — the size of the full tuple space."""
        return self._mapper.space_size

    def position(self, name: str) -> int:
        """Index of attribute ``name`` in the layout."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no attribute {name!r}; schema has {self.names}"
            )

    def attribute(self, name: str) -> Attribute:
        """Look an attribute up by name."""
        return self._attributes[self.position(name)]

    def __len__(self) -> int:
        return len(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name}:{a.domain.size}" for a in self._attributes
        )
        return f"Schema({cols})"

    # ------------------------------------------------------------------
    # Encode / decode (Section 3.1 domain mapping, applied tuple-wide)
    # ------------------------------------------------------------------

    def encode_tuple(self, values: Sequence) -> Tuple[int, ...]:
        """Map application values to an ordinal tuple."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple has {len(values)} values, schema expects {self.arity}"
            )
        return tuple(
            a.domain.encode(v) for a, v in zip(self._attributes, values)
        )

    def decode_tuple(self, ordinals: Sequence[int]) -> Tuple:
        """Map an ordinal tuple back to application values."""
        if len(ordinals) != self.arity:
            raise SchemaError(
                f"tuple has {len(ordinals)} ordinals, schema expects {self.arity}"
            )
        return tuple(
            a.domain.decode(o) for a, o in zip(self._attributes, ordinals)
        )

    def phi(self, ordinals: Sequence[int]) -> int:
        """Shorthand for ``schema.mapper.phi``."""
        return self._mapper.phi(ordinals)

    def reordered(self, order: Sequence[str]) -> "Schema":
        """A new schema with attributes permuted into ``order``.

        Used by the attribute-ordering ablation: phi clustering depends on
        which attribute comes first.
        """
        if sorted(order) != sorted(self.names):
            raise SchemaError(
                f"reorder list {list(order)} is not a permutation of {self.names}"
            )
        return Schema([self.attribute(n) for n in order])
