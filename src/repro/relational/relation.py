"""In-memory relations: ordered bags of ordinal tuples over a schema.

A :class:`Relation` holds tuples *after* the Section 3.1 domain mapping —
all attributes are ordinals.  It is the unit handed to the storage layer
for block partitioning, and the thing the workload generator produces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import Schema

__all__ = ["Relation"]


class Relation:
    """A bag of ordinal tuples with their schema.

    Tuples are stored in insertion order; :meth:`sorted_by_phi` returns the
    Section 3.2 re-ordering that AVQ block coding requires.
    """

    def __init__(self, schema: Schema, tuples: Iterable[Sequence[int]] = ()):
        self._schema = schema
        self._tuples: List[Tuple[int, ...]] = []
        for t in tuples:
            self.append(t)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, schema: Schema, rows: Iterable[Sequence]) -> "Relation":
        """Build a relation by domain-mapping raw application rows."""
        return cls(schema, (schema.encode_tuple(r) for r in rows))

    @classmethod
    def from_array(cls, schema: Schema, array: np.ndarray) -> "Relation":
        """Build a relation from a ``(rows, arity)`` ordinal array."""
        array = np.asarray(array)
        if array.ndim != 2 or array.shape[1] != schema.arity:
            raise SchemaError(
                f"array shape {array.shape} does not match arity {schema.arity}"
            )
        rel = cls(schema)
        sizes = schema.domain_sizes
        if (array < 0).any() or (array >= np.asarray(sizes)).any():
            raise SchemaError("array contains out-of-domain ordinals")
        rel._tuples = [tuple(int(v) for v in row) for row in array]
        return rel

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    def append(self, values: Sequence[int]) -> None:
        """Add one ordinal tuple (validated against the schema)."""
        t = tuple(int(v) for v in values)
        self._schema.mapper.validate(t)
        self._tuples.append(t)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self._tuples)

    def __getitem__(self, i: int) -> Tuple[int, ...]:
        return self._tuples[i]

    def __contains__(self, t) -> bool:
        return tuple(t) in set(self._tuples)

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, {len(self._tuples)} tuples)"

    # ------------------------------------------------------------------
    # AVQ preprocessing views
    # ------------------------------------------------------------------

    def sorted_by_phi(self) -> List[Tuple[int, ...]]:
        """Section 3.2 tuple re-ordering: tuples ascending by phi ordinal.

        phi order coincides with plain lexicographic tuple order (the
        first attribute carries the largest weight), so Python's native
        tuple sort is both correct and fast.
        """
        return sorted(self._tuples)

    def phi_ordinals(self) -> List[int]:
        """Sorted phi ordinals of all tuples.

        Uses the vectorised phi when the ordinal space fits int64 (the
        tuples are pre-validated, so the array path is exact); falls back
        to arbitrary-precision Python integers otherwise.
        """
        mapper = self._schema.mapper
        if self._tuples and mapper.fits_int64:
            from repro.core.phi import phi_array

            ordinals = phi_array(self.to_array(), mapper.domain_sizes)
            ordinals.sort()
            return [int(o) for o in ordinals]
        return sorted(mapper.phi(t) for t in self._tuples)

    def to_array(self) -> np.ndarray:
        """The tuples as a ``(rows, arity)`` int64 numpy array."""
        if not self._tuples:
            return np.empty((0, self._schema.arity), dtype=np.int64)
        return np.asarray(self._tuples, dtype=np.int64)

    def decoded_rows(self) -> List[Tuple]:
        """All tuples mapped back to application values."""
        return [self._schema.decode_tuple(t) for t in self._tuples]

    # ------------------------------------------------------------------
    # Size accounting (used by the evaluation)
    # ------------------------------------------------------------------

    def uncompressed_bytes(self) -> int:
        """Fixed-width storage size: tuples times the per-tuple byte width.

        This is the "size of the database before coding" denominator of
        Figure 5.7's compression formula.
        """
        from repro.core.runlength import TupleLayout

        return len(self._tuples) * TupleLayout(self._schema.domain_sizes).tuple_bytes
