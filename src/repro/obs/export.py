"""Exporters: JSON-lines events, Prometheus text, and a human table.

Three consumers, three formats, one registry:

* :func:`jsonl_lines` / :func:`write_jsonl` — an event log for machines:
  one JSON object per metric and per retained span.  The CLI's global
  ``--metrics <path>`` flag dumps this after any command, and CI uploads
  it next to the benchmark JSON.
* :func:`prometheus_text` — the Prometheus exposition format (metric
  names mangled ``disk.blocks_read`` -> ``repro_disk_blocks_read``,
  histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``).
* :func:`stats_table` — the ``repro stats`` operator view: aligned
  name/value rows, histograms summarised as count/mean/total.

All three iterate :meth:`MetricsRegistry.metrics`, which is name-sorted,
so output is deterministic for golden tests.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterator, List, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "jsonl_lines",
    "prometheus_text",
    "stats_table",
    "write_jsonl",
]


def _prom_name(name: str) -> str:
    """Mangle a dotted metric name into a Prometheus series name."""
    return "repro_" + name.replace(".", "_")


def _prom_value(value: Union[int, float]) -> str:
    """Render a sample value (Prometheus uses ``+Inf``, not ``inf``)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value):
            return str(int(value))
    return str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} histogram")
            for le, count in metric.cumulative_counts():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(le)}"}} {count}'
                )
            lines.append(f"{name}_sum {metric.sum}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def jsonl_lines(
    registry: Optional[MetricsRegistry],
    tracer: Optional[Tracer] = None,
) -> Iterator[str]:
    """One compact JSON object per metric, then per retained span.

    Metric events carry ``{"event": "metric", "type", "name", ...}``;
    span events carry ``{"event": "span", ...}`` with ``parent_id`` for
    tree reconstruction.  Keys are sorted for determinism.
    """
    def dump(obj: object) -> str:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    if registry is not None:
        for metric in registry.metrics():
            if isinstance(metric, Counter):
                yield dump(
                    {
                        "event": "metric",
                        "type": "counter",
                        "name": metric.name,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Gauge):
                yield dump(
                    {
                        "event": "metric",
                        "type": "gauge",
                        "name": metric.name,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Histogram):
                yield dump(
                    {
                        "event": "metric",
                        "type": "histogram",
                        "name": metric.name,
                        "sum": metric.sum,
                        "count": metric.count,
                        "buckets": [
                            [
                                "inf" if math.isinf(le) else le,
                                n,
                            ]
                            for le, n in metric.cumulative_counts()
                        ],
                    }
                )
    if tracer is not None:
        for span in tracer.finished_spans():
            row = span.as_dict()
            row["event"] = "span"
            yield dump(row)


def write_jsonl(
    path_or_file: Union[str, IO[str]],
    registry: Optional[MetricsRegistry],
    tracer: Optional[Tracer] = None,
) -> int:
    """Write the JSONL export to a path or open text file; returns rows."""
    lines = list(jsonl_lines(registry, tracer))
    payload = "".join(line + "\n" for line in lines)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path_or_file.write(payload)
    return len(lines)


def stats_table(
    registry: MetricsRegistry, *, title: str = "observability"
) -> str:
    """The registry as an aligned, human-readable table.

    Counters and gauges print one value; histograms print observation
    count, mean, and total.  An empty registry yields a one-line note
    rather than an empty table.
    """
    rows: List[List[str]] = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            rows.append(
                [
                    metric.name,
                    f"n={metric.count}",
                    f"mean={metric.mean:.3f} ms",
                    f"total={metric.sum:.3f} ms",
                ]
            )
        else:
            kind = "gauge" if isinstance(metric, Gauge) else "counter"
            value = metric.value
            shown = (
                f"{value:.3f}" if isinstance(value, float) else str(value)
            )
            rows.append([metric.name, shown, kind, ""])
    if not rows:
        return f"-- {title}: no metrics recorded\n"
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = [f"-- {title} ({len(rows)} metrics)"]
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append("   " + "  ".join(cells).rstrip())
    return "\n".join(lines) + "\n"
