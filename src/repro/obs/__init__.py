"""repro.obs — the unified observability layer (docs/OBSERVABILITY.md).

One pipeline for every number the system can report about itself:

* :mod:`repro.obs.metrics` — the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms;
* :mod:`repro.obs.tracing` — span-based :class:`~repro.obs.tracing.Tracer`
  with parent nesting, per-span attributes, and ring-buffer retention;
* :mod:`repro.obs.runtime` — the global on/off switch (off by default;
  instrumented hot paths cost one ``is None`` check when off);
* :mod:`repro.obs.export` — JSON-lines, Prometheus text, and the human
  ``repro stats`` table;
* :mod:`repro.obs.profile` — per-query
  :class:`~repro.obs.profile.QueryProfile` (the Figure 5.8 ``N`` and the
  Figure 5.9 stage decomposition for one live query);
* :mod:`repro.obs.snapshot` — the ``as_dict()`` protocol shared by the
  legacy per-subsystem stats dataclasses.

Quick start::

    from repro.obs import runtime, export

    registry, tracer = runtime.enable()
    ... run queries / scrubs / loads ...
    print(export.stats_table(registry))
    runtime.disable()
"""

from repro.obs.export import (
    jsonl_lines,
    prometheus_text,
    stats_table,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import QueryProfile, QueryProfiler
from repro.obs.snapshot import StatsSnapshot, publish, snapshot_dataclass
from repro.obs.tracing import DEFAULT_SPAN_CAPACITY, Span, Tracer
from repro.obs import export, runtime

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryProfile",
    "QueryProfiler",
    "Span",
    "StatsSnapshot",
    "Tracer",
    "export",
    "jsonl_lines",
    "prometheus_text",
    "publish",
    "runtime",
    "snapshot_dataclass",
    "stats_table",
    "write_jsonl",
]
