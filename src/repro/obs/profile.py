"""Per-query I/O profiles: EXPLAIN ANALYZE for the Section 5.3 queries.

Figure 5.8's metric is ``N`` — data blocks accessed per range query.
:class:`QueryProfile` captures exactly that for every *live* query, plus
the Figure 5.9 stage decomposition (I/O time, decode time, filter time)
and the cache story (raw-payload and decoded-block hits), so any single
``table.select`` can be explained the way the paper explains its
averages.

The profile is built from **deltas of the always-on stats objects**
(:class:`~repro.storage.disk.DiskStats`,
:class:`~repro.storage.buffer.BufferStats`), not from the global
registry — so profiles work with observability disabled, and the test
suite can cross-check ``profile.blocks_read`` against the disk counters
directly (Fig 5.8 parity).  When the global registry *is* enabled, the
query path additionally publishes the same numbers as ``query.*``
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # circular at type level only (storage imports obs)
    from repro.storage.buffer import BufferStats
    from repro.storage.disk import DiskStats

__all__ = ["QueryProfile", "QueryProfiler"]


@dataclass
class QueryProfile:
    """Access-cost breakdown of one executed query.

    ``blocks_read`` counts *disk* block reads (the Figure 5.8 ``N``):
    buffer-pool hits do not move it, which is the honest accounting —
    a warm cache is precisely the absence of block accesses.
    ``stages`` holds wall-clock milliseconds per stage (``fetch_decode``
    — block fetch plus AVQ decode; ``filter`` — predicate evaluation).
    """

    access_path: str
    candidate_blocks: int
    blocks_read: int
    bytes_read: int
    io_ms: float
    cache_hits: int
    cache_misses: int
    decoded_hits: int
    decoded_misses: int
    tuples_examined: int
    matched: int
    skipped_blocks: int
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Summed stage time (wall clock, not simulated I/O)."""
        return sum(self.stages.values())

    @property
    def cache_hit_rate(self) -> float:
        """Raw-payload hit fraction (0.0 with no pool traffic)."""
        accesses = self.cache_hits + self.cache_misses
        if accesses == 0:
            return 0.0
        return self.cache_hits / accesses

    def as_dict(self) -> Dict[str, object]:
        """The profile as one plain dict (JSONL/report feed)."""
        return {
            "access_path": self.access_path,
            "candidate_blocks": self.candidate_blocks,
            "blocks_read": self.blocks_read,
            "bytes_read": self.bytes_read,
            "io_ms": self.io_ms,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "decoded_hits": self.decoded_hits,
            "decoded_misses": self.decoded_misses,
            "tuples_examined": self.tuples_examined,
            "matched": self.matched,
            "skipped_blocks": self.skipped_blocks,
            "stages": dict(self.stages),
        }

    def explain(self) -> str:
        """A multi-line EXPLAIN-ANALYZE-style rendering."""
        lines = [
            f"access path: {self.access_path}",
            f"blocks: {self.blocks_read} read of "
            f"{self.candidate_blocks} candidates "
            f"(N = {self.blocks_read}, {self.bytes_read:,} bytes)",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            f" raw, {self.decoded_hits} hits / {self.decoded_misses} "
            f"misses decoded",
            f"tuples: {self.matched} matched of "
            f"{self.tuples_examined} examined",
            f"simulated I/O: {self.io_ms:.2f} ms",
        ]
        if self.stages:
            stages = ", ".join(
                f"{name} {ms:.3f} ms" for name, ms in self.stages.items()
            )
            lines.append(f"stages: {stages}")
        if self.skipped_blocks:
            lines.append(
                f"DEGRADED: {self.skipped_blocks} quarantined block(s) "
                f"skipped"
            )
        return "\n".join(lines)


class QueryProfiler:
    """Brackets one query execution and derives its profile from deltas.

    Snapshot the stats objects at construction, run the query, then call
    :meth:`finish` with the query-shaped facts (access path, candidate
    and match counts, stage times).  The disk/buffer numbers are the
    *deltas* since construction, so concurrent-free single-threaded use
    attributes exactly this query's I/O to this profile.
    """

    def __init__(
        self,
        disk_stats: "DiskStats",
        buffer_stats: Optional["BufferStats"] = None,
    ) -> None:
        self._disk = disk_stats
        self._buffer = buffer_stats
        self._blocks_read0 = disk_stats.blocks_read
        self._bytes_read0 = disk_stats.bytes_read
        self._elapsed0 = disk_stats.elapsed_ms
        if buffer_stats is not None:
            self._hits0 = buffer_stats.hits
            self._misses0 = buffer_stats.misses
            self._dec_hits0 = buffer_stats.decoded_hits
            self._dec_misses0 = buffer_stats.decoded_misses
        else:
            self._hits0 = self._misses0 = 0
            self._dec_hits0 = self._dec_misses0 = 0

    def finish(
        self,
        *,
        access_path: str,
        candidate_blocks: int,
        tuples_examined: int,
        matched: int,
        skipped_blocks: int = 0,
        stages: Optional[Dict[str, float]] = None,
    ) -> QueryProfile:
        """Close the bracket and build the profile."""
        buffer = self._buffer
        if buffer is not None:
            cache_hits = buffer.hits - self._hits0
            cache_misses = buffer.misses - self._misses0
            decoded_hits = buffer.decoded_hits - self._dec_hits0
            decoded_misses = buffer.decoded_misses - self._dec_misses0
        else:
            cache_hits = cache_misses = 0
            decoded_hits = decoded_misses = 0
        return QueryProfile(
            access_path=access_path,
            candidate_blocks=candidate_blocks,
            blocks_read=self._disk.blocks_read - self._blocks_read0,
            bytes_read=self._disk.bytes_read - self._bytes_read0,
            io_ms=self._disk.elapsed_ms - self._elapsed0,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            decoded_hits=decoded_hits,
            decoded_misses=decoded_misses,
            tuples_examined=tuples_examined,
            matched=matched,
            skipped_blocks=skipped_blocks,
            stages=dict(stages) if stages else {},
        )
