"""The process-wide observability switch and hot-path helpers.

Observability is **off by default**: ``REGISTRY`` and ``TRACER`` are
``None``, and every instrumented call site guards with one module
attribute load plus an ``is None`` test before doing anything else.
That guard is the entire disabled-mode cost — the acceptance bar is a
< 5 % throughput delta on the parallel-codec benchmark, and a pointer
compare per *block* operation is far below it.

Enable explicitly::

    from repro.obs import runtime
    registry, tracer = runtime.enable()
    ... run queries, scrubs, loads ...
    print(export.stats_table(registry))
    runtime.disable()

or scoped (tests, experiment drivers, the CLI)::

    with runtime.scoped() as (registry, tracer):
        ...

Worker processes spawned by :mod:`repro.core.parallel` inherit the
*default* (disabled) state — their metrics are not merged back.  The
serial paths of the same operations are fully instrumented, which is
what the per-stage breakdowns report (docs/OBSERVABILITY.md).

``now_ms`` wraps ``time.perf_counter`` so instrumented modules never
touch the wall clock themselves — lint rule R008 confines raw clock
calls to :mod:`repro.perf` and :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import ContextManager, Iterator, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import DEFAULT_SPAN_CAPACITY, AttrValue, Span, Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "now_ms",
    "scoped",
    "span",
]

#: The active registry, or ``None`` when observability is off.  Hot
#: paths read this attribute directly (``runtime.REGISTRY``) — do not
#: rebind it except through :func:`enable`/:func:`disable`.
REGISTRY: Optional[MetricsRegistry] = None  # repro: shared-state[process-wide observability switch; rebound only by enable/disable/scoped, single-threaded today and latched before the serving layer forks]

#: The active tracer, or ``None`` when observability is off.
TRACER: Optional[Tracer] = None  # repro: shared-state[process-wide tracing switch; rebound only by enable/disable/scoped, same latching plan as REGISTRY]


def now_ms() -> float:
    """Milliseconds on the monotonic clock (differences only)."""
    return time.perf_counter() * 1000.0


def enable(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    *,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
) -> Tuple[MetricsRegistry, Tracer]:
    """Turn observability on, installing (or creating) the instruments.

    Idempotent in the useful sense: passing no arguments while already
    enabled keeps the existing instruments, so libraries may call
    ``enable()`` defensively without clobbering a caller's registry.
    """
    global REGISTRY, TRACER
    if registry is not None:
        REGISTRY = registry
    elif REGISTRY is None:
        REGISTRY = MetricsRegistry()
    if tracer is not None:
        TRACER = tracer
    elif TRACER is None:
        TRACER = Tracer(span_capacity)
    return REGISTRY, TRACER


def disable() -> None:
    """Turn observability off (instruments are dropped, not reset)."""
    global REGISTRY, TRACER
    REGISTRY = None
    TRACER = None


def is_enabled() -> bool:
    """Whether a registry is currently installed."""
    return REGISTRY is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None``."""
    return REGISTRY


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None``."""
    return TRACER


@contextmanager
def scoped(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    *,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
) -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """Enable fresh instruments for a block, restoring the prior state.

    Always installs *new* instruments (unless given explicitly), so a
    scoped measurement never mixes with whatever was active outside —
    the experiment drivers use this to isolate one run's metrics.
    """
    global REGISTRY, TRACER
    prior = (REGISTRY, TRACER)
    REGISTRY = registry if registry is not None else MetricsRegistry()
    TRACER = tracer if tracer is not None else Tracer(span_capacity)
    try:
        yield REGISTRY, TRACER
    finally:
        REGISTRY, TRACER = prior


class _NullSpanContext:
    """A reusable no-op stand-in for a span when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


def span(
    name: str, **attributes: AttrValue
) -> ContextManager[Union[Span, None]]:
    """A span on the active tracer, or a shared no-op when disabled.

    The convenience form for coarse call sites (a whole query, a scrub
    pass, a CLI command)::

        with runtime.span("scrub.pass", blocks=n):
            ...

    Per-block hot paths should instead guard on ``runtime.REGISTRY``
    and record histogram observations — constructing a span per block
    would dominate the work being measured.
    """
    tracer = TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)
