"""The common snapshot protocol over the legacy stats dataclasses.

Before the registry existed, five disconnected dataclasses carried the
system's counters: :class:`~repro.storage.disk.DiskStats`,
:class:`~repro.storage.buffer.BufferStats`,
:class:`~repro.storage.wal.WALStats`,
:class:`~repro.storage.faults.FaultStats`, and
:class:`~repro.storage.packer.PackStats`.  They stay — their public
fields are API — but they now share one protocol: ``as_dict()`` returns
a flat, stably-keyed mapping (tested for key stability in
``tests/obs/test_snapshot_protocol.py``) and ``reset()`` zeroes the
mutable ones.  Their live values are *also* published to the global
registry by the instrumented call sites, so exporters see one pipeline.

:func:`publish` folds any snapshot into a registry as gauges under a
prefix — the bridge the CLI uses to put a table's ``DiskStats`` next to
the registry-native counters in one ``repro stats`` table.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, Union

try:  # Protocol moved into typing in 3.8; keep a guard for clarity
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - python < 3.8 unsupported anyway
    raise

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

__all__ = ["StatsSnapshot", "publish", "snapshot_dataclass"]

Number = Union[int, float]


@runtime_checkable
class StatsSnapshot(Protocol):
    """What every stats object promises: a flat numeric dict of itself."""

    def as_dict(self) -> Dict[str, Number]:
        """All counters (and derived rates) as one flat mapping."""
        ...  # pragma: no cover - protocol body


def snapshot_dataclass(stats: object) -> Dict[str, Number]:
    """Default ``as_dict`` body: every dataclass field, in field order.

    The five stats classes implement ``as_dict`` by delegating here and
    appending their derived properties (hit rates, utilisation), so the
    field list and the snapshot can never drift apart.
    """
    if not is_dataclass(stats) or isinstance(stats, type):
        raise ObservabilityError(
            f"snapshot_dataclass needs a dataclass instance, got "
            f"{type(stats).__name__}"
        )
    out: Dict[str, Number] = {}
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ObservabilityError(
                f"{type(stats).__name__}.{f.name} is not numeric; "
                f"snapshots are flat numeric mappings"
            )
        out[f.name] = value
    return out


def publish(
    registry: MetricsRegistry, prefix: str, stats: StatsSnapshot
) -> None:
    """Fold one snapshot into ``registry`` as gauges under ``prefix``.

    Gauges, not counters: a snapshot is a point-in-time reading that may
    be re-published (and, after a ``reset()``, go down).
    """
    for key, value in stats.as_dict().items():
        registry.set_gauge(f"{prefix}.{key}", value)
