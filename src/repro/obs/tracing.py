"""Span tracing: nested, attributed timing of whole operations.

Where the registry answers "how many and how long *in aggregate*",
spans answer "what happened *inside this one operation*": a query span
contains its decode spans, a recovery span contains its replay span, and
the JSONL export reconstructs the tree from ``parent_id``.  This is the
Figure 5.9 decomposition applied to a single live request instead of an
averaged benchmark.

Spans are context managers and nest through a per-tracer stack::

    with tracer.span("query", table="emp") as outer:
        with tracer.span("decode"):        # parent_id == outer.span_id
            ...

The nesting stack is **context-local** (:class:`contextvars.ContextVar`),
so concurrent asyncio tasks and worker threads each nest independently —
the serving layer opens a span per request across thousands of
interleaved connections without tripping the strict-nesting check, which
only ever compares spans from the *same* logical execution context.
The finished-span ring buffer and id counter are latched, making
:meth:`Tracer.span` safe to call from any thread.

Finished spans land in a **ring buffer** (``capacity`` spans, oldest
evicted first) so a long-lived process can stay instrumented without
unbounded memory.  The clock is injectable for deterministic tests; the
default is ``time.perf_counter`` — this module and :mod:`repro.perf` are
the only places allowed to touch it (lint rule R008).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError

__all__ = ["DEFAULT_SPAN_CAPACITY", "Span", "Tracer"]

#: Finished spans retained by default.
DEFAULT_SPAN_CAPACITY = 1024

AttrValue = Union[str, int, float, bool, None]


class Span:
    """One timed operation: a name, a parent, attributes, and a window.

    Times are milliseconds on the tracer's clock (``perf_counter``-based
    by default, so only *differences* are meaningful).  Attributes are
    small scalars — block counts, paths, access-path names — attached at
    creation or via :meth:`set_attribute` while the span is open.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "start_ms",
        "end_ms",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        start_ms: float,
        attributes: Dict[str, AttrValue],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attributes = attributes

    @property
    def finished(self) -> bool:
        """Whether the span has ended."""
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (0.0 while still open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def set_attribute(self, key: str, value: AttrValue) -> None:
        """Attach one attribute (allowed until the span is finished)."""
        if self.finished:
            raise ObservabilityError(
                f"span {self.name!r} is finished; attributes are frozen"
            )
        self.attributes[key] = value

    def as_dict(self) -> Dict[str, object]:
        """The span as one plain dict (JSONL exporter row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_ms:.3f} ms" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracer._finish(self._span, failed=exc_type is not None)


class Tracer:
    """Creates, nests, and retains spans.

    ``capacity`` bounds the ring buffer of *finished* spans; open spans
    live on the nesting stack until closed.  ``clock`` returns seconds
    (``perf_counter`` semantics) and exists so tests can drive time
    deterministically.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"tracer capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._clock = clock if clock is not None else time.perf_counter
        self._finished: Deque[Span] = deque(maxlen=capacity)
        # The nesting stack is context-local: each asyncio task and each
        # thread sees (and mutates) its own stack, so interleaved spans
        # from concurrent requests never trip the strict-nesting check.
        # Stored as an immutable tuple so a context inherited at task
        # creation shares no mutable state with its parent.
        self._stack_var: ContextVar[Tuple[Span, ...]] = ContextVar(
            "repro-span-stack", default=()
        )
        # Latch for the cross-context shared state: the id counter and
        # the finished-span ring buffer (reader threads finish spans).
        self._latch = threading.Lock()
        self._next_id = 1
        self._dropped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum finished spans retained."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring buffer so far."""
        return self._dropped

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span *in this context*, or ``None``."""
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def finished_spans(self) -> List[Span]:
        """Retained finished spans, oldest first."""
        with self._latch:
            return list(self._finished)

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def now_ms(self) -> float:
        """The tracer clock, in milliseconds."""
        return self._clock() * 1000.0

    def span(self, name: str, **attributes: AttrValue) -> _SpanContext:
        """Open a child of the current span (or a root span).

        Use as a context manager; the span ends when the block exits,
        and an exception escaping the block marks ``failed=True`` on the
        span's attributes before it is retained.
        """
        if not name:
            raise ObservabilityError("span name must be non-empty")
        with self._latch:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(stack),
            start_ms=self.now_ms(),
            attributes=dict(attributes),
        )
        self._stack_var.set(stack + (span,))
        return _SpanContext(self, span)

    def annotate(self, key: str, value: AttrValue) -> None:
        """Attach an attribute to the innermost open span (no-op outside)."""
        span = self.current_span
        if span is not None:
            span.set_attribute(key, value)

    def _finish(self, span: Span, *, failed: bool) -> None:
        stack = self._stack_var.get()
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order (spans must "
                f"nest strictly within one task or thread)"
            )
        self._stack_var.set(stack[:-1])
        if failed:
            span.attributes["failed"] = True
        span.end_ms = self.now_ms()
        with self._latch:
            if len(self._finished) == self._capacity:
                self._dropped += 1
            self._finished.append(span)

    def reset(self) -> None:
        """Drop all retained spans (open spans are unaffected)."""
        with self._latch:
            self._finished.clear()
            self._dropped = 0

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------

    def stage_totals(self) -> Dict[str, float]:
        """``{span name: summed duration_ms}`` over retained spans.

        The :class:`~repro.perf.timer.StageTimer`-compatible view: the
        fig59 driver and the CLI report per-stage totals from here
        instead of threading a timer object through every call.
        """
        totals: Dict[str, float] = {}
        with self._latch:
            for span in self._finished:
                totals[span.name] = (
                    totals.get(span.name, 0.0) + span.duration_ms
                )
        return totals
