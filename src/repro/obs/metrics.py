"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's whole evaluation is counting: Figure 5.8 counts blocks
accessed per range query, Figure 5.9 decomposes response time into
per-block code/decode and I/O stages.  Every subsystem used to keep its
own ad-hoc dataclass of counters; the registry gives them one shared
vocabulary so exporters, the CLI, and the experiment drivers read a
single pipeline (docs/OBSERVABILITY.md lists every metric name).

Design constraints, in order:

* **Cheap when off.**  Instrumented hot paths guard on
  ``runtime.REGISTRY is None`` and never reach this module when
  observability is disabled (the default).
* **Cheap when on.**  ``inc``/``observe`` are a dict lookup plus an
  integer/float update; histograms use pre-computed fixed bucket
  boundaries and a linear scan over a handful of buckets.  No wall-clock
  calls happen here — callers time with ``runtime.now_ms()`` (the one
  sanctioned ``perf_counter`` wrapper, rule R008) and hand in the
  milliseconds.
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` orders
  metrics by name so exports and golden tests are stable.

Metric names are dotted lowercase (``disk.blocks_read``); the Prometheus
exporter mangles dots to underscores and prefixes ``repro_``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Metric names: dotted lowercase words, digits and underscores.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Default histogram boundaries for millisecond timings: roughly
#: logarithmic from 10 µs to 10 s, chosen so the Figure 5.9 per-block
#: stages (sub-millisecond code/decode, ~30 ms simulated I/O) land in
#: distinct buckets.  Observations above the last boundary fall into the
#: implicit +Inf bucket.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0, 10000.0,
)

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (blocks read, cache hits...)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0: counters only go up)."""
        if n < 0:
            raise ObservabilityError(
                f"counter {self.name}: cannot add negative {n}"
            )
        self.value += n

    def reset(self) -> None:
        """Zero the count (registration survives)."""
        self.value = 0


class Gauge:
    """A value that can go up and down (resident frames, cursor position)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (may be negative)."""
        self.value += n

    def dec(self, n: Number = 1) -> None:
        """Subtract ``n``."""
        self.value -= n

    def reset(self) -> None:
        """Zero the value (registration survives)."""
        self.value = 0


class Histogram:
    """A fixed-boundary histogram of observations (per-stage timings).

    ``boundaries`` are ascending upper bounds; an observation lands in
    the first bucket whose boundary is >= the value, or in the implicit
    +Inf bucket past the last boundary.  ``counts`` therefore has
    ``len(boundaries) + 1`` entries.  ``sum``/``count`` make means and
    Prometheus ``_sum``/``_count`` series exact regardless of bucketing.
    """

    __slots__ = ("name", "help", "boundaries", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_MS_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ObservabilityError(
                f"histogram {name}: needs at least one bucket boundary"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name}: boundaries must be strictly "
                f"ascending, got {bounds}"
            )
        self.name = name
        self.help = help
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.boundaries, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def reset(self) -> None:
        """Zero every bucket (boundaries survive)."""
        self.counts = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A process-wide, name-keyed store of metrics.

    Instruments are created on first use (``counter``/``gauge``/
    ``histogram`` get-or-create) so instrumentation sites need no setup
    ceremony; re-registering a name as a different type is an
    :class:`~repro.errors.ObservabilityError` — silently returning the
    wrong instrument would corrupt both series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, factory, kind) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            if not _NAME_RE.match(name):
                raise ObservabilityError(
                    f"bad metric name {name!r}: use dotted lowercase "
                    f"words like 'disk.blocks_read'"
                )
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ObservabilityError(
                f"metric {name!r} is a {type(metric).__name__}, not a "
                f"{kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Counter(name, help), Counter
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Gauge(name, help), Gauge
        )

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_MS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name``.

        The boundaries are fixed at creation; later calls with different
        boundaries return the existing histogram unchanged (bucket
        layouts must not shift mid-run).
        """
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Histogram(name, boundaries, help), Histogram
        )

    # ------------------------------------------------------------------
    # Hot-path conveniences (one call, no instrument juggling)
    # ------------------------------------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        """Increment the counter ``name`` (created on first use)."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: Number) -> None:
        """Record one observation on the histogram ``name``."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name``."""
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        """The instrument behind ``name``, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        """The scalar value of a counter/gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise ObservabilityError(
                f"metric {name!r} is a histogram; read .sum/.count/.mean"
            )
        return metric.value

    def metrics(self) -> Iterator[Metric]:
        """Every registered instrument, ordered by name."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def snapshot(self) -> Dict[str, Union[Number, Dict[str, object]]]:
        """All metrics as one plain, name-sorted dict.

        Counters and gauges map to their scalar value; histograms map to
        ``{"sum", "count", "mean", "buckets"}`` with ``buckets`` keyed by
        upper bound (the ``inf`` key is the overflow bucket).
        """
        out: Dict[str, Union[Number, Dict[str, object]]] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "mean": metric.mean,
                    "buckets": {
                        str(le): n for le, n in metric.cumulative_counts()
                    },
                }
            else:
                out[metric.name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every instrument; registrations and boundaries survive."""
        for metric in self._metrics.values():
            metric.reset()
