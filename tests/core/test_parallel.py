"""Parallel block coding must be a pure speedup: same bytes, same tuples.

Covers the ISSUE-2 property requirements: ``decode_blocks(encode_blocks(R))
== R`` for random mixed-radix relations across worker counts {1, 2, 8},
chained and unchained, and parallel/serial byte-identity.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import BlockCodec
from repro.core.parallel import (
    SERIAL_THRESHOLD,
    ParallelBlockCodec,
    decode_blocks,
    decode_ordinal_blocks,
    encode_blocks,
    resolve_workers,
)
from repro.errors import BlockOverflowError, CodecError
from repro.storage.packer import pack_runs

WORKER_COUNTS = [1, 2, 8]


def random_runs(sizes, n, seed, block_size=512, *, chained=True):
    codec = BlockCodec(sizes, chained=chained)
    rng = random.Random(seed)
    space = codec.mapper.space_size
    ordinals = sorted(rng.randrange(space) for _ in range(n))
    return codec, ordinals, pack_runs(codec, ordinals, block_size)


class TestResolveWorkers:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit_count_honoured(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            resolve_workers(-1)


class TestRoundTrip:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chained", [True, False])
    def test_decode_of_encode_recovers_relation(self, workers, chained):
        codec, ordinals, runs = random_runs(
            [8, 16, 64, 64], 2000, seed=workers, chained=chained
        )
        payloads = encode_blocks(codec, runs, workers=workers)
        decoded = decode_blocks(codec, payloads, workers=workers)
        flat = [t for block in decoded for t in block]
        assert flat == [codec.mapper.phi_inverse(o) for o in ordinals]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_ordinal_decode_recovers_ordinals(self, workers):
        codec, ordinals, runs = random_runs([30, 7, 100], 1500, seed=3)
        payloads = encode_blocks(codec, runs, workers=workers)
        decoded = decode_ordinal_blocks(codec, payloads, workers=workers)
        assert [o for block in decoded for o in block] == ordinals

    @settings(max_examples=10, deadline=None)
    @given(
        sizes=st.lists(st.integers(2, 40), min_size=2, max_size=6),
        n=st.integers(50, 400),
        seed=st.integers(0, 10_000),
    )
    def test_property_roundtrip_two_workers(self, sizes, n, seed):
        codec, ordinals, runs = random_runs(sizes, n, seed, block_size=256)
        payloads = encode_blocks(codec, runs, workers=2)
        decoded = decode_blocks(codec, payloads, workers=2)
        flat = [t for block in decoded for t in block]
        assert flat == [codec.mapper.phi_inverse(o) for o in ordinals]


class TestByteIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chained", [True, False])
    def test_parallel_matches_serial_bytes(self, workers, chained):
        codec, _, runs = random_runs(
            [8, 16, 64, 64], 3000, seed=17, chained=chained
        )
        assert len(runs) >= SERIAL_THRESHOLD  # exercise the fan-out path
        serial = [
            codec.encode_block(
                [codec.mapper.phi_inverse(o) for o in run]
            )
            for run in runs
        ]
        assert encode_blocks(codec, runs, workers=workers) == serial

    def test_parallel_matches_serial_bytes_first_representative(self):
        # A non-median strategy forces the scalar path in every worker.
        codec = BlockCodec([12, 12, 12], representative="first")
        ordinals = sorted(
            random.Random(5).randrange(codec.mapper.space_size)
            for _ in range(1200)
        )
        runs = pack_runs(codec, ordinals, 512)
        serial = [
            codec.encode_block([codec.mapper.phi_inverse(o) for o in run])
            for run in runs
        ]
        assert encode_blocks(codec, runs, workers=2) == serial


class TestParallelBlockCodec:
    def test_reusable_pool_across_calls(self):
        codec, ordinals, runs = random_runs([10, 10, 10], 2500, seed=9)
        with ParallelBlockCodec(codec, workers=2) as pcodec:
            first = pcodec.encode_blocks(runs)
            second = pcodec.encode_blocks(runs)
            assert first == second
            decoded = pcodec.decode_ordinal_blocks(first)
        assert [o for block in decoded for o in block] == ordinals

    def test_close_is_idempotent(self):
        codec = BlockCodec([4, 4, 4])
        pcodec = ParallelBlockCodec(codec, workers=2)
        pcodec.close()
        pcodec.close()

    def test_workers_resolved(self):
        codec = BlockCodec([4, 4, 4])
        assert ParallelBlockCodec(codec, workers=3).workers == 3
        assert ParallelBlockCodec(codec, workers=1).workers == 1

    def test_small_input_stays_serial(self):
        codec, _, runs = random_runs([16, 16], 40, seed=2, block_size=128)
        small = runs[: SERIAL_THRESHOLD - 1]
        with ParallelBlockCodec(codec, workers=8) as pcodec:
            pcodec.encode_blocks(small)
            assert pcodec._executor is None  # no pool was ever spawned

    def test_empty_run_rejected(self):
        codec = BlockCodec([4, 4])
        with pytest.raises(CodecError):
            encode_blocks(codec, [[1], []], workers=1)

    def test_capacity_overflow_raises(self):
        codec, _, runs = random_runs([64, 64, 64], 800, seed=21)
        merged = [o for run in runs for o in run]
        for workers in (1, 2):
            with pytest.raises(BlockOverflowError):
                encode_blocks(codec, [merged], workers=workers, capacity=64)

    def test_capacity_respected_in_parallel(self):
        codec, _, runs = random_runs([8, 8, 8, 8], 2000, seed=23)
        payloads = encode_blocks(codec, runs, workers=2, capacity=512)
        assert all(len(p) <= 512 for p in payloads)
