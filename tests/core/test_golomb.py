"""Unit and property tests for the Golomb-Rice block codec."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import BlockCodec
from repro.core.golomb import (
    GOLOMB_HEADER_BYTES,
    GolombBlockCodec,
    choose_rice_parameter,
)
from repro.errors import BlockOverflowError, CodecError

PAPER_DOMAINS = [8, 16, 64, 64, 64]

PAPER_BLOCK = [
    (3, 8, 32, 25, 19),
    (3, 8, 32, 34, 12),
    (3, 8, 36, 39, 35),
    (3, 9, 24, 32, 0),
    (3, 9, 26, 27, 37),
]


class TestRiceParameter:
    def test_empty_and_zero_gaps(self):
        assert choose_rice_parameter([]) == 0
        assert choose_rice_parameter([0, 0, 0]) == 0

    def test_tracks_mean_magnitude(self):
        assert choose_rice_parameter([1] * 10) == 0
        assert choose_rice_parameter([256] * 10) == 8
        assert choose_rice_parameter([1000] * 10) == 9

    def test_capped(self):
        assert choose_rice_parameter([2**200]) == 63


class TestGolombCodec:
    @pytest.fixture
    def codec(self):
        return GolombBlockCodec(PAPER_DOMAINS)

    def test_round_trip_paper_block(self, codec):
        data = codec.encode_block(PAPER_BLOCK)
        assert codec.decode_block(data) == sorted(PAPER_BLOCK)

    def test_single_tuple(self, codec):
        data = codec.encode_block([(1, 2, 3, 4, 5)])
        assert codec.decode_block(data) == [(1, 2, 3, 4, 5)]
        assert len(data) == GOLOMB_HEADER_BYTES + 5

    def test_duplicates(self, codec):
        block = [(1, 2, 3, 4, 5)] * 10
        assert codec.decode_block(codec.encode_block(block)) == block

    def test_extremes(self, codec):
        block = [(0, 0, 0, 0, 0), (7, 15, 63, 63, 63)]
        assert codec.decode_block(codec.encode_block(block)) == block

    def test_size_prediction_exact(self, codec):
        ordinals = sorted(codec.mapper.phi(t) for t in PAPER_BLOCK)
        assert codec.encoded_size_of_ordinals(ordinals) == len(
            codec.encode_block(PAPER_BLOCK)
        )

    def test_capacity_enforced(self, codec):
        with pytest.raises(BlockOverflowError):
            codec.encode_block(PAPER_BLOCK, capacity=8)

    def test_empty_block_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.encode_block([])
        with pytest.raises(CodecError):
            codec.encoded_size_of_ordinals([])

    def test_truncated_stream_rejected(self, codec):
        data = codec.encode_block(PAPER_BLOCK)
        with pytest.raises(CodecError):
            codec.decode_block(data[:6])
        with pytest.raises(CodecError):
            codec.decode_block(data[: len(data) - 1])

    def test_corrupt_rice_parameter_rejected(self, codec):
        data = bytearray(codec.encode_block(PAPER_BLOCK))
        data[2] = 200
        with pytest.raises(CodecError):
            codec.decode_block(bytes(data))

    def test_beats_byte_rle_on_small_gap_blocks(self):
        """The point of the extension: bit granularity wins when gaps
        carry fewer bits than the byte codec's one-byte-per-field floor."""
        sizes = [4] * 15
        byte_codec = BlockCodec(sizes)
        bit_codec = GolombBlockCodec(sizes)
        rng = random.Random(11)
        space = byte_codec.mapper.space_size
        # dense relation: gaps ~ space/n small
        ordinals = sorted(rng.randrange(space // 1000) for _ in range(500))
        tuples = [byte_codec.mapper.phi_inverse(o) for o in ordinals]
        assert len(bit_codec.encode_block(tuples)) < len(
            byte_codec.encode_block(tuples)
        )


@st.composite
def schema_and_tuples(draw):
    arity = draw(st.integers(1, 5))
    sizes = draw(st.lists(st.integers(1, 300), min_size=arity, max_size=arity))
    n = draw(st.integers(1, 30))
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(0, s - 1) for s in sizes]),
            min_size=n,
            max_size=n,
        )
    )
    return sizes, rows


@given(schema_and_tuples())
@settings(max_examples=150, deadline=None)
def test_property_golomb_lossless(data):
    sizes, rows = data
    codec = GolombBlockCodec(sizes)
    decoded = codec.decode_block(codec.encode_block(rows))
    assert decoded == sorted(rows, key=codec.mapper.phi)


@given(schema_and_tuples())
@settings(max_examples=100, deadline=None)
def test_property_golomb_size_exact(data):
    sizes, rows = data
    codec = GolombBlockCodec(sizes)
    ordinals = sorted(codec.mapper.phi(t) for t in rows)
    assert codec.encoded_size_of_ordinals(ordinals) == len(
        codec.encode_block(rows)
    )
