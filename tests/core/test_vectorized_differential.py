"""Differential fuzzing: the vectorised codec against the scalar codec.

The vectorised path is gated on *byte identity* — every payload it
emits must equal the scalar encoder's output bit for bit, and every
payload it parses must yield exactly the scalar decoder's tuples (or
raise the same error class).  This suite drives both implementations
over hypothesis-generated schemas (1–8 attributes, mixed
cardinalities), random runs, adversarial corruptions, and the edge
blocks the format treats specially.

The scalar reference is always ``BlockCodec(sizes, vectorized=False)``:
the default constructor now delegates to the vectorised codec, so
comparing against it would be tautological.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.codec import BlockCodec
from repro.core.phi import OrdinalMapper
from repro.core.vectorized import VectorizedBlockCodec
from repro.errors import CodecError, DomainError

#: Schemas the parametrised edge tests run over: the paper's Figure 2.2
#: domains, the Figure 5.7 shape, odd byte widths, and binary domains.
EDGE_SCHEMAS = [
    [8, 16, 64, 64, 64],
    [4] * 15,
    [300, 5, 70000],
    [2, 2, 2],
    [1 << 12] * 4,
]


@st.composite
def schema_and_run(draw, min_tuples=1, max_tuples=40):
    """A random int64-safe schema plus a sorted ordinal run over it."""
    sizes = draw(st.lists(st.integers(2, 200), min_size=1, max_size=8))
    mapper = OrdinalMapper(sizes)
    assume(mapper.fits_int64)
    ordinals = draw(
        st.lists(
            st.integers(0, mapper.space_size - 1),
            min_size=min_tuples,
            max_size=max_tuples,
        )
    )
    return sizes, sorted(ordinals)


def scalar_reference(sizes):
    codec = BlockCodec(sizes, vectorized=False)
    assert codec.vectorized is False
    return codec


class TestEncodeByteIdentity:
    @given(schema_and_run())
    @settings(max_examples=120, deadline=None)
    def test_every_entry_point_matches_scalar_bytes(self, case):
        sizes, ordinals = case
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        tuples = [scalar.mapper.phi_inverse(o) for o in ordinals]
        expected = scalar.encode_block(tuples)
        assert vec.encode_run(ordinals) == expected
        assert vec.encode_tuples(np.asarray(tuples, dtype=np.int64)) == expected
        assert vec.try_encode_block(tuples) == expected
        assert vec.encode_runs([ordinals]) == [expected]

    @given(schema_and_run())
    @settings(max_examples=120, deadline=None)
    def test_delegating_codec_matches_forced_scalar(self, case):
        """The user-facing wiring: default BlockCodec == vectorized=False."""
        sizes, ordinals = case
        scalar = scalar_reference(sizes)
        fast = BlockCodec(sizes)
        tuples = [scalar.mapper.phi_inverse(o) for o in ordinals]
        payload = scalar.encode_block(tuples)
        assert fast.encode_block(tuples) == payload
        assert fast.encode_ordinals(ordinals) == payload
        assert fast.decode_block(payload) == scalar.decode_block(payload)
        assert fast.decode_ordinals(payload) == scalar.decode_ordinals(payload)

    @given(schema_and_run())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_tuple_identity(self, case):
        sizes, ordinals = case
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        payload = vec.encode_run(ordinals)
        expected = scalar.decode_block(payload)
        assert vec.decode_block(payload) == expected
        assert vec.decode_ordinals(payload) == ordinals
        assert vec.decode_blocks([payload]) == [expected]
        np.testing.assert_array_equal(
            vec.decode_ordinals_array(payload),
            np.asarray(ordinals, dtype=np.int64),
        )

    @given(schema_and_run(), st.integers(0, 64))
    @settings(max_examples=80, deadline=None)
    def test_trailing_slack_tolerated_like_scalar(self, case, slack):
        """Block payloads are padded to the block size; both decoders
        must ignore trailing zero slack identically."""
        sizes, ordinals = case
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        padded = vec.encode_run(ordinals) + b"\x00" * slack
        assert vec.decode_ordinals(padded) == scalar.decode_ordinals(padded)


class TestCorruptionDifferential:
    """Same payload, same damage — same error class (or same tuples)."""

    @staticmethod
    def _outcome(decode, payload):
        try:
            return ("ok", decode(payload))
        except CodecError:
            return ("CodecError", None)
        except DomainError:
            return ("DomainError", None)

    @given(schema_and_run(max_tuples=20), st.data())
    @settings(max_examples=150, deadline=None)
    def test_mutated_payload_parity(self, case, data):
        sizes, ordinals = case
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        payload = bytearray(vec.encode_run(ordinals))
        mode = data.draw(
            st.sampled_from(["flip", "truncate", "extend"]), label="mode"
        )
        if mode == "flip":
            pos = data.draw(
                st.integers(0, len(payload) - 1), label="pos"
            )
            payload[pos] ^= data.draw(st.integers(1, 255), label="xor")
        elif mode == "truncate":
            keep = data.draw(st.integers(0, len(payload) - 1), label="keep")
            payload = payload[:keep]
        else:
            extra = data.draw(
                st.binary(min_size=1, max_size=16), label="extra"
            )
            payload = payload + extra
        blob = bytes(payload)
        want = self._outcome(scalar.decode_ordinals, blob)
        got = self._outcome(vec.decode_ordinals, blob)
        assert got == want

    @pytest.mark.parametrize("sizes", EDGE_SCHEMAS)
    def test_structural_damage_messages_match_scalar(self, sizes):
        """The hand-built corruptions raise with the scalar's exact text."""
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        m = vec.tuple_bytes
        good = vec.encode_run([0, 1, 2])
        cases = [
            b"\x00\x00" + good[2:],          # zero tuple count
            b"\x00\x03\x00\x09" + good[4:],  # representative >= count
            good[: 4 + m - 1],               # truncated representative
            b"",                             # empty stream
        ]
        for blob in cases:
            with pytest.raises(CodecError) as scalar_err:
                scalar.decode_block(blob)
            with pytest.raises(CodecError) as vec_err:
                vec.decode_block(blob)
            assert str(vec_err.value) == str(scalar_err.value)


class TestEdgeBlocks:
    @pytest.mark.parametrize("sizes", EDGE_SCHEMAS)
    def test_empty_block_rejected(self, sizes):
        vec = VectorizedBlockCodec(sizes)
        with pytest.raises(CodecError):
            vec.encode_run([])
        with pytest.raises(CodecError):
            vec.encoded_size_of_run([])

    @pytest.mark.parametrize("sizes", EDGE_SCHEMAS)
    def test_single_tuple_block(self, sizes):
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        mid = vec.mapper.space_size // 2
        payload = vec.encode_run([mid])
        assert payload == scalar.encode_block(
            [scalar.mapper.phi_inverse(mid)]
        )
        assert vec.decode_ordinals(payload) == [mid]

    @pytest.mark.parametrize("sizes", EDGE_SCHEMAS)
    def test_all_equal_tuples(self, sizes):
        """Duplicate ordinals produce zero gaps — fully elided tails."""
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        run = [7 % vec.mapper.space_size] * 9
        tuples = [scalar.mapper.phi_inverse(o) for o in run]
        payload = vec.encode_run(run)
        assert payload == scalar.encode_block(tuples)
        assert vec.decode_ordinals(payload) == run

    @pytest.mark.parametrize("sizes", EDGE_SCHEMAS)
    def test_maximal_gap(self, sizes):
        """One gap spanning the whole ordinal space."""
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        run = [0, vec.mapper.space_size - 1]
        payload = vec.encode_run(run)
        assert payload == scalar.encode_block(
            [scalar.mapper.phi_inverse(o) for o in run]
        )
        assert vec.decode_ordinals(payload) == run

    def test_int64_boundary_space_encodes_identically(self):
        """Space of exactly 2**61 is the last vectorisable schema."""
        sizes = [1 << 31, 1 << 30]
        mapper = OrdinalMapper(sizes)
        assert mapper.space_size == 1 << 61
        assert mapper.fits_int64
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        run = [0, 1, (1 << 61) - 2, (1 << 61) - 1]
        payload = vec.encode_run(run)
        assert payload == scalar.encode_block(
            [scalar.mapper.phi_inverse(o) for o in run]
        )
        # Reassembly weights for this schema stay under 2**63 even for
        # all-0xFF corruption, so the decode path is available too.
        assert vec.decode_supported
        assert vec.decode_ordinals(payload) == run

    def test_beyond_int64_boundary_refuses_construction(self):
        sizes = [1 << 31, 1 << 31]  # space 2**62 > the 2**61 bound
        with pytest.raises(DomainError):
            VectorizedBlockCodec(sizes)

    def test_decode_unsafe_schema_encodes_but_refuses_decode(self):
        """Wide single-byte schemas can overflow digit reassembly under
        corruption; encoding stays byte-identical while decoding defers
        to the scalar path (and the delegating codec does so silently)."""
        sizes = [2] * 61  # space 2**61 fits; 61 weighted bytes do not
        scalar = scalar_reference(sizes)
        vec = VectorizedBlockCodec(sizes)
        assert not vec.decode_supported
        run = [0, 5, 1 << 60]
        tuples = [scalar.mapper.phi_inverse(o) for o in run]
        payload = vec.encode_run(run)
        assert payload == scalar.encode_block(tuples)
        with pytest.raises(CodecError):
            vec.decode_block(payload)
        fast = BlockCodec(sizes)
        assert fast.vectorized
        assert fast.decode_block(payload) == scalar.decode_block(payload)
