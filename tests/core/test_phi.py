"""Unit tests for the phi ordinal mapping (Equations 2.2 through 2.5)."""

import numpy as np
import pytest

from repro.core.phi import OrdinalMapper, phi_array, phi_inverse_array
from repro.errors import DomainError, SchemaError

PAPER_DOMAINS = [8, 16, 64, 64, 64]


class TestOrdinalMapperConstruction:
    def test_weights_are_suffix_products(self):
        m = OrdinalMapper(PAPER_DOMAINS)
        assert m.weights == (16 * 64 * 64 * 64, 64 * 64 * 64, 64 * 64, 64, 1)

    def test_space_size_is_product_of_domains(self):
        m = OrdinalMapper(PAPER_DOMAINS)
        assert m.space_size == 8 * 16 * 64 * 64 * 64

    def test_arity(self):
        assert OrdinalMapper(PAPER_DOMAINS).arity == 5

    def test_single_attribute(self):
        m = OrdinalMapper([10])
        assert m.phi((7,)) == 7
        assert m.phi_inverse(7) == (7,)

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            OrdinalMapper([])

    def test_nonpositive_domain_rejected(self):
        with pytest.raises(SchemaError):
            OrdinalMapper([8, 0, 4])

    def test_size_one_domain_allowed(self):
        m = OrdinalMapper([1, 5])
        assert m.phi((0, 3)) == 3
        assert m.phi_inverse(3) == (0, 3)


class TestPhiPaperValues:
    """phi values printed in Figure 2.2 / Figure 3.3 of the paper."""

    @pytest.mark.parametrize(
        "tup,expected",
        [
            ((3, 8, 36, 39, 35), 14830051),
            ((3, 8, 32, 34, 12), 14813324),
            ((3, 8, 32, 25, 19), 14812755),
            ((3, 9, 24, 32, 0), 15042560),
            ((3, 9, 26, 27, 37), 15050469),
            ((2, 6, 26, 20, 36), 10069284),
            ((5, 10, 33, 22, 15), 23729551),
            ((0, 0, 0, 0, 0), 0),
        ],
    )
    def test_phi_matches_paper(self, tup, expected):
        assert OrdinalMapper(PAPER_DOMAINS).phi(tup) == expected

    @pytest.mark.parametrize(
        "tup,expected",
        [
            ((3, 8, 36, 39, 35), 14830051),
            ((0, 0, 4, 5, 23), 16727),
            ((0, 0, 0, 8, 57), 569),
            ((0, 0, 51, 56, 29), 212509),
            ((0, 0, 1, 59, 37), 7909),
        ],
    )
    def test_phi_inverse_matches_paper(self, tup, expected):
        assert OrdinalMapper(PAPER_DOMAINS).phi_inverse(expected) == tup


class TestPhiBijection:
    def test_round_trip_exhaustive_small_space(self):
        m = OrdinalMapper([3, 4, 5])
        seen = set()
        for e in range(m.space_size):
            t = m.phi_inverse(e)
            assert m.phi(t) == e
            seen.add(t)
        assert len(seen) == m.space_size

    def test_order_matches_lexicographic(self):
        m = OrdinalMapper([3, 4])
        tuples = [(a, b) for a in range(3) for b in range(4)]
        assert sorted(tuples) == sorted(tuples, key=m.sort_key)

    def test_max_ordinal(self):
        m = OrdinalMapper(PAPER_DOMAINS)
        top = tuple(s - 1 for s in PAPER_DOMAINS)
        assert m.phi(top) == m.space_size - 1


class TestPhiValidation:
    def test_out_of_domain_value_rejected(self):
        m = OrdinalMapper([8, 16])
        with pytest.raises(DomainError):
            m.phi((8, 0))

    def test_negative_value_rejected(self):
        m = OrdinalMapper([8, 16])
        with pytest.raises(DomainError):
            m.phi((0, -1))

    def test_wrong_arity_rejected(self):
        m = OrdinalMapper([8, 16])
        with pytest.raises(DomainError):
            m.phi((1, 2, 3))

    def test_ordinal_out_of_space_rejected(self):
        m = OrdinalMapper([8, 16])
        with pytest.raises(DomainError):
            m.phi_inverse(8 * 16)
        with pytest.raises(DomainError):
            m.phi_inverse(-1)


class TestBigSpaces:
    def test_huge_space_uses_exact_integers(self):
        sizes = [10**6] * 8  # space size 10^48, far beyond int64
        m = OrdinalMapper(sizes)
        assert not m.fits_int64
        t = tuple([999999] * 8)
        assert m.phi_inverse(m.phi(t)) == t

    def test_phi_many(self):
        m = OrdinalMapper([4, 4])
        rows = [(0, 1), (3, 3), (2, 0)]
        assert m.phi_many(rows) == [1, 15, 8]


class TestVectorisedPhi:
    def test_matches_scalar_path(self):
        rng = np.random.default_rng(7)
        sizes = [8, 16, 64, 64, 64]
        rows = np.stack(
            [rng.integers(0, s, size=200) for s in sizes], axis=1
        )
        m = OrdinalMapper(sizes)
        expected = np.array([m.phi(tuple(r)) for r in rows])
        np.testing.assert_array_equal(phi_array(rows, sizes), expected)

    def test_inverse_matches_scalar_path(self):
        rng = np.random.default_rng(8)
        sizes = [8, 16, 64]
        m = OrdinalMapper(sizes)
        ords = rng.integers(0, m.space_size, size=100)
        decoded = phi_inverse_array(ords, sizes)
        for e, row in zip(ords, decoded):
            assert tuple(row) == m.phi_inverse(int(e))

    def test_round_trip(self):
        rng = np.random.default_rng(9)
        sizes = [5, 7, 11, 13]
        m = OrdinalMapper(sizes)
        ords = rng.integers(0, m.space_size, size=500)
        back = phi_array(phi_inverse_array(ords, sizes), sizes)
        np.testing.assert_array_equal(back, ords)

    def test_rejects_oversized_space(self):
        sizes = [2**32, 2**32, 4]  # > 2^61
        with pytest.raises(DomainError):
            phi_array(np.zeros((1, 3), dtype=np.int64), sizes)

    def test_rejects_out_of_domain_rows(self):
        with pytest.raises(DomainError):
            phi_array(np.array([[5, 0]]), [4, 4])

    def test_rejects_bad_shape(self):
        with pytest.raises(DomainError):
            phi_array(np.zeros((2, 3), dtype=np.int64), [4, 4])


class TestVectorizedCodecPhi:
    """The whole-block codec's batch phi agrees with OrdinalMapper."""

    @pytest.mark.parametrize(
        "sizes", [PAPER_DOMAINS, [4] * 15, [300, 5, 70000], [2, 2, 2]]
    )
    def test_phi_rows_elementwise(self, sizes):
        from repro.core.vectorized import VectorizedBlockCodec

        vec = VectorizedBlockCodec(sizes)
        m = OrdinalMapper(sizes)
        rng = np.random.default_rng(21)
        rows = np.stack(
            [rng.integers(0, s, size=300) for s in sizes], axis=1
        )
        expected = np.array([m.phi(tuple(r)) for r in rows])
        np.testing.assert_array_equal(vec.phi_rows(rows), expected)

    @pytest.mark.parametrize(
        "sizes", [PAPER_DOMAINS, [4] * 15, [300, 5, 70000], [2, 2, 2]]
    )
    def test_phi_inverse_rows_elementwise(self, sizes):
        from repro.core.vectorized import VectorizedBlockCodec

        vec = VectorizedBlockCodec(sizes)
        m = OrdinalMapper(sizes)
        rng = np.random.default_rng(22)
        ords = rng.integers(0, m.space_size, size=300)
        decoded = vec.phi_inverse_rows(ords)
        for o, row in zip(ords, decoded):
            assert tuple(row) == m.phi_inverse(int(o))

    def test_phi_rows_rejects_out_of_domain(self):
        from repro.core.vectorized import VectorizedBlockCodec

        vec = VectorizedBlockCodec([4, 4])
        with pytest.raises(DomainError):
            vec.phi_rows(np.array([[5, 0]]))
        with pytest.raises(DomainError):
            vec.phi_rows(np.zeros((2, 3), dtype=np.int64))

    def test_phi_inverse_rows_rejects_out_of_space(self):
        from repro.core.vectorized import VectorizedBlockCodec

        vec = VectorizedBlockCodec([4, 4])
        with pytest.raises(DomainError):
            vec.phi_inverse_rows(np.array([16]))

    @pytest.mark.parametrize(
        "sizes", [PAPER_DOMAINS, [4] * 15, [300, 5, 70000]]
    )
    def test_encoded_size_of_run_is_exact(self, sizes):
        """The vectorised sizing path equals the scalar estimate *and*
        the actual byte count it goes on to produce."""
        from repro.core.codec import BlockCodec
        from repro.core.vectorized import VectorizedBlockCodec

        vec = VectorizedBlockCodec(sizes)
        scalar = BlockCodec(sizes, vectorized=False)
        rng = np.random.default_rng(23)
        space = OrdinalMapper(sizes).space_size
        for u in (1, 2, 7, 64):
            run = np.sort(rng.integers(0, space, size=u))
            size = vec.encoded_size_of_run(run)
            assert size == len(vec.encode_run(run))
            assert size == scalar.encoded_size_of_ordinals(
                [int(o) for o in run]
            )
